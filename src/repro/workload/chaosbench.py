"""The chaos benchmark: availability and coverage under injected faults.

One reusable implementation behind both surfaces that run it:

- ``repro chaos`` (the CLI) for ad-hoc runs, and
- ``benchmarks/bench_fault_tolerance.py``, which records the repo's
  fault-tolerance trajectory point (``BENCH_PR3.json``).

The sweep builds one simulated cluster per crash rate — same data, same
placement, same fault seed — and drives the same chaos query mix
through each. Per rate it reports *availability* (the fraction of
queries answered completely), mean *row coverage* (the fraction of rows
degraded answers still cover), simulated latency percentiles, and the
fault-handling totals (retries, failovers, timeouts, quarantines,
crashes).

The correctness gate rides along: every **complete** result is compared
row-for-row against a fault-free reference cluster. Fault injection may
cost latency and coverage, but it must never silently change an answer
the system claims is complete.

PR 8 adds the *local* counterpart at the bottom of this module:
:func:`run_process_chaos_bench` drives the same query mix through a
process-executor store under **real** worker faults (SIGKILL,
``os._exit``, genuine hangs, injected by
:mod:`repro.testing.process_chaos`) and reports recovery latency,
coverage exactness and shared-memory hygiene per scenario. It backs
``repro chaos --local`` and ``benchmarks/bench_process_chaos.py``
(``BENCH_PR8.json``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.datastore import DataStoreOptions
from repro.distributed.cluster import ClusterConfig, SimulatedCluster
from repro.distributed.faults import FaultConfig
from repro.errors import ExecutionError
from repro.monitoring import percentile
from repro.workload.generator import LogsConfig, generate_query_logs

#: The chaos query mix: the distributed group-by rewrite end to end
#: (aggregation partials merged up the tree) plus one projection query
#: (plain output rows merged at the root) — both code paths must
#: degrade correctly.
CHAOS_QUERIES = (
    "SELECT country, COUNT(*) AS c, SUM(latency) AS s FROM data "
    "GROUP BY country ORDER BY c DESC LIMIT 10",
    "SELECT table_name, COUNT(*) AS c, AVG(latency) AS a FROM data "
    "GROUP BY table_name ORDER BY c DESC LIMIT 10",
    "SELECT country, MIN(latency) AS lo, MAX(latency) AS hi FROM data "
    "GROUP BY country ORDER BY country",
)


@dataclass(frozen=True)
class ChaosBenchConfig:
    """Knobs for one chaos-benchmark run."""

    rows: int = 24_000
    n_shards: int = 6
    n_machines: int = 8
    replication: int = 2
    queries_per_rate: int = 12
    crash_rates: tuple[float, ...] = (0.0, 0.05, 0.2, 0.5)
    timeout_rate: float = 0.02
    slow_rate: float = 0.05
    corruption_rate: float = 0.02
    deadline_seconds: float = 0.5
    max_retries: int = 2
    fault_seed: int = 0
    seed: int = 2012


def _chaos_table(config: ChaosBenchConfig):
    return generate_query_logs(
        LogsConfig(
            n_rows=config.rows,
            n_days=min(92, max(14, config.rows // 4000)),
            n_teams=min(40, max(8, config.rows // 3000)),
            seed=config.seed,
        )
    )


def _build_cluster(
    table: Any, config: ChaosBenchConfig, faults: FaultConfig | None
) -> SimulatedCluster:
    return SimulatedCluster.build(
        table,
        n_shards=config.n_shards,
        store_options=DataStoreOptions(
            partition_fields=("country", "table_name"),
            max_chunk_rows=max(256, config.rows // 24),
        ),
        config=ClusterConfig(
            n_machines=config.n_machines,
            replication=config.replication,
            seed=config.seed,
            faults=faults,
        ),
    )


def _fault_config(config: ChaosBenchConfig, crash_rate: float) -> FaultConfig:
    return FaultConfig(
        seed=config.fault_seed,
        crash_rate=crash_rate,
        timeout_rate=config.timeout_rate,
        slow_rate=config.slow_rate,
        corruption_rate=config.corruption_rate,
        deadline_seconds=config.deadline_seconds,
        max_retries=config.max_retries,
    )


def _query_mix(config: ChaosBenchConfig) -> list[str]:
    return [
        CHAOS_QUERIES[i % len(CHAOS_QUERIES)]
        for i in range(config.queries_per_rate)
    ]


def run_chaos_bench(config: ChaosBenchConfig | None = None) -> dict[str, Any]:
    """Sweep crash rates; returns the JSON-ready trajectory point."""
    config = config or ChaosBenchConfig()
    table = _chaos_table(config)
    queries = _query_mix(config)

    # The fault-free reference: what each query in the mix *should*
    # return. Rows never depend on the cost model, only on the data,
    # so one clean pass pins the answers for every rate.
    reference = _build_cluster(table, config, faults=None)
    expected = [reference.execute(sql)[0].sorted_rows() for sql in queries]

    sweep: list[dict[str, Any]] = []
    for crash_rate in config.crash_rates:
        cluster = _build_cluster(
            table, config, faults=_fault_config(config, crash_rate)
        )
        complete_queries = 0
        complete_mismatches = 0
        coverages: list[float] = []
        latencies: list[float] = []
        totals = {
            "retries": 0,
            "failovers": 0,
            "timeouts": 0,
            "quarantines": 0,
            "crashes": 0,
            "fault_events": 0,
        }
        for index, sql in enumerate(queries):
            result, metrics = cluster.execute(sql)
            coverages.append(metrics.row_coverage)
            latencies.append(metrics.latency_seconds)
            totals["retries"] += metrics.retries
            totals["failovers"] += metrics.failovers
            totals["timeouts"] += metrics.timeouts
            totals["quarantines"] += metrics.quarantines
            totals["crashes"] += metrics.crashes
            totals["fault_events"] += len(metrics.fault_events)
            if metrics.complete:
                complete_queries += 1
                if result.sorted_rows() != expected[index]:
                    complete_mismatches += 1
        ordered = sorted(latencies)
        sweep.append(
            {
                "crash_rate": crash_rate,
                "queries": len(queries),
                "availability": complete_queries / len(queries),
                "mean_row_coverage": sum(coverages) / len(coverages),
                "min_row_coverage": min(coverages),
                "latency_p50_ms": 1000 * percentile(ordered, 0.50),
                "latency_p90_ms": 1000 * percentile(ordered, 0.90),
                "latency_max_ms": 1000 * ordered[-1],
                "complete_results_match_reference": complete_mismatches == 0,
                **totals,
            }
        )
    return {
        "bench": "fault_tolerance",
        "rows": config.rows,
        "shards": config.n_shards,
        "machines": config.n_machines,
        "replication": config.replication,
        "fault_seed": config.fault_seed,
        "timeout_rate": config.timeout_rate,
        "slow_rate": config.slow_rate,
        "corruption_rate": config.corruption_rate,
        "deadline_seconds": config.deadline_seconds,
        "max_retries": config.max_retries,
        "queries": list(CHAOS_QUERIES),
        "sweep": sweep,
    }


def render_chaos_report(report: dict[str, Any]) -> list[str]:
    """Human-readable summary lines for a :func:`run_chaos_bench` result."""
    lines = [
        f"fault-tolerance bench — {report['rows']} rows over "
        f"{report['shards']} shards on {report['machines']} machines "
        f"(replication {report['replication']}, fault seed "
        f"{report['fault_seed']})",
        (
            f"per-attempt faults: timeout {report['timeout_rate']:.0%}, "
            f"slow {report['slow_rate']:.0%}, corrupt "
            f"{report['corruption_rate']:.0%}; deadline "
            f"{1000 * report['deadline_seconds']:.0f} ms, "
            f"{report['max_retries']} retries"
        ),
        "",
        "crash   avail   coverage   p90 ms   retries  failover  timeout  "
        "quarantine",
    ]
    for point in report["sweep"]:
        lines.append(
            f"{point['crash_rate']:5.0%}  {point['availability']:6.1%}  "
            f"{point['mean_row_coverage']:8.1%}  "
            f"{point['latency_p90_ms']:7.1f}  "
            f"{point['retries']:7d}  {point['failovers']:8d}  "
            f"{point['timeouts']:7d}  {point['quarantines']:10d}"
        )
    all_match = all(
        point["complete_results_match_reference"] for point in report["sweep"]
    )
    lines.append("")
    lines.append(
        "complete results == fault-free reference: "
        + ("yes" if all_match else "NO — BUG")
    )
    return lines


# --------------------------------------------------------------------
# The local process-chaos bench (PR 8): real worker faults, one box.
# --------------------------------------------------------------------

#: Scenario name → the ChaosPlan shape it drives. ``none`` is the
#: baseline every other scenario's recovery overhead is measured
#: against; the three transient scenarios must recover bit-identically;
#: ``kill-persistent`` must degrade to exactly one lost chunk.
PROCESS_CHAOS_SCENARIOS = (
    "none",
    "kill",
    "exit",
    "hang",
    "kill-persistent",
)


@dataclass(frozen=True)
class ProcessChaosBenchConfig:
    """Knobs for one local (process-executor) chaos run."""

    rows: int = 4_000
    workers: int = 2
    queries_per_scenario: int = 3
    deadline_seconds: float = 0.75
    max_retries: int = 2
    backoff_base_seconds: float = 0.02
    fault_seed: int = 0
    seed: int = 2012


def _process_store_options(
    config: ProcessChaosBenchConfig, executor: str
) -> DataStoreOptions:
    return DataStoreOptions(
        partition_fields=("country", "table_name"),
        max_chunk_rows=max(64, config.rows // 24),
        cache_chunk_results=False,  # no cache: every query really scans
        executor=executor,
        workers=config.workers if executor == "process" else None,
        task_deadline_seconds=config.deadline_seconds,
        task_max_retries=config.max_retries,
        task_backoff_base_seconds=config.backoff_base_seconds,
    )


def _scenario_plan(name, n_chunks, config):
    """The ChaosPlan for one named scenario over ``n_chunks`` chunk keys."""
    from repro.testing.process_chaos import ChaosPlan

    target = n_chunks // 3  # a mid-batch chunk, stable per corpus
    if name == "none":
        return ChaosPlan()
    if name == "kill":
        return ChaosPlan.seeded(
            config.fault_seed, range(n_chunks), kill_rate=0.15
        )
    if name == "exit":
        return ChaosPlan.seeded(
            config.fault_seed, range(n_chunks), exit_rate=0.15
        )
    if name == "hang":
        return ChaosPlan(
            faults=((target, "hang"),),
            hang_seconds=max(10.0, 20 * config.deadline_seconds),
        )
    if name == "kill-persistent":
        return ChaosPlan(faults=((target, "kill"),), persistent=(target,))
    raise ExecutionError(
        f"unknown process-chaos scenario {name!r}; "
        f"choose from {PROCESS_CHAOS_SCENARIOS}"
    )


def run_process_chaos_bench(
    config: ProcessChaosBenchConfig | None = None,
) -> dict[str, Any]:
    """Run every scenario; returns the JSON-ready trajectory point.

    Per scenario: the chaos query mix runs through a process-executor
    store whose every submission is wrapped by
    :class:`repro.testing.process_chaos.ChaosExecutor` (fresh sentinel
    directory per query, so each query re-experiences its transient
    faults). Complete results are compared row-for-row against a serial
    fault-free reference; incomplete results must carry *exact*
    coverage accounting; the executor must leave zero live
    shared-memory segments behind after close.
    """
    import tempfile
    import time

    from repro.core.datastore import DataStore
    from repro.storage.arena import live_segment_names, sweep_orphaned_segments
    from repro.testing.process_chaos import ChaosExecutor

    config = config or ProcessChaosBenchConfig()
    table = generate_query_logs(
        LogsConfig(
            n_rows=config.rows,
            n_days=min(92, max(14, config.rows // 400)),
            n_teams=min(40, max(8, config.rows // 300)),
            seed=config.seed,
        )
    )
    queries = [
        CHAOS_QUERIES[i % len(CHAOS_QUERIES)]
        for i in range(config.queries_per_scenario)
    ]

    reference_store = DataStore.from_table(
        table, _process_store_options(config, "serial")
    )
    expected = [reference_store.execute(sql).sorted_rows() for sql in queries]
    rows_total = reference_store.n_rows

    scenarios: list[dict[str, Any]] = []
    baseline_mean_ms: float | None = None
    for name in PROCESS_CHAOS_SCENARIOS:
        store = DataStore.from_table(
            table, _process_store_options(config, "process")
        )
        inner = store.executor
        plan = _scenario_plan(name, len(store.chunk_row_counts), config)
        complete_queries = 0
        complete_mismatches = 0
        inexact_coverage = 0
        coverages: list[float] = []
        latencies: list[float] = []
        totals = {
            "respawns": 0,
            "retries": 0,
            "timeouts": 0,
            "crashes": 0,
            "unserved_tasks": 0,
            "backoff_seconds": 0.0,
        }
        for index, sql in enumerate(queries):
            with tempfile.TemporaryDirectory() as flag_dir:
                store.executor = ChaosExecutor(inner, plan, flag_dir)
                start = time.monotonic()
                result = store.execute(sql)
                latencies.append(time.monotonic() - start)
            outcome = store.executor.last_outcome
            if outcome is not None:
                totals["respawns"] += outcome.respawns
                totals["retries"] += outcome.retries
                totals["timeouts"] += outcome.timeouts
                totals["crashes"] += outcome.crashes
                totals["unserved_tasks"] += len(outcome.unserved)
                totals["backoff_seconds"] += outcome.backoff_seconds
            coverages.append(result.row_coverage)
            exact = (
                result.row_coverage
                == (rows_total - result.stats.rows_unserved) / rows_total
            )
            if not exact:
                inexact_coverage += 1
            if result.complete:
                complete_queries += 1
                if result.sorted_rows() != expected[index]:
                    complete_mismatches += 1
        store.executor = inner
        store.executor.close()
        leaked = list(live_segment_names())
        ordered = sorted(latencies)
        mean_ms = 1000 * sum(latencies) / len(latencies)
        if name == "none":
            baseline_mean_ms = mean_ms
        scenarios.append(
            {
                "scenario": name,
                "queries": len(queries),
                "availability": complete_queries / len(queries),
                "mean_row_coverage": sum(coverages) / len(coverages),
                "min_row_coverage": min(coverages),
                "coverage_accounting_exact": inexact_coverage == 0,
                "complete_results_match_reference": complete_mismatches == 0,
                "latency_mean_ms": mean_ms,
                "latency_max_ms": 1000 * ordered[-1],
                "recovery_overhead_ms": (
                    mean_ms - baseline_mean_ms
                    if baseline_mean_ms is not None
                    else 0.0
                ),
                "leaked_segments": leaked,
                **totals,
            }
        )
    return {
        "bench": "process_chaos",
        "rows": config.rows,
        "workers": config.workers,
        "deadline_seconds": config.deadline_seconds,
        "max_retries": config.max_retries,
        "backoff_base_seconds": config.backoff_base_seconds,
        "fault_seed": config.fault_seed,
        "queries": list(CHAOS_QUERIES),
        "scenarios": scenarios,
        "orphans_reclaimed": sweep_orphaned_segments(),
    }


def render_process_chaos_report(report: dict[str, Any]) -> list[str]:
    """Human-readable summary for a :func:`run_process_chaos_bench` run."""
    lines = [
        f"process-chaos bench — {report['rows']} rows, "
        f"{report['workers']} workers, deadline "
        f"{1000 * report['deadline_seconds']:.0f} ms, "
        f"{report['max_retries']} retry wave(s), fault seed "
        f"{report['fault_seed']}",
        "",
        "scenario         avail   coverage   mean ms   overhead ms  "
        "respawn  retry  unserved",
    ]
    for point in report["scenarios"]:
        lines.append(
            f"{point['scenario']:15s}  {point['availability']:5.0%}  "
            f"{point['mean_row_coverage']:8.1%}  "
            f"{point['latency_mean_ms']:8.1f}  "
            f"{point['recovery_overhead_ms']:11.1f}  "
            f"{point['respawns']:7d}  {point['retries']:5d}  "
            f"{point['unserved_tasks']:8d}"
        )
    all_match = all(
        point["complete_results_match_reference"]
        for point in report["scenarios"]
    )
    all_exact = all(
        point["coverage_accounting_exact"] for point in report["scenarios"]
    )
    no_leaks = all(not point["leaked_segments"] for point in report["scenarios"])
    lines.append("")
    lines.append(
        "complete results == fault-free reference: "
        + ("yes" if all_match else "NO — BUG")
    )
    lines.append(
        "incomplete coverage accounting exact: "
        + ("yes" if all_exact else "NO — BUG")
    )
    lines.append(
        "shared-memory segments leaked: " + ("none" if no_leaks else "YES — BUG")
    )
    if report["orphans_reclaimed"]:
        lines.append(
            f"janitor reclaimed orphans: {report['orphans_reclaimed']}"
        )
    return lines
