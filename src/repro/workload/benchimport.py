"""The import-pipeline benchmark: scalar vs vectorized ingestion.

One reusable implementation behind both surfaces that run it:

- ``repro bench import`` (the CLI) for ad-hoc runs, and
- ``benchmarks/bench_import.py``, which records the repo's perf
  trajectory point (``BENCH_PR4.json``) so ingestion regressions are
  visible PR over PR.

Besides timing, this module owns :func:`build_reference_store` — a
frozen replica of the pre-vectorization import pipeline (scalar
``factorize``, per-string-insert trie builder). The benchmark and the
import-equivalence property tests both assert the vectorized pipeline
serializes byte-identically to it, so "fast" can never drift from
"correct" unnoticed.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.analysis.fsck import fsck_store
from repro.core.datastore import (
    DataStore,
    DataStoreOptions,
    FieldStore,
    _dictionary_from_ordered,
)
from repro.core.table import Table
from repro.errors import PartitionError
from repro.partition.codes import factorize, factorize_scalar
from repro.partition.composite import PartitionSpec, partition_table
from repro.storage.chunk import ColumnChunk
from repro.storage.dictionary import (
    Dictionary,
    NumericDictionary,
    SortedStringDictionary,
    SortedTupleDictionary,
)
from repro.storage.serde import save_store
from repro.storage.trie import TrieDictionary, reference_trie_bytes
from repro.workload.generator import LogsConfig, generate_query_logs


@dataclass(frozen=True)
class ImportBenchConfig:
    """Knobs for one import-benchmark run."""

    rows: int = 200_000
    chunk_rows: int | None = None
    repeats: int = 2
    seed: int = 2012

    def effective_chunk_rows(self) -> int:
        if self.chunk_rows is not None:
            return self.chunk_rows
        return max(256, self.rows // 24)


def _bench_table(config: ImportBenchConfig) -> Table:
    return generate_query_logs(
        LogsConfig(
            n_rows=config.rows,
            n_days=min(92, max(14, config.rows // 4000)),
            n_teams=min(40, max(8, config.rows // 3000)),
            seed=config.seed,
        )
    )


def _bench_options(config: ImportBenchConfig) -> DataStoreOptions:
    return DataStoreOptions(
        partition_fields=("country", "table_name"),
        max_chunk_rows=config.effective_chunk_rows(),
        reorder_rows=True,
    )


def _reference_dictionary(ordered: list[Any], optimized: bool) -> Dictionary:
    """``_dictionary_from_ordered`` with the pre-change trie builder."""
    has_null = bool(ordered) and ordered[0] is None
    non_null = ordered[1:] if has_null else list(ordered)
    if non_null and isinstance(non_null[0], str):
        if optimized:
            return TrieDictionary(
                reference_trie_bytes(non_null), len(non_null), has_null=has_null
            )
        return SortedStringDictionary(non_null, has_null=has_null)
    if non_null and isinstance(non_null[0], tuple):
        return SortedTupleDictionary(non_null, has_null=has_null)
    if non_null and any(isinstance(v, float) for v in non_null):
        array = np.asarray(non_null, dtype=np.float64)
    else:
        array = np.asarray(non_null, dtype=np.int64)
    return NumericDictionary(array, has_null=has_null, optimized=optimized)


def build_reference_store(
    table: Table, options: DataStoreOptions | None = None
) -> DataStore:
    """Import ``table`` with the pre-vectorization scalar pipeline.

    Mirrors the original ``DataStore.from_table`` step for step: scalar
    factorize per field (run again after the reorder, as the old code
    did), ``np.lexsort`` over the scalar codes, the unchanged composite
    partitioner, scalar dictionary construction, per-chunk encode. Used
    as the byte-identity oracle by the import bench and property tests.
    """
    options = options or DataStoreOptions()
    partition_fields = (
        list(options.partition_fields) if options.partition_fields else []
    )
    for name in partition_fields:
        if name not in table:
            label = "reorder" if options.reorder_rows else "partition"
            raise PartitionError(f"{label} field {name!r} not in table")
    if partition_fields and options.reorder_rows:
        code_arrays = [
            factorize_scalar(table.column(name))[0] for name in partition_fields
        ]
        order = np.lexsort(tuple(reversed(code_arrays)))
        table = table.take(order)
    if partition_fields:
        spec = PartitionSpec(
            tuple(options.partition_fields), options.max_chunk_rows
        )
        chunk_rows = partition_table(
            table,
            spec,
            field_codes=[
                factorize_scalar(table.column(name))[0] for name in spec.fields
            ],
        )
    else:
        chunk_rows = [np.arange(table.n_rows, dtype=np.int64)]
    fields: dict[str, FieldStore] = {}
    for name in table.field_names:
        codes, ordered = factorize_scalar(table.column(name))
        dictionary = _reference_dictionary(ordered, options.optimized_dicts)
        chunks = [
            ColumnChunk.from_global_ids(
                codes[rows], optimized=options.optimized_columns
            )
            for rows in chunk_rows
        ]
        fields[name] = FieldStore(name, dictionary, chunks)
    return DataStore(
        options,
        table.n_rows,
        [int(rows.size) for rows in chunk_rows],
        fields,
    )


def serialized_store_bytes(store: DataStore) -> bytes:
    """The exact PDS2 byte stream ``save_store`` would write."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        path = os.path.join(tmp, "store.pds")
        save_store(store, path)
        with open(path, "rb") as handle:
            return handle.read()


def _kernel_sweep(
    table: Table, repeats: int
) -> tuple[dict[str, float], list[tuple[np.ndarray, list[Any]]]]:
    """Best-of-``repeats`` factorize + dictionary-build timings per path."""
    timings = {
        "scalar_factorize_seconds": float("inf"),
        "vector_factorize_seconds": float("inf"),
        "scalar_dictionary_seconds": float("inf"),
        "vector_dictionary_seconds": float("inf"),
    }
    factorized: list[tuple[np.ndarray, list[Any]]] = []
    columns = [table.column(name) for name in table.field_names]
    for __ in range(repeats):
        started = time.perf_counter()
        scalar = [factorize_scalar(column) for column in columns]
        timings["scalar_factorize_seconds"] = min(
            timings["scalar_factorize_seconds"], time.perf_counter() - started
        )
        started = time.perf_counter()
        factorized = [factorize(column) for column in columns]
        timings["vector_factorize_seconds"] = min(
            timings["vector_factorize_seconds"], time.perf_counter() - started
        )
        ordered_lists = [ordered for __, ordered in scalar]
        started = time.perf_counter()
        for ordered in ordered_lists:
            _reference_dictionary(ordered, optimized=True)
        timings["scalar_dictionary_seconds"] = min(
            timings["scalar_dictionary_seconds"], time.perf_counter() - started
        )
        started = time.perf_counter()
        for ordered in ordered_lists:
            _dictionary_from_ordered(ordered, optimized=True)
        timings["vector_dictionary_seconds"] = min(
            timings["vector_dictionary_seconds"], time.perf_counter() - started
        )
    return timings, factorized


def run_import_bench(config: ImportBenchConfig | None = None) -> dict[str, Any]:
    """Run the import bench; returns the JSON-ready trajectory point."""
    config = config or ImportBenchConfig()
    table = _bench_table(config)
    options = _bench_options(config)

    best_store: DataStore | None = None
    for __ in range(config.repeats):
        store = DataStore.from_table(table, options)
        assert store.import_stats is not None
        if (
            best_store is None
            or best_store.import_stats is None
            or store.import_stats.total_seconds
            < best_store.import_stats.total_seconds
        ):
            best_store = store
    assert best_store is not None and best_store.import_stats is not None
    stats = best_store.import_stats

    kernel_timings, __ = _kernel_sweep(table, config.repeats)
    scalar_kernel_seconds = (
        kernel_timings["scalar_factorize_seconds"]
        + kernel_timings["scalar_dictionary_seconds"]
    )
    vector_kernel_seconds = (
        kernel_timings["vector_factorize_seconds"]
        + kernel_timings["vector_dictionary_seconds"]
    )

    reference_started = time.perf_counter()
    reference_store = build_reference_store(table, options)
    reference_seconds = time.perf_counter() - reference_started

    vector_bytes = serialized_store_bytes(best_store)
    reference_bytes = serialized_store_bytes(reference_store)
    fsck_report = fsck_store(best_store)

    report: dict[str, Any] = {
        "bench": "import",
        "rows": config.rows,
        "columns": len(table.field_names),
        "chunk_rows": config.effective_chunk_rows(),
        "repeats": config.repeats,
        "cpu_count": os.cpu_count(),
        "import_stats": stats.as_dict(),
        "reference_import_seconds": reference_seconds,
        "import_speedup_vs_reference": (
            reference_seconds / stats.total_seconds
            if stats.total_seconds > 0
            else 0.0
        ),
        "serialized_bytes": len(vector_bytes),
        "serialization_identical": vector_bytes == reference_bytes,
        "fsck_ok": fsck_report.ok,
        **kernel_timings,
        "factorize_dictionary_speedup": (
            scalar_kernel_seconds / vector_kernel_seconds
            if vector_kernel_seconds > 0
            else 0.0
        ),
    }
    return report


def render_import_report(report: dict[str, Any]) -> list[str]:
    """Human-readable summary lines for a :func:`run_import_bench` result."""
    stats = report["import_stats"]
    lines = [
        f"import bench — {report['rows']} rows x {report['columns']} columns "
        f"into {stats['chunks']} chunks, {report['cpu_count']} CPU(s)",
        "",
        f"vectorized import: {1000 * stats['total_seconds']:8.1f} ms "
        f"({stats['rows_per_second']['total']:,.0f} rows/s)",
    ]
    for phase, seconds in stats["phase_seconds"].items():
        lines.append(
            f"  {phase:<11} {1000 * seconds:8.1f} ms "
            f"({stats['rows_per_second'][phase]:,.0f} rows/s)"
        )
    lines.append(
        f"reference import:  {1000 * report['reference_import_seconds']:8.1f} ms "
        f"(vectorized speedup {report['import_speedup_vs_reference']:.2f}x)"
    )
    lines.append(
        f"factorize+dictionary kernels: scalar "
        f"{1000 * (report['scalar_factorize_seconds'] + report['scalar_dictionary_seconds']):.1f} ms, "
        f"vectorized "
        f"{1000 * (report['vector_factorize_seconds'] + report['vector_dictionary_seconds']):.1f} ms "
        f"(speedup {report['factorize_dictionary_speedup']:.2f}x)"
    )
    lines.append(
        "serialization identical to reference: "
        + ("yes" if report["serialization_identical"] else "NO — BUG")
    )
    lines.append("fsck: " + ("clean" if report["fsck_ok"] else "FINDINGS — BUG"))
    return lines
