"""The paper's experimental queries and the production drill-down mix.

Queries 1-3 are quoted verbatim from Section 2.5. The drill-down
generator models Section 6's production traffic: "a user triggers about
20 SQL queries with a single mouse click", and "a lot of the
expressions resulting from typical interactions with the Web UI are
actually conjunctions of IN statements, when users are 'drilling down'
into subsets of the data".
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.table import Table
from repro.errors import ReproError

#: Query 1: top 10 countries (few-distinct group field).
QUERY_1 = (
    "SELECT country, COUNT(*) as c FROM data "
    "GROUP BY country ORDER BY c DESC LIMIT 10;"
)

#: Query 2: queries and latency per day (computed expression group).
QUERY_2 = (
    "SELECT date(timestamp) as date, COUNT(*), SUM(latency) FROM data "
    "GROUP BY date ORDER BY date ASC LIMIT 10;"
)

#: Query 3: top 10 table names (many-distinct group field).
QUERY_3 = (
    "SELECT table_name, COUNT(*) as c FROM data "
    "GROUP BY table_name ORDER BY c DESC LIMIT 10;"
)


def paper_queries() -> list[str]:
    """Queries 1-3 of Section 2.5, in order."""
    return [QUERY_1, QUERY_2, QUERY_3]


@dataclass(frozen=True)
class DrillDownConfig:
    """Shape of the simulated UI traffic."""

    n_sessions: int = 20
    clicks_per_session: int = 4
    queries_per_click: int = 20
    seed: int = 7


_GROUP_FIELDS = ["country", "table_name", "user_name", "date(timestamp)"]
_METRICS = [
    "COUNT(*)",
    "SUM(latency)",
    "AVG(latency)",
    "MIN(latency)",
    "MAX(latency)",
]


def _sample_values(table: Table, field: str, k: int, rng: random.Random) -> list:
    values = [v for v in set(table.column(field).values) if v is not None]
    k = min(k, len(values))
    return rng.sample(sorted(values), k)


def _quote(value) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


def generate_drilldown_session_groups(
    table: Table, config: DrillDownConfig | None = None
) -> list[list[list[str]]]:
    """Generate drill-down traffic grouped by session.

    Returns ``sessions -> clicks -> queries``: each session is a
    sequence of clicks whose WHERE restrictions only ever *gain*
    conjuncts (the UI's drill-down refinement invariant the serving
    cache's subsumption reuse relies on); each click is ~20 SQL queries
    sharing one WHERE and varying the charted group field / metric.
    Restrictions are conjunctions of IN statements over the correlated
    fields (country, table_name, user_name).

    Deterministic: one seeded RNG drives the whole trace, consumed in
    exactly the order of :func:`generate_drilldown_sessions` — the flat
    view is always the concatenation of these session groups.
    """
    config = config or DrillDownConfig()
    if config.queries_per_click < 1:
        raise ReproError("queries_per_click must be >= 1")
    rng = random.Random(config.seed)
    sessions: list[list[list[str]]] = []
    for __ in range(config.n_sessions):
        conjuncts: list[str] = []
        session: list[list[str]] = []
        for click in range(config.clicks_per_session):
            if click > 0 or rng.random() < 0.7:
                # Drill down one more step: add an IN restriction.
                field = rng.choice(["country", "table_name", "user_name"])
                width = {
                    "country": rng.randint(1, 3),
                    "table_name": rng.randint(1, 8),
                    "user_name": rng.randint(1, 4),
                }[field]
                values = _sample_values(table, field, width, rng)
                if values:
                    rendered = ", ".join(_quote(v) for v in values)
                    conjuncts.append(f"{field} IN ({rendered})")
            where = " AND ".join(conjuncts)
            where_clause = f" WHERE {where}" if where else ""
            batch = []
            for __q in range(config.queries_per_click):
                group = rng.choice(_GROUP_FIELDS)
                metric = rng.choice(_METRICS)
                batch.append(
                    f"SELECT {group} as g, {metric} as m FROM data"
                    f"{where_clause} GROUP BY g ORDER BY m DESC LIMIT 10;"
                )
            session.append(batch)
        sessions.append(session)
    return sessions


def generate_drilldown_sessions(
    table: Table, config: DrillDownConfig | None = None
) -> list[list[str]]:
    """Generate per-click query batches against ``table`` (flat view).

    The clicks of :func:`generate_drilldown_session_groups`, flattened
    across sessions in order — sessions are the contiguous blocks of
    ``clicks_per_session`` clicks.
    """
    return [
        click
        for session in generate_drilldown_session_groups(table, config)
        for click in session
    ]
