"""Synthetic PowerDrill query logs — the paper's experimental dataset.

Section 2.5: "For realistic input data we decided to simply use our own
logs as source. ... For our experiments we have extracted 5 million
rows with the fields timestamp, table name, latency, and country."

We cannot use Google's logs, so this generator reproduces the
*statistical shape* the experiments depend on:

- ``country``: 25 distinct values, Zipf-skewed (the paper's field with
  "only few distinct values");
- ``table_name``: a field with *many* distinct values whose names have
  long shared prefixes and usually include a date (the paper notes
  "table-names usually include the date"), Zipf-skewed over base
  tables. Distinct count scales with rows (~1 distinct per 10-15 rows
  at full scale, matching "several 100K" of 5M);
- ``timestamp``: seconds over the last three months of 2011 (the
  paper's production measurement window), increasing day by day;
- ``latency``: a heavy-tailed (log-normal) integer with many distinct
  values;
- ``user_name``: an extra low-cardinality field used by partitioning
  examples ("date, country, user name ... may be a good choice").

Correlations matter for partition skipping (Section 6: "we strongly
benefit from correlations in the data"): each team of tables is
concentrated in a few countries, so restrictions on ``table_name``
correlate with the ``country`` ranges the partitioner cuts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.table import Column, DataType, Table
from repro.errors import ReproError

#: 2011-10-01 00:00:00 UTC — start of the paper's measurement window.
_WINDOW_START = 1317427200
_SECONDS_PER_DAY = 86400

_COUNTRIES = [
    "US", "DE", "JP", "GB", "FR", "BR", "IN", "CA", "AU", "NL",
    "IT", "ES", "SE", "CH", "PL", "RU", "KR", "MX", "IE", "SG",
    "DK", "FI", "NO", "BE", "AT",
]


@dataclass(frozen=True)
class LogsConfig:
    """Shape parameters of the synthetic log table."""

    n_rows: int = 100_000
    n_days: int = 92  # Oct 1 – Dec 31, 2011
    n_teams: int = 40
    datasets_per_team: int = 10
    n_users: int = 400
    zipf_exponent: float = 1.2
    seed: int = 2012
    #: fraction of rows whose latency is NULL (query failed before timing)
    null_latency_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.n_rows < 1:
            raise ReproError("n_rows must be >= 1")
        if not 0 <= self.null_latency_fraction < 1:
            raise ReproError("null_latency_fraction must be in [0, 1)")


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def _date_string(day_index: int) -> str:
    """YYYY-MM-DD for the day_index-th day after the window start."""
    timestamp = _WINDOW_START + day_index * _SECONDS_PER_DAY
    days = timestamp // _SECONDS_PER_DAY
    # Proleptic Gregorian from epoch days; window is within 2011 so a
    # simple civil-from-days conversion suffices.
    z = days + 719468
    era = z // 146097
    doe = z - era * 146097
    yoe = (doe - doe // 1460 + doe // 36524 - doe // 146096) // 365
    year = yoe + era * 400
    doy = doe - (365 * yoe + yoe // 4 - yoe // 100)
    mp = (5 * doy + 2) // 153
    day = doy - (153 * mp + 2) // 5 + 1
    month = mp + 3 if mp < 10 else mp - 9
    if month <= 2:
        year += 1
    return f"{year:04d}-{month:02d}-{day:02d}"


def generate_query_logs(config: LogsConfig | None = None) -> Table:
    """Generate the synthetic log table (deterministic in the seed)."""
    config = config or LogsConfig()
    rng = np.random.default_rng(config.seed)
    n = config.n_rows

    # Countries: Zipf over 25, as in the real office-location data.
    country_weights = _zipf_weights(len(_COUNTRIES), config.zipf_exponent)
    country_idx = rng.choice(len(_COUNTRIES), size=n, p=country_weights)

    # Teams correlate strongly with countries: each team's usage
    # concentrates in a home country. Section 6 relies on exactly this
    # ("we strongly benefit from correlations in the data"): partition
    # ranges on country then cover most of a team's tables.
    team_home = rng.integers(0, len(_COUNTRIES), size=config.n_teams)
    team_weights = _zipf_weights(config.n_teams, config.zipf_exponent)
    teams_by_country: list[np.ndarray] = []
    for country in range(len(_COUNTRIES)):
        local = team_weights * np.where(team_home == country, 40.0, 1.0)
        teams_by_country.append(local / local.sum())
    team_idx = np.empty(n, dtype=np.int64)
    for country in range(len(_COUNTRIES)):
        mask = country_idx == country
        count = int(mask.sum())
        if count:
            team_idx[mask] = rng.choice(
                config.n_teams, size=count, p=teams_by_country[country]
            )

    dataset_weights = _zipf_weights(
        config.datasets_per_team, config.zipf_exponent
    )
    dataset_idx = rng.choice(config.datasets_per_team, size=n, p=dataset_weights)

    # Timestamps: uniform over the window, slight weekly rhythm.
    day_idx = rng.integers(0, config.n_days, size=n)
    intraday = rng.integers(0, _SECONDS_PER_DAY, size=n)
    timestamps = _WINDOW_START + day_idx * _SECONDS_PER_DAY + intraday

    # Table names: long shared prefixes + the queried date, so distinct
    # count ~ teams x datasets x days and tries compress heavily.
    date_strings = [_date_string(d) for d in range(config.n_days)]
    table_names = [
        (
            f"/cns/analytics/logs/team{team:03d}/"
            f"dataset{dataset:02d}/daily_queries/{date_strings[day]}"
        )
        for team, dataset, day in zip(team_idx, dataset_idx, day_idx)
    ]

    # Latency: log-normal milliseconds, heavy tail, many distinct ints.
    latency = np.round(np.exp(rng.normal(5.5, 1.1, size=n))).astype(np.int64)
    latency = np.clip(latency, 1, 3_600_000)
    latency_values: list[int | None] = [int(v) for v in latency]
    if config.null_latency_fraction:
        null_mask = rng.random(n) < config.null_latency_fraction
        latency_values = [
            None if is_null else value
            for value, is_null in zip(latency_values, null_mask)
        ]

    user_weights = _zipf_weights(config.n_users, 1.1)
    user_idx = rng.choice(config.n_users, size=n, p=user_weights)
    users = [f"user{u:04d}" for u in user_idx]

    countries = [_COUNTRIES[c] for c in country_idx]
    return Table(
        [
            Column("timestamp", [int(t) for t in timestamps], DataType.INT),
            Column("table_name", table_names, DataType.STRING),
            Column("latency", latency_values, DataType.INT),
            Column("country", countries, DataType.STRING),
            Column("user_name", users, DataType.STRING),
        ]
    )


def default_partition_fields() -> tuple[str, ...]:
    """The paper's experimental field order: country, table_name."""
    return ("country", "table_name")
