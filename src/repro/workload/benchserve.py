"""Closed/open-loop load drivers for the serving layer (`bench serve`).

Replays :func:`~repro.workload.queries.generate_drilldown_session_groups`
traffic against a :class:`~repro.service.QueryService` the way the
paper's Web UI generates it: every session belongs to a tenant drawn
from a Zipfian popularity distribution (a few analysts dominate), and
clicks from concurrent sessions interleave.

Two driver shapes, the standard serving-bench duo:

- **closed loop** — ``concurrency`` clients each submit one query and
  wait for its outcome before the next: throughput adapts to service
  speed, measuring sustainable QPS at a given offered concurrency.
- **open loop** — queries are submitted on a fixed arrival schedule
  regardless of completions: latency under a target arrival rate,
  including queueing and shedding when the service saturates.

All pacing uses bounded waits on a never-set Event (no sleeps), so the
drivers obey the same discipline as the service itself.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.core.datastore import DataStore, DataStoreOptions
from repro.core.table import Table
from repro.errors import ReproError
from repro.monitoring import percentile
from repro.service.service import (
    QueryCompleted,
    QueryFailed,
    QueryOutcome,
    QueryRejected,
    QueryService,
    ServiceConfig,
)
from repro.workload.generator import LogsConfig, generate_query_logs
from repro.workload.queries import (
    DrillDownConfig,
    generate_drilldown_session_groups,
)


@dataclass(frozen=True)
class TenantMixConfig:
    """How simulated sessions distribute over tenants."""

    n_tenants: int = 6
    zipf_s: float = 1.2
    seed: int = 11

    def __post_init__(self) -> None:
        if self.n_tenants < 1:
            raise ReproError("n_tenants must be >= 1")
        if self.zipf_s < 0:
            raise ReproError("zipf_s must be >= 0")


def zipf_tenant_weights(n_tenants: int, s: float) -> list[float]:
    """Normalized Zipf weights: tenant rank ``r`` gets ``1 / r**s``."""
    raw = [1.0 / (rank**s) for rank in range(1, n_tenants + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def assign_sessions_to_tenants(
    n_sessions: int, mix: TenantMixConfig
) -> list[str]:
    """A seeded Zipfian tenant label for each session index."""
    tenants = [f"tenant-{rank:02d}" for rank in range(mix.n_tenants)]
    weights = zipf_tenant_weights(mix.n_tenants, mix.zipf_s)
    rng = random.Random(mix.seed)
    return rng.choices(tenants, weights=weights, k=n_sessions)


@dataclass(frozen=True)
class ServeRequest:
    """One query of the replayed trace, already labelled for serving."""

    tenant: str
    session: str
    sql: str


def build_serve_trace(
    table: Table,
    drill: DrillDownConfig | None = None,
    mix: TenantMixConfig | None = None,
) -> list[ServeRequest]:
    """The drill-down trace, tenant-labelled and interleaved by click.

    Clicks are emitted breadth-first (every session's first click, then
    every session's second, ...) so concurrent sessions overlap the way
    real UI traffic does instead of replaying one user at a time.
    """
    drill = drill or DrillDownConfig()
    mix = mix or TenantMixConfig()
    sessions = generate_drilldown_session_groups(table, drill)
    tenants = assign_sessions_to_tenants(len(sessions), mix)
    trace: list[ServeRequest] = []
    max_clicks = max((len(session) for session in sessions), default=0)
    for click_index in range(max_clicks):
        for session_index, session in enumerate(sessions):
            if click_index >= len(session):
                continue
            for sql in session[click_index]:
                trace.append(
                    ServeRequest(
                        tenant=tenants[session_index],
                        session=f"session-{session_index:03d}",
                        sql=sql,
                    )
                )
    return trace


def run_closed_loop(
    service: QueryService,
    trace: list[ServeRequest],
    concurrency: int,
    timeout_per_query: float = 120.0,
) -> tuple[list[QueryOutcome], float]:
    """Replay ``trace`` with ``concurrency`` synchronous clients.

    Returns one outcome per trace entry (same order) and the wall-clock
    seconds the replay took.
    """
    if concurrency < 1:
        raise ReproError("concurrency must be >= 1")
    outcomes: list[QueryOutcome | None] = [None] * len(trace)
    cursor_lock = threading.Lock()
    cursor = [0]

    def client() -> None:
        while True:
            with cursor_lock:
                index = cursor[0]
                if index >= len(trace):
                    return
                cursor[0] = index + 1
            request = trace[index]
            outcomes[index] = service.run(
                request.tenant,
                request.sql,
                session=request.session,
                timeout=timeout_per_query,
            )

    started = time.perf_counter()
    clients = [
        threading.Thread(
            target=client, name=f"repro-client-{i}", daemon=True
        )
        for i in range(concurrency)
    ]
    for thread in clients:
        thread.start()
    per_client_budget = timeout_per_query * (len(trace) + 1)
    for thread in clients:
        thread.join(per_client_budget)
    elapsed = time.perf_counter() - started
    if any(outcome is None for outcome in outcomes):
        raise ReproError("closed-loop replay did not complete every query")
    return [outcome for outcome in outcomes if outcome is not None], elapsed


def run_open_loop(
    service: QueryService,
    trace: list[ServeRequest],
    rate_qps: float,
    timeout_per_query: float = 120.0,
) -> tuple[list[QueryOutcome], float]:
    """Replay ``trace`` on a fixed arrival schedule of ``rate_qps``.

    Submissions never wait for completions (open loop); outcomes are
    collected afterwards. Shed queries appear as ``QueryRejected``.
    """
    if rate_qps <= 0:
        raise ReproError("rate_qps must be positive")
    pacer = threading.Event()  # never set: a bounded, interruptible timer
    tickets = []
    started = time.perf_counter()
    for index, request in enumerate(trace):
        target = started + index / rate_qps
        while True:
            remaining = target - time.perf_counter()
            if remaining <= 0:
                break
            pacer.wait(remaining)
        tickets.append(
            service.submit(
                request.tenant, request.sql, session=request.session
            )
        )
    outcomes = [ticket.outcome(timeout_per_query) for ticket in tickets]
    elapsed = time.perf_counter() - started
    return outcomes, elapsed


def summarize_outcomes(
    outcomes: list[QueryOutcome], wall_seconds: float
) -> dict[str, float]:
    """QPS, tail latencies and exact outcome accounting for one replay."""
    completed = [o for o in outcomes if isinstance(o, QueryCompleted)]
    rejected = [o for o in outcomes if isinstance(o, QueryRejected)]
    failed = [o for o in outcomes if isinstance(o, QueryFailed)]
    latencies = sorted(o.total_seconds for o in completed)
    cache_hits = sum(1 for o in completed if o.cache_path == "hit")
    subsumed = sum(1 for o in completed if o.cache_path == "subsumption")
    degraded = sum(1 for o in completed if not o.result.complete)
    return {
        "queries": float(len(outcomes)),
        "completed": float(len(completed)),
        "rejected": float(len(rejected)),
        "failed": float(len(failed)),
        "degraded": float(degraded),
        "wall_seconds": wall_seconds,
        "qps": len(completed) / wall_seconds if wall_seconds > 0 else 0.0,
        "p50_seconds": percentile(latencies, 0.50),
        "p95_seconds": percentile(latencies, 0.95),
        "p99_seconds": percentile(latencies, 0.99),
        "mean_seconds": (
            sum(latencies) / len(latencies) if latencies else 0.0
        ),
        "cache_hit_fraction": (
            cache_hits / len(completed) if completed else 0.0
        ),
        "subsumption_fraction": (
            subsumed / len(completed) if completed else 0.0
        ),
    }


# -- the `bench serve` runner ---------------------------------------------------


@dataclass(frozen=True)
class ServeBenchConfig:
    """Knobs for one serving-benchmark run."""

    rows: int = 60_000
    concurrencies: tuple[int, ...] = (1, 2, 4)
    n_sessions: int = 12
    clicks_per_session: int = 3
    queries_per_click: int = 6
    n_tenants: int = 6
    zipf_s: float = 1.2
    executor: str = "thread"
    service_workers: int = 2
    queue_depth: int = 64
    max_inflight_per_tenant: int = 2
    open_loop_queue_depth: int = 4
    chunk_rows: int | None = None
    verify_every: int = 7
    seed: int = 2012

    def effective_chunk_rows(self) -> int:
        if self.chunk_rows is not None:
            return self.chunk_rows
        return max(256, self.rows // 24)

    def drill(self) -> DrillDownConfig:
        return DrillDownConfig(
            n_sessions=self.n_sessions,
            clicks_per_session=self.clicks_per_session,
            queries_per_click=self.queries_per_click,
            seed=self.seed,
        )

    def mix(self) -> TenantMixConfig:
        return TenantMixConfig(
            n_tenants=self.n_tenants, zipf_s=self.zipf_s, seed=self.seed
        )


def _bench_table(config: ServeBenchConfig) -> Table:
    return generate_query_logs(
        LogsConfig(
            n_rows=config.rows,
            n_days=min(92, max(14, config.rows // 4000)),
            n_teams=min(40, max(8, config.rows // 3000)),
            seed=config.seed,
        )
    )


def _bench_store(table: Table, config: ServeBenchConfig) -> DataStore:
    return DataStore.from_table(
        table,
        DataStoreOptions(
            partition_fields=("country", "table_name"),
            max_chunk_rows=config.effective_chunk_rows(),
            reorder_rows=True,
            executor=config.executor,
        ),
    )


def _service_config(config: ServeBenchConfig, **overrides: Any) -> ServiceConfig:
    params: dict[str, Any] = {
        "workers": config.service_workers,
        "queue_depth": config.queue_depth,
        "max_inflight_per_tenant": config.max_inflight_per_tenant,
    }
    params.update(overrides)
    return ServiceConfig(**params)


def verify_serving_correctness(
    store: DataStore,
    outcomes: list[QueryOutcome],
    verify_every: int = 7,
) -> dict[str, int]:
    """Compare a deterministic sample of served results to direct runs.

    Every ``verify_every``-th completed outcome's result is re-executed
    straight on the store; content fingerprints must match exactly —
    the serving layer's cache and subsumption reuse may never change an
    answer. Returns checked/mismatch counts (mismatches must be zero).
    """
    completed = [o for o in outcomes if isinstance(o, QueryCompleted)]
    checked = 0
    mismatches = 0
    for index in range(0, len(completed), max(1, verify_every)):
        outcome = completed[index]
        direct = store.execute(outcome.sql)
        checked += 1
        if not direct.content_equal(outcome.result):
            mismatches += 1
    return {"checked": checked, "mismatches": mismatches}


def run_serve_bench(config: ServeBenchConfig | None = None) -> dict[str, Any]:
    """Run the serving sweep; returns the JSON-ready trajectory point.

    Per offered concurrency: a **cold** closed-loop replay (empty
    semantic cache — subsumption reuse inside drill-down sessions is
    the only help) then a **warm** replay of the same trace on the same
    service (exact canonical-plan hits). A final open-loop pass at an
    arrival rate above the measured cold throughput, against a service
    with a deliberately shallow queue, demonstrates explicit load
    shedding with exact accounting.
    """
    config = config or ServeBenchConfig()
    table = _bench_table(config)
    store = _bench_store(table, config)
    trace = build_serve_trace(table, config.drill(), config.mix())
    tenant_counts: dict[str, int] = {}
    for request in trace:
        tenant_counts[request.tenant] = (
            tenant_counts.get(request.tenant, 0) + 1
        )
    report: dict[str, Any] = {
        "bench": "serving",
        "rows": config.rows,
        "chunk_rows": config.effective_chunk_rows(),
        "chunks": store.n_chunks,
        "executor": config.executor,
        "service_workers": config.service_workers,
        "cpu_count": os.cpu_count(),
        "trace_queries": len(trace),
        "tenants": dict(sorted(tenant_counts.items())),
        "sweep": [],
    }
    last_outcomes: list[QueryOutcome] = []
    for concurrency in config.concurrencies:
        service = QueryService(store, _service_config(config))
        try:
            cold_outcomes, cold_wall = run_closed_loop(
                service, trace, concurrency
            )
            warm_outcomes, warm_wall = run_closed_loop(
                service, trace, concurrency
            )
            snapshot = service.stats()
        finally:
            service.close()
        cold = summarize_outcomes(cold_outcomes, cold_wall)
        warm = summarize_outcomes(warm_outcomes, warm_wall)
        report["sweep"].append(
            {
                "concurrency": concurrency,
                "cold": cold,
                "warm": warm,
                "warm_p50_speedup": (
                    cold["p50_seconds"] / warm["p50_seconds"]
                    if warm["p50_seconds"] > 0
                    else float("inf")
                ),
                "cache": snapshot.get("cache", {}),
            }
        )
        last_outcomes = cold_outcomes + warm_outcomes
    report["correctness"] = verify_serving_correctness(
        store, last_outcomes, config.verify_every
    )
    # Open-loop shedding point: shallow queues + an arrival rate well
    # above sustainable throughput -> explicit QueryRejected outcomes.
    base_qps = max(
        (point["cold"]["qps"] for point in report["sweep"]), default=1.0
    )
    shed_service = QueryService(
        store,
        _service_config(config, queue_depth=config.open_loop_queue_depth),
    )
    try:
        shed_outcomes, shed_wall = run_open_loop(
            shed_service, trace, rate_qps=max(4.0, 4.0 * base_qps)
        )
    finally:
        shed_service.close()
    report["open_loop"] = summarize_outcomes(shed_outcomes, shed_wall)
    report["open_loop"]["rate_qps"] = max(4.0, 4.0 * base_qps)
    store.executor.close()
    return report


def render_serve_report(report: dict[str, Any]) -> list[str]:
    """Human-readable summary lines for a :func:`run_serve_bench` result."""
    lines = [
        f"serving bench — {report['rows']} rows in {report['chunks']} "
        f"chunks, executor={report['executor']}, "
        f"{report['service_workers']} dispatch worker(s), "
        f"{report['cpu_count']} CPU(s)",
        f"trace: {report['trace_queries']} queries over "
        f"{len(report['tenants'])} tenants (Zipfian)",
        "",
    ]
    for point in report["sweep"]:
        cold, warm = point["cold"], point["warm"]
        lines.append(
            f"concurrency {point['concurrency']:>2}: "
            f"cold {cold['qps']:7.1f} q/s "
            f"(p50 {1000 * cold['p50_seconds']:6.1f} ms, "
            f"p95 {1000 * cold['p95_seconds']:6.1f} ms, "
            f"p99 {1000 * cold['p99_seconds']:6.1f} ms, "
            f"subsumed {cold['subsumption_fraction']:.0%}) | "
            f"warm {warm['qps']:7.1f} q/s "
            f"(p50 {1000 * warm['p50_seconds']:6.2f} ms, "
            f"hits {warm['cache_hit_fraction']:.0%}, "
            f"speedup {point['warm_p50_speedup']:.1f}x)"
        )
    correctness = report["correctness"]
    lines.append("")
    lines.append(
        f"correctness: {correctness['checked']} served results re-checked "
        f"against direct execution, {correctness['mismatches']} mismatches"
    )
    shed = report["open_loop"]
    lines.append(
        f"open loop @ {shed['rate_qps']:.1f} q/s arrivals: "
        f"{shed['completed']:.0f} served, {shed['rejected']:.0f} shed "
        f"(p95 {1000 * shed['p95_seconds']:.1f} ms)"
    )
    return lines
