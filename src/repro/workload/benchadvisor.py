"""The encoding-advisor benchmark: static codec vs per-field advisor picks.

One reusable implementation behind both surfaces that run it:

- ``repro bench advisor`` (the CLI) for ad-hoc runs, and
- ``benchmarks/bench_encoding_advisor.py``, which records the repo's
  perf trajectory point (``BENCH_PR9.json``).

Two stores are built from the *same* generated table: a baseline whose
field sections all go through one static codec, and an advisor store
(``codec="auto"``) whose sections carry the per-column choices. For
every field the bench then times encode/decode of the identical section
bytes under both codecs and scores

    (static_size / advisor_size) * (advisor_decode_MBps / static_decode_MBps)

— the size x decode-throughput product the advisor's cost model
optimizes. The headline number is the geometric mean of that per-field
metric. Correctness is asserted on every run regardless of scale: both
codecs must round-trip every section byte-exactly, the advisor store
must pass ``fsck_store`` clean, and a save/load cycle must preserve
rows, codec choices and section bytes.
"""

from __future__ import annotations

import math
import os
import tempfile
import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.analysis.fsck import fsck_store
from repro.core.datastore import DataStore, DataStoreOptions
from repro.errors import ReproError
from repro.storage.serde import encode_field_section, load_store, save_store
from repro.workload.generator import LogsConfig, generate_query_logs

#: The baseline every advisor choice is scored against — the store's
#: historical one-codec-for-everything default.
STATIC_CODEC = "zippy"


@dataclass(frozen=True)
class AdvisorBenchConfig:
    """Knobs for one advisor-benchmark run."""

    rows: int = 200_000
    repeats: int = 3
    seed: int = 2012

    def options(self, codec: str) -> DataStoreOptions:
        return DataStoreOptions(
            partition_fields=("country", "table_name"),
            max_chunk_rows=max(500, self.rows // 24),
            reorder_rows=True,
            codec=codec,
            advisor_seed=self.seed,
        )


def _best_seconds(fn: Callable[[], Any], repeats: int) -> float:
    best = float("inf")
    for __ in range(max(1, repeats)):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _measure_codec(
    codec_name: str, section: bytes, repeats: int
) -> dict[str, Any]:
    """Size + best-of encode/decode throughput for one codec/section."""
    from repro.compress.registry import get_codec

    codec = get_codec(codec_name)
    blob = codec.compress(section)
    if codec.decompress(blob) != section:
        raise ReproError(
            f"codec {codec_name} failed to round-trip a "
            f"{len(section)}-byte field section"
        )
    encode_seconds = _best_seconds(lambda: codec.compress(section), repeats)
    decode_seconds = _best_seconds(lambda: codec.decompress(blob), repeats)
    mib = len(section) / (1 << 20)
    return {
        "codec": codec_name,
        "section_bytes": len(section),
        "encoded_bytes": len(blob),
        "ratio": len(section) / len(blob) if blob else 0.0,
        "encode_seconds": encode_seconds,
        "decode_seconds": decode_seconds,
        "encode_mb_per_s": mib / max(encode_seconds, 1e-9),
        "decode_mb_per_s": mib / max(decode_seconds, 1e-9),
    }


def _build_table(config: AdvisorBenchConfig):
    return generate_query_logs(
        LogsConfig(
            n_rows=config.rows,
            n_days=min(92, max(14, config.rows // 4000)),
            n_teams=min(40, max(8, config.rows // 3000)),
            seed=config.seed,
        )
    )


def _check_save_load(store: DataStore) -> dict[str, Any]:
    """Save/load the advisor store; verify codecs + sections survive."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-advisor-") as tmp:
        path = os.path.join(tmp, "advisor.pds")
        saved_bytes = save_store(store, path)
        loaded = load_store(path)
    codecs_match = all(
        loaded.fields[name].codec == field.codec
        for name, field in store.fields.items()
        if not field.virtual
    )
    sections_match = all(
        encode_field_section(loaded.fields[name])
        == encode_field_section(field)
        for name, field in store.fields.items()
        if not field.virtual
    )
    return {
        "saved_bytes": saved_bytes,
        "rows_match": loaded.n_rows == store.n_rows,
        "codecs_match": codecs_match,
        "sections_match": sections_match,
    }


def run_advisor_bench(
    config: AdvisorBenchConfig | None = None,
) -> dict[str, Any]:
    """Run the advisor bench; returns the JSON-ready trajectory point."""
    config = config or AdvisorBenchConfig()
    table = _build_table(config)

    static_store = DataStore.from_table(table, config.options(STATIC_CODEC))
    advisor_store = DataStore.from_table(table, config.options("auto"))

    fsck_report = fsck_store(advisor_store)
    advisor_stats = advisor_store.import_stats

    fields: dict[str, dict[str, Any]] = {}
    log_metrics: list[float] = []
    static_total = 0
    advisor_total = 0
    for name in sorted(advisor_store.fields):
        field = advisor_store.fields[name]
        if field.virtual:
            continue
        section = encode_field_section(field)
        static_section = encode_field_section(static_store.fields[name])
        static_entry = _measure_codec(STATIC_CODEC, section, config.repeats)
        advisor_entry = _measure_codec(
            field.codec if field.codec is not None else STATIC_CODEC,
            section,
            config.repeats,
        )
        size_gain = (
            static_entry["encoded_bytes"] / advisor_entry["encoded_bytes"]
        )
        decode_gain = (
            advisor_entry["decode_mb_per_s"] / static_entry["decode_mb_per_s"]
        )
        metric = size_gain * decode_gain
        log_metrics.append(math.log(metric))
        static_total += static_entry["encoded_bytes"]
        advisor_total += advisor_entry["encoded_bytes"]
        fields[name] = {
            "sections_identical": section == static_section,
            "static": static_entry,
            "advisor": advisor_entry,
            "size_gain": size_gain,
            "decode_gain": decode_gain,
            "size_decode_metric": metric,
            "choice": dict(advisor_stats.field_codecs.get(name, {}))
            if advisor_stats is not None
            else {},
        }

    geomean = (
        math.exp(sum(log_metrics) / len(log_metrics)) if log_metrics else 0.0
    )
    return {
        "bench": "advisor",
        "pr": 9,
        "rows": config.rows,
        "repeats": config.repeats,
        "seed": config.seed,
        "static_codec": STATIC_CODEC,
        "fields": fields,
        "static_encoded_bytes": static_total,
        "advisor_encoded_bytes": advisor_total,
        "size_decode_geomean": geomean,
        "advisor_seconds": (
            advisor_stats.advisor_seconds if advisor_stats is not None else 0.0
        ),
        "fsck_clean": fsck_report.ok,
        "fsck_findings": [str(f) for f in fsck_report.findings],
        "save_load": _check_save_load(advisor_store),
    }


def render_advisor_report(report: dict[str, Any]) -> list[str]:
    """Human-readable summary for a :func:`run_advisor_bench` result."""
    lines = [
        f"advisor bench — {report['rows']} rows, best of "
        f"{report['repeats']}, baseline codec {report['static_codec']}",
        "",
        f"{'field':<14} {'advisor codec':<16} {'size x':>7} "
        f"{'dec x':>7} {'metric':>7}  dec MB/s (base -> advisor)",
    ]
    for name, entry in report["fields"].items():
        lines.append(
            f"{name:<14} {entry['advisor']['codec']:<16} "
            f"{entry['size_gain']:>6.2f}x "
            f"{entry['decode_gain']:>6.2f}x "
            f"{entry['size_decode_metric']:>7.2f}  "
            f"{entry['static']['decode_mb_per_s']:>8.1f} -> "
            f"{entry['advisor']['decode_mb_per_s']:>8.1f}"
        )
    save_load = report["save_load"]
    lines.extend(
        [
            "",
            f"encoded bytes: static {report['static_encoded_bytes']} -> "
            f"advisor {report['advisor_encoded_bytes']}",
            f"size x decode geomean: {report['size_decode_geomean']:.2f}x",
            f"advisor phase: {1000 * report['advisor_seconds']:.1f} ms",
            "fsck: " + ("clean" if report["fsck_clean"] else "FINDINGS"),
            "save/load: "
            + (
                "ok"
                if save_load["rows_match"]
                and save_load["codecs_match"]
                and save_load["sections_match"]
                else "BUG"
            ),
        ]
    )
    return lines
