"""Workloads: the synthetic PowerDrill query-log dataset and queries.

- :mod:`repro.workload.generator` -- a deterministic stand-in for the
  paper's experimental table (5M rows of PowerDrill's own query logs
  with ``timestamp``, ``table_name``, ``latency``, ``country``).
- :mod:`repro.workload.queries` -- the paper's Queries 1-3 plus a
  drill-down session generator reproducing the Web UI's production
  query mix (conjunctions of IN restrictions on correlated fields).
"""

from repro.workload.generator import LogsConfig, generate_query_logs
from repro.workload.queries import (
    DrillDownConfig,
    QUERY_1,
    QUERY_2,
    QUERY_3,
    generate_drilldown_session_groups,
    generate_drilldown_sessions,
    paper_queries,
)

__all__ = [
    "DrillDownConfig",
    "LogsConfig",
    "QUERY_1",
    "QUERY_2",
    "QUERY_3",
    "generate_drilldown_session_groups",
    "generate_drilldown_sessions",
    "generate_query_logs",
    "paper_queries",
]
