"""The scan-path benchmark: worker sweep + cache-policy sweep.

One reusable implementation behind both surfaces that run it:

- ``repro bench scan`` (the CLI) for ad-hoc runs, and
- ``benchmarks/bench_parallel_scan.py``, which records the repo's perf
  trajectory point (``BENCH_PR2.json``) so scan-path regressions are
  visible PR over PR (the ScanTwin idea from PAPERS.md).

Three sweeps, all on the shared synthetic log workload:

1. **Workers** — the same aggregation workload through
   :class:`~repro.core.executor.SerialExecutor` and
   :class:`~repro.core.executor.ParallelExecutor` at each requested
   worker count, with chunk-result caching off so every pass measures
   the scan itself. Result rows are compared against serial on every
   configuration (the determinism guarantee, re-checked here).
2. **Executors** — the same workload through each registered execution
   strategy (serial / thread / process) at the default worker count,
   with per-phase :class:`~repro.core.result.ScanStats` recorded so the
   process strategy's arena-build and pickling overheads are visible
   next to its GIL-free scan. Bit-identity against serial is asserted
   per strategy.
3. **Cache policies** — a hot-set + one-off-scan query trace against a
   chunk cache deliberately sized *below* the working set, per policy;
   reports hit/miss/eviction counts and resident bytes, demonstrating
   bounded memory under eviction pressure.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any

from repro.core.datastore import DataStore, DataStoreOptions
from repro.workload.generator import LogsConfig, generate_query_logs

#: The hot aggregation queries; multi-aggregate on purpose so each
#: chunk task carries real kernel work (bincounts, unique, lexsort).
_HOT_QUERIES = (
    "SELECT country, COUNT(*) AS c, SUM(latency) AS s, MIN(latency) AS lo, "
    "MAX(latency) AS hi FROM data GROUP BY country ORDER BY c DESC LIMIT 10",
    "SELECT table_name, COUNT(*) AS c, COUNT(DISTINCT user_name) AS u "
    "FROM data GROUP BY table_name ORDER BY c DESC LIMIT 10",
    "SELECT user_name, AVG(latency) AS a, COUNT(DISTINCT table_name) AS t "
    "FROM data GROUP BY user_name ORDER BY a DESC LIMIT 10",
)

#: Aggregate/group combinations used as one-off queries in the cache
#: trace — each distinct (group field, aggregates) pair is a distinct
#: cache signature, which is what creates eviction pressure.
_ONE_OFF_GROUPS = ("country", "table_name", "user_name")
_ONE_OFF_AGGS = (
    "COUNT(*)",
    "SUM(latency)",
    "AVG(latency)",
    "MIN(latency)",
    "MAX(latency)",
    "COUNT(latency)",
)


@dataclass(frozen=True)
class ScanBenchConfig:
    """Knobs for one scan-benchmark run."""

    rows: int = 60_000
    workers: tuple[int, ...] = (1, 2, 4)
    policies: tuple[str, ...] = ("lru", "2q", "arc")
    executors: tuple[str, ...] = ("serial", "thread", "process")
    repeats: int = 3
    chunk_rows: int | None = None
    cache_trace_steps: int = 120
    seed: int = 2012

    def effective_chunk_rows(self) -> int:
        if self.chunk_rows is not None:
            return self.chunk_rows
        return max(256, self.rows // 24)


def _bench_table(config: ScanBenchConfig):
    return generate_query_logs(
        LogsConfig(
            n_rows=config.rows,
            n_days=min(92, max(14, config.rows // 4000)),
            n_teams=min(40, max(8, config.rows // 3000)),
            seed=config.seed,
        )
    )


def _build_store(table: Any, config: ScanBenchConfig, **overrides: Any) -> DataStore:
    options = DataStoreOptions(
        partition_fields=("country", "table_name"),
        max_chunk_rows=config.effective_chunk_rows(),
        reorder_rows=True,
        **overrides,
    )
    return DataStore.from_table(table, options)


def _timed_pass(store: DataStore, queries: tuple[str, ...], repeats: int):
    """Best-of-``repeats`` wall-clock over the query list, plus rows."""
    rows = [store.execute(sql).sorted_rows() for sql in queries]  # warm
    best = float("inf")
    scan_seconds = 0.0
    for __ in range(repeats):
        started = time.perf_counter()
        results = [store.execute(sql) for sql in queries]
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
            scan_seconds = sum(r.stats.scan_seconds for r in results)
    return best, scan_seconds, rows


def _worker_sweep(table: Any, config: ScanBenchConfig) -> dict[str, Any]:
    serial_store = _build_store(table, config, cache_chunk_results=False)
    serial_seconds, serial_scan, serial_rows = _timed_pass(
        serial_store, _HOT_QUERIES, config.repeats
    )
    sweep: list[dict[str, Any]] = []
    identical = True
    for workers in config.workers:
        store = _build_store(
            table,
            config,
            cache_chunk_results=False,
            executor="parallel",
            workers=workers,
        )
        seconds, scan_seconds, rows = _timed_pass(
            store, _HOT_QUERIES, config.repeats
        )
        identical = identical and rows == serial_rows
        sweep.append(
            {
                "workers": workers,
                "seconds": seconds,
                "scan_seconds": scan_seconds,
                "speedup_vs_serial": serial_seconds / seconds,
            }
        )
        store.executor.close()
    return {
        "serial_seconds": serial_seconds,
        "serial_scan_seconds": serial_scan,
        "chunks": serial_store.n_chunks,
        "sweep": sweep,
        "results_identical_to_serial": identical,
    }


def _timed_pass_with_stats(
    store: DataStore, queries: tuple[str, ...], repeats: int
):
    """Like :func:`_timed_pass` but keeps the per-phase ScanStats sums."""
    rows = [store.execute(sql).sorted_rows() for sql in queries]  # warm
    best = float("inf")
    phases = {"restriction": 0.0, "scan": 0.0, "merge": 0.0}
    rows_scanned = 0
    for __ in range(repeats):
        started = time.perf_counter()
        results = [store.execute(sql) for sql in queries]
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
            phases = {
                "restriction": sum(r.stats.restriction_seconds for r in results),
                "scan": sum(r.stats.scan_seconds for r in results),
                "merge": sum(r.stats.merge_seconds for r in results),
            }
            rows_scanned = sum(r.stats.rows_scanned for r in results)
    return best, phases, rows_scanned, rows


def _executor_sweep(table: Any, config: ScanBenchConfig) -> dict[str, Any]:
    """The serial/thread/process strategy sweep (BENCH_PR7's subject)."""
    results: list[dict[str, Any]] = []
    serial_rows = None
    serial_seconds = None
    identical = True
    for name in config.executors:
        store = _build_store(
            table, config, cache_chunk_results=False, executor=name
        )
        seconds, phases, rows_scanned, rows = _timed_pass_with_stats(
            store, _HOT_QUERIES, config.repeats
        )
        if serial_rows is None:
            # The first strategy in the sweep (serial by default) is
            # the bit-identity reference for the rest.
            serial_rows = rows
            serial_seconds = seconds
        else:
            identical = identical and rows == serial_rows
        results.append(
            {
                "executor": name,
                "describe": store.executor.describe(),
                "seconds": seconds,
                "phase_seconds": phases,
                "rows_per_second": (
                    rows_scanned / seconds if seconds > 0 else 0.0
                ),
                "speedup_vs_serial": (
                    serial_seconds / seconds if serial_seconds else 1.0
                ),
            }
        )
        store.executor.close()
    return {
        "executor_sweep": results,
        "executor_results_identical": identical,
    }


def _cache_trace(store: DataStore, config: ScanBenchConfig) -> float:
    """Hot queries with periodic one-off signatures; returns seconds."""
    one_offs = [
        f"SELECT {group}, {agg} AS v FROM data GROUP BY {group} LIMIT 5"
        for group in _ONE_OFF_GROUPS
        for agg in _ONE_OFF_AGGS
    ]
    started = time.perf_counter()
    for step in range(config.cache_trace_steps):
        # Temporal locality: each hot query runs in bursts of three
        # before the workload moves on, like a user refining one drill-
        # down; a round-robin loop over a set larger than capacity would
        # thrash every recency-based policy to a 0% hit rate.
        store.execute(_HOT_QUERIES[(step // 3) % len(_HOT_QUERIES)])
        if step % 4 == 3:
            store.execute(one_offs[(step // 4) % len(one_offs)])
    return time.perf_counter() - started


def _policy_sweep(table: Any, config: ScanBenchConfig) -> list[dict[str, Any]]:
    # Size the cache well below the working set: every hot query caches
    # a partial per chunk, so a fraction of one query's worth of chunks
    # guarantees eviction pressure while leaving room for hits.
    probe = _build_store(table, config)
    probe.execute(_HOT_QUERIES[0])
    full_weight = max(probe.chunk_cache.used, 1.0)
    capacity = max(4096.0, 1.5 * full_weight)
    results = []
    for policy in config.policies:
        store = _build_store(
            table,
            config,
            cache_policy=policy,
            cache_capacity_bytes=capacity,
        )
        seconds = _cache_trace(store, config)
        stats = store.chunk_cache_stats()
        results.append(
            {
                "policy": policy,
                "capacity_bytes": capacity,
                "seconds": seconds,
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "hit_rate": stats.hit_rate,
                "resident_bytes": store.chunk_cache.used,
                "resident_entries": len(store.chunk_cache),
            }
        )
    return results


def run_scan_bench(config: ScanBenchConfig | None = None) -> dict[str, Any]:
    """Run both sweeps; returns the JSON-ready trajectory point."""
    config = config or ScanBenchConfig()
    table = _bench_table(config)
    report: dict[str, Any] = {
        "bench": "parallel_scan",
        "rows": config.rows,
        "chunk_rows": config.effective_chunk_rows(),
        "repeats": config.repeats,
        "cpu_count": os.cpu_count(),
        "queries": list(_HOT_QUERIES),
    }
    report.update(_worker_sweep(table, config))
    report.update(_executor_sweep(table, config))
    report["cache_policies"] = _policy_sweep(table, config)
    return report


def render_scan_report(report: dict[str, Any]) -> list[str]:
    """Human-readable summary lines for a :func:`run_scan_bench` result."""
    lines = [
        f"parallel chunk-scan bench — {report['rows']} rows in "
        f"{report['chunks']} chunks, {report['cpu_count']} CPU(s)",
        "",
        f"serial:            {1000 * report['serial_seconds']:8.1f} ms "
        f"(scan {1000 * report['serial_scan_seconds']:.1f} ms)",
    ]
    for point in report["sweep"]:
        lines.append(
            f"parallel x{point['workers']:<2}:      "
            f"{1000 * point['seconds']:8.1f} ms "
            f"(speedup {point['speedup_vs_serial']:.2f}x)"
        )
    lines.append(
        "parallel == serial results: "
        + ("yes" if report["results_identical_to_serial"] else "NO — BUG")
    )
    lines.append("")
    lines.append("execution strategies (default worker count):")
    for entry in report.get("executor_sweep", []):
        phases = entry["phase_seconds"]
        lines.append(
            f"  {entry['describe']:<14} {1000 * entry['seconds']:8.1f} ms  "
            f"{entry['rows_per_second']:12,.0f} rows/s  "
            f"(scan {1000 * phases['scan']:.1f} ms, "
            f"merge {1000 * phases['merge']:.1f} ms, "
            f"speedup {entry['speedup_vs_serial']:.2f}x)"
        )
    if "executor_results_identical" in report:
        lines.append(
            "strategies == serial results: "
            + ("yes" if report["executor_results_identical"] else "NO — BUG")
        )
    lines.append("")
    lines.append("bounded chunk-cache under eviction pressure:")
    for entry in report["cache_policies"]:
        lines.append(
            f"  {entry['policy']:<4} hit rate {entry['hit_rate']:6.1%}  "
            f"hits {entry['hits']:>5}  evictions {entry['evictions']:>5}  "
            f"resident {entry['resident_bytes'] / 1024:7.1f} KB "
            f"(cap {entry['capacity_bytes'] / 1024:.1f} KB)"
        )
    return lines
