"""The compression-kernel benchmark: frozen scalar oracles vs numpy kernels.

One reusable implementation behind both surfaces that run it:

- ``repro bench compress`` (the CLI) for ad-hoc runs, and
- ``benchmarks/bench_compress_kernels.py``, which records the repo's
  perf trajectory point (``BENCH_PR5.json``) so codec regressions are
  visible PR over PR.

Each codec is measured against its frozen scalar twin in
:mod:`repro.compress.reference` on a corpus that plays to its role in
the store: a zigzag-varint value stream for the bulk varint kernels, a
run-heavy byte buffer for RLE, serialized PDS2 store bytes for the LZ
codecs (Zippy, LZO), and skewed text for Huffman. Byte identity and
round-trips are checked on every run — speed without identical output
is a bug, not a result.

The Huffman corpus is deliberately small (``huffman_bytes``): the
frozen scalar encoder accumulates its bitstream in one big int and is
accidentally quadratic, so large corpora time the oracle's pathology,
not the codec.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.compress import reference
from repro.compress.registry import (
    all_compression_stats,
    get_codec,
    reset_compression_stats,
)
from repro.compress.varint import decode_zigzag_stream, encode_zigzag_array
from repro.core.datastore import DataStore, DataStoreOptions
from repro.workload.benchimport import serialized_store_bytes
from repro.workload.generator import LogsConfig, generate_query_logs


@dataclass(frozen=True)
class CompressBenchConfig:
    """Knobs for one compression-benchmark run."""

    rows: int = 200_000
    repeats: int = 3
    seed: int = 2012
    #: LZ corpus cap: serialized store bytes, sliced to keep the scalar
    #: oracles' runtime bounded.
    lz_bytes: int = 1 << 20
    #: Huffman corpus cap — the scalar oracle encoder is quadratic.
    huffman_bytes: int = 1 << 17
    #: Rows in the store whose serialization feeds the LZ codecs.
    store_rows: int = 24_000
    #: Longest run in the RLE corpus.
    max_run: int = 24


def _best_seconds(fn: Callable[[], Any], repeats: int) -> float:
    best = float("inf")
    for __ in range(max(1, repeats)):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


# -- corpora -----------------------------------------------------------------


def _varint_corpus(config: CompressBenchConfig) -> np.ndarray:
    """``rows`` int64 values: mostly small deltas, a tail of big jumps."""
    rng = np.random.default_rng(config.seed)
    small = rng.integers(-(1 << 7), 1 << 7, size=config.rows)
    mid = rng.integers(-(1 << 20), 1 << 20, size=config.rows)
    big = rng.integers(-(1 << 40), 1 << 40, size=config.rows)
    roll = rng.random(config.rows)
    return np.where(
        roll < 0.70, small, np.where(roll < 0.95, mid, big)
    ).astype(np.int64)


def _run_heavy_corpus(config: CompressBenchConfig) -> bytes:
    """``rows`` bytes of few-symbol runs, lengths 1..``max_run``."""
    rng = np.random.default_rng(config.seed + 1)
    n_runs = 2 * config.rows // max(1, config.max_run) + 16
    lengths = rng.integers(1, config.max_run + 1, size=n_runs)
    symbols = rng.integers(0, 8, size=n_runs).astype(np.uint8)
    data = np.repeat(symbols, lengths)
    return data[: config.rows].tobytes()


def _store_corpus(config: CompressBenchConfig) -> bytes:
    """Serialized PDS2 store bytes — the LZ codecs' real workload."""
    table = generate_query_logs(
        LogsConfig(
            n_rows=config.store_rows,
            n_days=min(92, max(14, config.store_rows // 4000)),
            n_teams=min(40, max(8, config.store_rows // 3000)),
            seed=config.seed,
        )
    )
    store = DataStore.from_table(
        table,
        DataStoreOptions(
            partition_fields=("country", "table_name"),
            max_chunk_rows=max(256, config.store_rows // 24),
            reorder_rows=True,
        ),
    )
    return serialized_store_bytes(store)[: config.lz_bytes]


def _text_corpus(config: CompressBenchConfig) -> bytes:
    """Skewed word soup: a Huffman-friendly byte-frequency profile."""
    words = [
        b"select", b"count", b"from", b"logs", b"where", b"country",
        b"group", b"by", b"table_name", b"latency", b"timestamp", b"and",
    ]
    rng = np.random.default_rng(config.seed + 2)
    weights = 1.0 / np.arange(1, len(words) + 1)
    picks = rng.choice(len(words), size=config.huffman_bytes // 4,
                       p=weights / weights.sum())
    return b" ".join(words[int(i)] for i in picks)[: config.huffman_bytes]


# -- the run ----------------------------------------------------------------


def _entry(
    raw_bytes: int,
    encoded_bytes: int,
    times: dict[str, float],
    byte_identical: bool,
    round_trip: bool,
) -> dict[str, Any]:
    kernel_encode = times["kernel_encode_seconds"]
    kernel_decode = times["kernel_decode_seconds"]
    return {
        "raw_bytes": raw_bytes,
        "encoded_bytes": encoded_bytes,
        "ratio": raw_bytes / encoded_bytes if encoded_bytes else 0.0,
        **times,
        "encode_speedup": (
            times["scalar_encode_seconds"] / kernel_encode
            if kernel_encode > 0
            else 0.0
        ),
        "decode_speedup": (
            times["scalar_decode_seconds"] / kernel_decode
            if kernel_decode > 0
            else 0.0
        ),
        "encode_mb_per_s": (
            raw_bytes / kernel_encode / (1 << 20) if kernel_encode > 0 else 0.0
        ),
        "decode_mb_per_s": (
            raw_bytes / kernel_decode / (1 << 20) if kernel_decode > 0 else 0.0
        ),
        "byte_identical": byte_identical,
        "round_trip": round_trip,
    }


def _scalar_zigzag_encode(values: np.ndarray) -> bytes:
    return b"".join(reference.encode_zigzag(int(v)) for v in values.tolist())


def _scalar_zigzag_decode(blob: bytes, count: int) -> list[int]:
    out: list[int] = []
    pos = 0
    for __ in range(count):
        value, pos = reference.decode_zigzag(blob, pos)
        out.append(value)
    return out


def _bench_varint(config: CompressBenchConfig) -> dict[str, Any]:
    values = _varint_corpus(config)
    kernel_blob = encode_zigzag_array(values)
    scalar_blob = _scalar_zigzag_encode(values)
    decoded, consumed = decode_zigzag_stream(kernel_blob, values.size, 0)
    times = {
        "scalar_encode_seconds": _best_seconds(
            lambda: _scalar_zigzag_encode(values), config.repeats
        ),
        "kernel_encode_seconds": _best_seconds(
            lambda: encode_zigzag_array(values), config.repeats
        ),
        "scalar_decode_seconds": _best_seconds(
            lambda: _scalar_zigzag_decode(kernel_blob, values.size),
            config.repeats,
        ),
        "kernel_decode_seconds": _best_seconds(
            lambda: decode_zigzag_stream(kernel_blob, values.size, 0),
            config.repeats,
        ),
    }
    return _entry(
        raw_bytes=values.size * 8,
        encoded_bytes=len(kernel_blob),
        times=times,
        byte_identical=kernel_blob == scalar_blob,
        round_trip=(
            consumed == len(kernel_blob) and np.array_equal(decoded, values)
        ),
    )


def _bench_codec(
    name: str,
    raw: bytes,
    scalar_encode: Callable[[bytes], bytes],
    scalar_decode: Callable[[bytes], bytes],
    repeats: int,
) -> dict[str, Any]:
    codec = get_codec(name)
    kernel_blob = codec.compress(raw)
    scalar_blob = scalar_encode(raw)
    times = {
        "scalar_encode_seconds": _best_seconds(
            lambda: scalar_encode(raw), repeats
        ),
        "kernel_encode_seconds": _best_seconds(
            lambda: codec.compress(raw), repeats
        ),
        "scalar_decode_seconds": _best_seconds(
            lambda: scalar_decode(kernel_blob), repeats
        ),
        "kernel_decode_seconds": _best_seconds(
            lambda: codec.decompress(kernel_blob), repeats
        ),
    }
    return _entry(
        raw_bytes=len(raw),
        encoded_bytes=len(kernel_blob),
        times=times,
        byte_identical=kernel_blob == scalar_blob,
        round_trip=codec.decompress(kernel_blob) == raw,
    )


def run_compress_bench(
    config: CompressBenchConfig | None = None,
) -> dict[str, Any]:
    """Run the codec bench; returns the JSON-ready trajectory point."""
    config = config or CompressBenchConfig()
    reset_compression_stats()

    codecs: dict[str, dict[str, Any]] = {
        "varint-stream": _bench_varint(config)
    }
    store_blob = _store_corpus(config)
    specs = [
        (
            "rle",
            _run_heavy_corpus(config),
            reference.rle_encode_bytes,
            reference.rle_decode_bytes,
        ),
        (
            "zippy",
            store_blob,
            reference.zippy_compress,
            reference.zippy_decompress,
        ),
        ("lzo", store_blob, reference.lzo_compress, reference.lzo_decompress),
        (
            "huffman",
            _text_corpus(config),
            reference.huffman_compress,
            reference.huffman_decompress,
        ),
    ]
    for name, raw, scalar_encode, scalar_decode in specs:
        codecs[name] = _bench_codec(
            name, raw, scalar_encode, scalar_decode, config.repeats
        )

    return {
        "bench": "compress",
        "rows": config.rows,
        "repeats": config.repeats,
        "lz_corpus_bytes": len(store_blob),
        "huffman_corpus_bytes": codecs["huffman"]["raw_bytes"],
        "codecs": codecs,
        "codec_stats": {
            name: stats.as_dict()
            for name, stats in sorted(all_compression_stats().items())
            if stats.encode_calls or stats.decode_calls
        },
    }


def render_compress_report(report: dict[str, Any]) -> list[str]:
    """Human-readable summary for a :func:`run_compress_bench` result."""
    lines = [
        f"compress bench — {report['rows']} rows/bytes per corpus, "
        f"best of {report['repeats']}",
        "",
        f"{'codec':<14} {'raw':>9} {'ratio':>6} "
        f"{'enc MB/s':>9} {'dec MB/s':>9} {'enc x':>7} {'dec x':>7}  checks",
    ]
    for name, entry in report["codecs"].items():
        checks = []
        checks.append("bytes=" + ("ok" if entry["byte_identical"] else "BUG"))
        checks.append("rt=" + ("ok" if entry["round_trip"] else "BUG"))
        lines.append(
            f"{name:<14} {entry['raw_bytes']:>9} {entry['ratio']:>6.2f} "
            f"{entry['encode_mb_per_s']:>9.1f} "
            f"{entry['decode_mb_per_s']:>9.1f} "
            f"{entry['encode_speedup']:>6.1f}x "
            f"{entry['decode_speedup']:>6.1f}x  {' '.join(checks)}"
        )
    lines.append("")
    lines.append("per-codec registry stats (this run):")
    for name, stats in report["codec_stats"].items():
        lines.append(
            f"  {name:<10} encode {stats['encode_calls']:>3} calls "
            f"{stats['encode_bytes_in']:>9} B in -> "
            f"{stats['encode_bytes_out']:>9} B out, decode "
            f"{stats['decode_calls']:>3} calls, "
            f"ratio {stats['compression_ratio']:.2f}"
        )
    return lines
