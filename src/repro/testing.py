"""Comparison helpers for validating results across backends.

All backends produce identical results *up to floating-point summation
order*: SUM/AVG accumulate in different orders (row order vs. per-chunk
vectorized bincounts), and FP addition is not associative. These
helpers compare result rows exactly for everything except floats, which
are compared with a relative tolerance.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import Any

_DEFAULT_REL_TOL = 1e-9
_DEFAULT_ABS_TOL = 1e-12


def values_equal(
    a: Any,
    b: Any,
    rel_tol: float = _DEFAULT_REL_TOL,
    abs_tol: float = _DEFAULT_ABS_TOL,
) -> bool:
    """Equality with float tolerance; ints and floats may mix."""
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, float) or isinstance(b, float):
        if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
            return False
        return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
    if isinstance(a, tuple) and isinstance(b, tuple):
        return rows_equal(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
    return a == b


def rows_equal(
    row_a: Sequence[Any],
    row_b: Sequence[Any],
    rel_tol: float = _DEFAULT_REL_TOL,
    abs_tol: float = _DEFAULT_ABS_TOL,
) -> bool:
    """Tuple equality with per-value float tolerance."""
    if len(row_a) != len(row_b):
        return False
    return all(
        values_equal(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
        for a, b in zip(row_a, row_b)
    )


def results_equal(
    rows_a: Sequence[Sequence[Any]],
    rows_b: Sequence[Sequence[Any]],
    rel_tol: float = _DEFAULT_REL_TOL,
    abs_tol: float = _DEFAULT_ABS_TOL,
) -> bool:
    """Row-list equality with float tolerance (order-sensitive)."""
    if len(rows_a) != len(rows_b):
        return False
    return all(
        rows_equal(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
        for a, b in zip(rows_a, rows_b)
    )


def assert_results_equal(
    rows_a: Sequence[Sequence[Any]],
    rows_b: Sequence[Sequence[Any]],
    rel_tol: float = _DEFAULT_REL_TOL,
    abs_tol: float = _DEFAULT_ABS_TOL,
    context: str = "",
) -> None:
    """Assert row-list equality with a helpful diff on failure."""
    if len(rows_a) != len(rows_b):
        # Test helpers must raise AssertionError so pytest renders the
        # failure as an assertion, not a library error.
        raise AssertionError(  # reprolint: disable=REP001 -- test assertion
            f"{context}: {len(rows_a)} rows vs {len(rows_b)} rows\n"
            f"  a: {list(rows_a)[:5]}\n  b: {list(rows_b)[:5]}"
        )
    for index, (a, b) in enumerate(zip(rows_a, rows_b)):
        if not rows_equal(a, b, rel_tol=rel_tol, abs_tol=abs_tol):
            raise AssertionError(  # reprolint: disable=REP001 -- test assertion
                f"{context}: rows differ at index {index}:\n"
                f"  a: {a}\n  b: {b}"
            )
