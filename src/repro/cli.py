"""Command-line interface: import data, run queries, inspect stores.

Usage (also via ``python -m repro``):

    python -m repro import logs.csv store.pds --partition country,table_name
    python -m repro import logs.csv store.pds --codec auto
    python -m repro describe store.pds
    python -m repro query store.pds "SELECT country, COUNT(*) c FROM data \
        GROUP BY country ORDER BY c DESC LIMIT 5"
    python -m repro repl store.pds
    python -m repro info store.pds
    python -m repro demo --rows 50000
    python -m repro chaos --crash-rate 0,0.05,0.2,0.5 --fault-seed 7
    python -m repro chaos --local --rows 4000 --queries 3
    python -m repro lint src/repro
    python -m repro fsck store.pds

``import`` accepts ``.csv``, ``.rio`` (record-io) and ``.cio``
(column-io) inputs; the schema for the row formats is inferred from a
CSV header + value sniffing.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.core.datastore import DataStore, DataStoreOptions
from repro.core.result import QueryResult
from repro.core.table import Table
from repro.errors import ReproError
from repro.storage.serde import load_store, save_store
from repro.workload.generator import LogsConfig, generate_query_logs
from repro.workload.queries import paper_queries


def _load_table(path: str) -> Table:
    if path.endswith(".csv"):
        import csv as csv_module

        from repro.core.table import Column, DataType

        with open(path, newline="", encoding="utf-8") as handle:
            reader = csv_module.reader(handle)
            header = next(reader)
            rows = list(reader)
        columns = []
        for index, name in enumerate(header):
            raw = [row[index] for row in rows]
            columns.append(Column(name, _sniff(raw)))
        return Table(columns)
    if path.endswith(".cio"):
        from repro.formats.columnio import read_columnio

        return read_columnio(path)
    raise ReproError(f"unsupported input format: {path} (use .csv or .cio)")


def _sniff(raw: list[str]) -> list:
    """Best-effort typing of CSV strings: int, then float, else str."""
    def convert(kind):
        out = []
        for value in raw:
            if value == "\\N" or value == "":
                out.append(None)
            else:
                out.append(kind(value))
        return out

    for kind in (int, float):
        try:
            return convert(kind)
        except ValueError:
            continue
    return [None if v == "\\N" else v for v in raw]


def _print_result(result: QueryResult, show_stats: bool) -> None:
    names = result.column_names
    widths = [
        max(len(str(name)), *(len(str(row[i])) for row in result.rows()))
        if result.rows()
        else len(str(name))
        for i, name in enumerate(names)
    ]
    header = "  ".join(str(n).ljust(w) for n, w in zip(names, widths))
    print(header)
    print("-" * len(header))
    for row in result.rows():
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    if show_stats:
        stats = result.stats
        print(
            f"\n{result.table.n_rows} rows in "
            f"{1000 * result.elapsed_seconds:.1f} ms | skipped "
            f"{stats.skip_fraction:.1%}, cached {stats.cache_fraction:.1%}, "
            f"scanned {stats.scan_fraction:.1%} | memory "
            f"{stats.memory_bytes / 1024:.0f} KB"
        )


def cmd_import(args: argparse.Namespace) -> int:
    table = _load_table(args.input)
    partition = tuple(args.partition.split(",")) if args.partition else None
    options = DataStoreOptions(
        partition_fields=partition,
        max_chunk_rows=args.chunk_rows,
        reorder_rows=bool(partition) and not args.no_reorder,
        codec=args.codec,
    )
    started = time.perf_counter()
    store = DataStore.from_table(table, options)
    size = save_store(store, args.output)
    print(
        f"imported {table.n_rows} rows x {table.n_columns} columns into "
        f"{store.n_chunks} chunks in {time.perf_counter() - started:.2f}s; "
        f"wrote {size / 1024:.0f} KB to {args.output}"
    )
    stats = store.import_stats
    if stats is not None:
        phases = ", ".join(
            f"{name} {1000 * seconds:.1f} ms"
            for name, seconds in stats.phase_seconds().items()
        )
        print(f"import phases: {phases}")
        print(
            f"import throughput: {stats.rows_per_second()['total']:,.0f} rows/s; "
            f"dictionaries {stats.dictionary_bytes / 1024:.0f} KB, "
            f"chunks {stats.chunk_bytes / 1024:.0f} KB"
        )
        if stats.field_codecs:
            print("advisor codec choices:")
            for name, record in sorted(stats.field_codecs.items()):
                print(
                    f"  {name:<16} {record['codec']:<16} "
                    f"predicted ratio {record['predicted_ratio']:.2f} "
                    f"({record['mode']} mode, "
                    f"{record['sample_bytes']} sample bytes)"
                )
    return 0


def _apply_runtime_flags(store: DataStore, args: argparse.Namespace) -> None:
    """Apply --executor/--workers/--cache-* flags to a loaded store."""
    overrides: dict = {}
    if getattr(args, "executor", None) is not None:
        overrides["executor"] = args.executor
    if getattr(args, "workers", None) is not None:
        if "executor" not in overrides:
            # --workers alone keeps the historical behaviour: >1 means
            # the thread strategy, 1 means serial.
            overrides["executor"] = "serial" if args.workers <= 1 else "parallel"
        overrides["workers"] = max(1, args.workers)
    if getattr(args, "max_workers", None) is not None:
        overrides["max_workers"] = args.max_workers
    if getattr(args, "cache_policy", None) is not None:
        overrides["cache_policy"] = args.cache_policy
    if getattr(args, "cache_capacity_kb", None) is not None:
        overrides["cache_capacity_bytes"] = args.cache_capacity_kb * 1024.0
    if overrides:
        store.configure_runtime(**overrides)


def _add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    from repro.core.executor import executor_names
    from repro.storage.cache import policy_names

    parser.add_argument(
        "--executor",
        choices=executor_names(),
        default=None,
        help=(
            "chunk-scan strategy: serial, thread/parallel (thread pool), "
            "or process (shared-memory arena + process pool)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="scan worker count (without --executor, >1 selects threads)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="cap on the auto-detected worker count (default: all cores)",
    )
    parser.add_argument(
        "--cache-policy",
        choices=policy_names(),
        default=None,
        help="chunk-result cache eviction policy",
    )
    parser.add_argument(
        "--cache-capacity-kb",
        type=float,
        default=None,
        help="chunk-result cache capacity in KB",
    )


def cmd_query(args: argparse.Namespace) -> int:
    store = load_store(args.store)
    _apply_runtime_flags(store, args)
    result = store.execute(args.sql)
    _print_result(result, show_stats=not args.quiet)
    return 0


def cmd_repl(args: argparse.Namespace) -> int:
    store = load_store(args.store)
    _apply_runtime_flags(store, args)
    print(
        f"loaded {store.n_rows} rows in {store.n_chunks} chunks; "
        f"fields: {sorted(n for n, f in store.fields.items() if not f.virtual)}"
    )
    print("enter SQL (empty line or 'quit' to exit)")
    while True:
        try:
            line = input("pd> ").strip()
        except EOFError:
            break
        if not line or line.lower() in ("quit", "exit"):
            break
        try:
            _print_result(store.execute(line), show_stats=True)
        except ReproError as error:
            print(f"error: {error}")
    return 0


def _print_store_info(store: DataStore) -> None:
    print(f"table: {store.options.table_name}")
    print(f"rows:  {store.n_rows} in {store.n_chunks} chunks")
    print(f"partition fields: {store.options.partition_fields}")
    print(
        f"{'field':<16} {'distinct':>9} {'dict KB':>8} "
        f"{'chunk-dicts KB':>14} {'elements KB':>12}"
    )
    for name, field in sorted(store.fields.items()):
        if field.virtual:
            continue
        print(
            f"{name:<16} {len(field.dictionary):>9} "
            f"{field.dictionary_size_bytes() / 1024:>8.1f} "
            f"{field.chunk_dicts_size_bytes() / 1024:>14.1f} "
            f"{field.elements_size_bytes() / 1024:>12.1f}"
        )
    print(f"total encoded: {store.total_size_bytes() / 1024:.0f} KB")


def cmd_info(args: argparse.Namespace) -> int:
    store = load_store(args.store)
    _print_store_info(store)
    return 0


def _fmt_ratio(value) -> str:
    return f"{value:.2f}" if isinstance(value, (int, float)) else "-"


def cmd_describe(args: argparse.Namespace) -> int:
    store = load_store(args.store)
    _print_store_info(store)
    print()
    encoded = [
        (name, field)
        for name, field in sorted(store.fields.items())
        if not field.virtual and field.codec is not None
    ]
    if not encoded:
        print("no per-column codec choices recorded")
        return 0
    print(
        f"{'field':<16} {'codec':<18} {'predicted':>9} {'actual':>8} "
        f"{'sample B':>9} {'mode':>6}"
    )
    for name, field in encoded:
        choice = field.codec_choice or {}
        print(
            f"{name:<16} {field.codec:<18} "
            f"{_fmt_ratio(choice.get('predicted_ratio')):>9} "
            f"{_fmt_ratio(choice.get('actual_ratio')):>8} "
            f"{choice.get('sample_bytes', 0):>9} "
            f"{choice.get('mode', '?'):>6}"
        )
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    table = generate_query_logs(LogsConfig(n_rows=args.rows))
    store = DataStore.from_table(
        table,
        DataStoreOptions(
            partition_fields=("country", "table_name"),
            max_chunk_rows=max(500, args.rows // 100),
            reorder_rows=True,
        ),
    )
    _apply_runtime_flags(store, args)
    for sql in paper_queries():
        print(f"\n-- {sql}")
        store.execute(sql)  # warm
        _print_result(store.execute(sql), show_stats=True)
    cache = store.chunk_cache_stats()
    print(
        f"\nchunk-result cache: {cache.hits} hits / {cache.misses} misses "
        f"({cache.hit_rate:.1%} hit rate), {cache.evictions} evictions"
    )
    return 0


def cmd_bench_scan(args: argparse.Namespace) -> int:
    import json

    from repro.workload.benchscan import (
        ScanBenchConfig,
        render_scan_report,
        run_scan_bench,
    )

    config = ScanBenchConfig(
        rows=args.rows,
        workers=tuple(int(w) for w in args.workers.split(",")),
        policies=tuple(args.policies.split(",")),
        executors=tuple(args.executors.split(",")),
        repeats=args.repeats,
        cache_trace_steps=args.trace_steps,
    )
    report = run_scan_bench(config)
    print("\n".join(render_scan_report(report)))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {args.output}")
    return 0


def cmd_bench_import(args: argparse.Namespace) -> int:
    import json

    from repro.workload.benchimport import (
        ImportBenchConfig,
        render_import_report,
        run_import_bench,
    )

    config = ImportBenchConfig(
        rows=args.rows,
        chunk_rows=args.chunk_rows,
        repeats=args.repeats,
    )
    report = run_import_bench(config)
    print("\n".join(render_import_report(report)))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {args.output}")
    return 0


def cmd_bench_compress(args: argparse.Namespace) -> int:
    import json

    from repro.workload.benchcompress import (
        CompressBenchConfig,
        render_compress_report,
        run_compress_bench,
    )

    config = CompressBenchConfig(
        rows=args.rows,
        repeats=args.repeats,
        huffman_bytes=args.huffman_bytes,
        store_rows=args.store_rows,
    )
    report = run_compress_bench(config)
    print("\n".join(render_compress_report(report)))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {args.output}")
    return 0


def cmd_bench_advisor(args: argparse.Namespace) -> int:
    import json

    from repro.workload.benchadvisor import (
        AdvisorBenchConfig,
        render_advisor_report,
        run_advisor_bench,
    )

    config = AdvisorBenchConfig(rows=args.rows, repeats=args.repeats)
    report = run_advisor_bench(config)
    print("\n".join(render_advisor_report(report)))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {args.output}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant serving demo: replay drill-down sessions."""
    from repro.service import QueryService, ServiceConfig
    from repro.workload.benchserve import (
        ServeBenchConfig,
        build_serve_trace,
        run_closed_loop,
        summarize_outcomes,
        _bench_store,
        _bench_table,
    )

    config = ServeBenchConfig(
        rows=args.rows,
        n_sessions=args.sessions,
        clicks_per_session=args.clicks,
        queries_per_click=args.queries_per_click,
        n_tenants=args.tenants,
        executor=args.executor,
        service_workers=args.workers,
        queue_depth=args.queue_depth,
    )
    table = _bench_table(config)
    store = _bench_store(table, config)
    trace = build_serve_trace(table, config.drill(), config.mix())
    service = QueryService(
        store,
        ServiceConfig(
            workers=config.service_workers,
            queue_depth=config.queue_depth,
            max_inflight_per_tenant=config.max_inflight_per_tenant,
        ),
    )
    print(
        f"serving {len(trace)} drill-down queries from "
        f"{config.n_sessions} sessions over {config.n_tenants} tenants "
        f"({args.concurrency} concurrent clients, "
        f"{config.service_workers} dispatch workers)"
    )
    try:
        for pass_index in range(max(1, args.passes)):
            outcomes, wall = run_closed_loop(service, trace, args.concurrency)
            summary = summarize_outcomes(outcomes, wall)
            label = "cold" if pass_index == 0 else f"pass {pass_index + 1}"
            print(
                f"{label:>7}: {summary['qps']:8.1f} q/s, "
                f"p50 {1000 * summary['p50_seconds']:7.2f} ms, "
                f"p95 {1000 * summary['p95_seconds']:7.2f} ms, "
                f"p99 {1000 * summary['p99_seconds']:7.2f} ms | "
                f"hits {summary['cache_hit_fraction']:4.0%}, "
                f"subsumed {summary['subsumption_fraction']:4.0%}, "
                f"rejected {summary['rejected']:.0f}"
            )
        snapshot = service.stats()
    finally:
        service.close()
        store.executor.close()
    cache = snapshot.get("cache", {})
    if cache:
        print(
            f"semantic cache: {cache['entries']:.0f} entries, "
            f"{cache['used_bytes'] / (1 << 10):.0f} KiB resident, "
            f"{cache['evictions']:.0f} evictions, "
            f"{cache['footprints']:.0f} footprints"
        )
    counts = snapshot["counts"]
    print(
        f"outcomes: {counts['completed']} completed, "
        f"{counts['rejected']} rejected, {counts['failed']} failed, "
        f"{counts['degraded']} degraded"
    )
    return 0


def cmd_bench_serve(args: argparse.Namespace) -> int:
    import json

    from repro.workload.benchserve import (
        ServeBenchConfig,
        render_serve_report,
        run_serve_bench,
    )

    config = ServeBenchConfig(
        rows=args.rows,
        concurrencies=tuple(int(c) for c in args.concurrencies.split(",")),
        n_sessions=args.sessions,
        clicks_per_session=args.clicks,
        queries_per_click=args.queries_per_click,
        n_tenants=args.tenants,
        executor=args.executor,
        service_workers=args.workers,
    )
    report = run_serve_bench(config)
    print("\n".join(render_serve_report(report)))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {args.output}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.workload.chaosbench import (
        ChaosBenchConfig,
        ProcessChaosBenchConfig,
        render_chaos_report,
        render_process_chaos_report,
        run_chaos_bench,
        run_process_chaos_bench,
    )

    if args.local:
        local_config = ProcessChaosBenchConfig(
            rows=args.rows,
            workers=args.local_workers,
            queries_per_scenario=args.queries,
            deadline_seconds=args.sub_query_deadline_ms / 1000.0,
            max_retries=args.max_retries,
            fault_seed=args.fault_seed,
        )
        report = run_process_chaos_bench(local_config)
        print("\n".join(render_process_chaos_report(report)))
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2)
                handle.write("\n")
            print(f"\nwrote {args.output}")
        return 0

    config = ChaosBenchConfig(
        rows=args.rows,
        n_shards=args.shards,
        n_machines=args.machines,
        queries_per_rate=args.queries,
        crash_rates=tuple(float(r) for r in args.crash_rate.split(",")),
        timeout_rate=args.timeout_rate,
        corruption_rate=args.corruption_rate,
        deadline_seconds=args.sub_query_deadline_ms / 1000.0,
        max_retries=args.max_retries,
        fault_seed=args.fault_seed,
    )
    report = run_chaos_bench(config)
    print("\n".join(render_chaos_report(report)))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PowerDrill-reproduction column store CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_import = sub.add_parser("import", help="import a data file into a store")
    p_import.add_argument("input", help=".csv or .cio input file")
    p_import.add_argument("output", help="output store file (.pds)")
    p_import.add_argument(
        "--partition", default=None, help="comma-separated partition fields"
    )
    p_import.add_argument("--chunk-rows", type=int, default=50_000)
    p_import.add_argument(
        "--no-reorder", action="store_true", help="skip the lexicographic reorder"
    )
    p_import.add_argument(
        "--codec",
        default=None,
        help="compress each field's serialized section with this registry "
        "codec, or 'auto' to let the encoding advisor pick one per "
        "column (default: uncompressed sections)",
    )
    p_import.set_defaults(func=cmd_import)

    p_query = sub.add_parser("query", help="run one SQL query against a store")
    p_query.add_argument("store", help="store file (.pds)")
    p_query.add_argument("sql", help="the SELECT statement")
    p_query.add_argument("--quiet", action="store_true", help="rows only")
    _add_runtime_flags(p_query)
    p_query.set_defaults(func=cmd_query)

    p_repl = sub.add_parser("repl", help="interactive SQL prompt")
    p_repl.add_argument("store", help="store file (.pds)")
    _add_runtime_flags(p_repl)
    p_repl.set_defaults(func=cmd_repl)

    p_info = sub.add_parser("info", help="describe a store file")
    p_info.add_argument("store", help="store file (.pds)")
    p_info.set_defaults(func=cmd_info)

    p_describe = sub.add_parser(
        "describe",
        help="info plus the encoding advisor's per-field codec choices",
    )
    p_describe.add_argument("store", help="store file (.pds)")
    p_describe.set_defaults(func=cmd_describe)

    p_demo = sub.add_parser("demo", help="run the paper's queries on demo data")
    p_demo.add_argument("--rows", type=int, default=50_000)
    _add_runtime_flags(p_demo)
    p_demo.set_defaults(func=cmd_demo)

    p_serve = sub.add_parser(
        "serve",
        help="multi-tenant serving demo: replay drill-down sessions "
        "through the query service (admission, fair scheduling, "
        "semantic result cache)",
    )
    p_serve.add_argument("--rows", type=int, default=60_000)
    p_serve.add_argument("--sessions", type=int, default=12)
    p_serve.add_argument("--clicks", type=int, default=3)
    p_serve.add_argument("--queries-per-click", type=int, default=6)
    p_serve.add_argument("--tenants", type=int, default=6)
    p_serve.add_argument(
        "--concurrency", type=int, default=4, help="closed-loop client threads"
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, help="service dispatch workers"
    )
    p_serve.add_argument(
        "--queue-depth", type=int, default=64, help="per-tenant queue bound"
    )
    p_serve.add_argument(
        "--executor",
        default="thread",
        choices=["serial", "thread", "process"],
        help="engine execution strategy under the service",
    )
    p_serve.add_argument(
        "--passes",
        type=int,
        default=2,
        help="trace replays (pass 2+ exercises the warm cache)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_bench = sub.add_parser("bench", help="run a built-in benchmark")
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_scan = bench_sub.add_parser(
        "scan", help="worker-count and cache-policy sweep over the scan path"
    )
    p_scan.add_argument("--rows", type=int, default=60_000)
    p_scan.add_argument(
        "--workers", default="1,2,4", help="comma-separated worker counts"
    )
    p_scan.add_argument(
        "--policies", default="lru,2q,arc", help="comma-separated cache policies"
    )
    p_scan.add_argument(
        "--executors",
        default="serial,thread,process",
        help="comma-separated execution strategies to sweep",
    )
    p_scan.add_argument("--repeats", type=int, default=3)
    p_scan.add_argument("--trace-steps", type=int, default=120)
    p_scan.add_argument(
        "--output", default=None, help="write the JSON report here"
    )
    p_scan.set_defaults(func=cmd_bench_scan)

    p_import_bench = bench_sub.add_parser(
        "import",
        help="scalar-vs-vectorized import pipeline with per-phase stats",
    )
    p_import_bench.add_argument("--rows", type=int, default=60_000)
    p_import_bench.add_argument(
        "--chunk-rows", type=int, default=None, help="max rows per chunk"
    )
    p_import_bench.add_argument("--repeats", type=int, default=2)
    p_import_bench.add_argument(
        "--output", default=None, help="write the JSON report here"
    )
    p_import_bench.set_defaults(func=cmd_bench_import)

    p_compress_bench = bench_sub.add_parser(
        "compress",
        help="scalar-oracle vs numpy-kernel codec throughput and ratios",
    )
    p_compress_bench.add_argument("--rows", type=int, default=60_000)
    p_compress_bench.add_argument("--repeats", type=int, default=2)
    p_compress_bench.add_argument(
        "--huffman-bytes",
        type=int,
        default=1 << 16,
        help="Huffman corpus cap (the scalar oracle encoder is quadratic)",
    )
    p_compress_bench.add_argument(
        "--store-rows",
        type=int,
        default=12_000,
        help="rows in the store whose serialization feeds the LZ codecs",
    )
    p_compress_bench.add_argument(
        "--output", default=None, help="write the JSON report here"
    )
    p_compress_bench.set_defaults(func=cmd_bench_compress)

    p_advisor_bench = bench_sub.add_parser(
        "advisor",
        help="static-codec baseline vs advisor-chosen per-field codecs "
        "(size x decode-throughput)",
    )
    p_advisor_bench.add_argument("--rows", type=int, default=60_000)
    p_advisor_bench.add_argument("--repeats", type=int, default=3)
    p_advisor_bench.add_argument(
        "--output", default=None, help="write the JSON report here"
    )
    p_advisor_bench.set_defaults(func=cmd_bench_advisor)

    p_serve_bench = bench_sub.add_parser(
        "serve",
        help="QPS and tail-latency sweep over the multi-tenant query "
        "service (cold/warm cache, open-loop shedding point)",
    )
    p_serve_bench.add_argument("--rows", type=int, default=60_000)
    p_serve_bench.add_argument(
        "--concurrencies",
        default="1,2,4",
        help="comma-separated closed-loop client counts",
    )
    p_serve_bench.add_argument("--sessions", type=int, default=12)
    p_serve_bench.add_argument("--clicks", type=int, default=3)
    p_serve_bench.add_argument("--queries-per-click", type=int, default=6)
    p_serve_bench.add_argument("--tenants", type=int, default=6)
    p_serve_bench.add_argument(
        "--executor",
        default="thread",
        choices=["serial", "thread", "process"],
        help="engine execution strategy under the service",
    )
    p_serve_bench.add_argument(
        "--workers", type=int, default=2, help="service dispatch workers"
    )
    p_serve_bench.add_argument(
        "--output", default=None, help="write the JSON report here"
    )
    p_serve_bench.set_defaults(func=cmd_bench_serve)

    p_chaos = sub.add_parser(
        "chaos",
        help="sweep injected fault rates over the simulated cluster",
    )
    p_chaos.add_argument("--rows", type=int, default=24_000)
    p_chaos.add_argument("--shards", type=int, default=6)
    p_chaos.add_argument("--machines", type=int, default=8)
    p_chaos.add_argument(
        "--queries", type=int, default=12, help="queries per crash rate"
    )
    p_chaos.add_argument(
        "--fault-seed", type=int, default=0, help="fault-plan RNG seed"
    )
    p_chaos.add_argument(
        "--crash-rate",
        default="0,0.05,0.2,0.5",
        help="comma-separated per-machine crash probabilities to sweep",
    )
    p_chaos.add_argument("--timeout-rate", type=float, default=0.02)
    p_chaos.add_argument("--corruption-rate", type=float, default=0.02)
    p_chaos.add_argument(
        "--sub-query-deadline-ms",
        type=float,
        default=500.0,
        help="per-attempt deadline in milliseconds",
    )
    p_chaos.add_argument("--max-retries", type=int, default=2)
    p_chaos.add_argument(
        "--local",
        action="store_true",
        help="run the local process-chaos bench instead: REAL worker "
        "faults (SIGKILL, os._exit, hangs) against the process "
        "executor on this machine (--rows, --queries, "
        "--sub-query-deadline-ms, --max-retries and --fault-seed "
        "apply; the cluster flags are ignored)",
    )
    p_chaos.add_argument(
        "--local-workers",
        type=int,
        default=2,
        help="process-pool workers for --local",
    )
    p_chaos.add_argument(
        "--output", default=None, help="write the JSON report here"
    )
    p_chaos.set_defaults(func=cmd_chaos)

    from repro.analysis.cli import configure_fsck_parser, configure_lint_parser

    p_lint = sub.add_parser(
        "lint", help="run the reprolint static analyzer over source paths"
    )
    configure_lint_parser(p_lint)

    p_fsck = sub.add_parser(
        "fsck", help="verify the structural invariants of a store file"
    )
    configure_fsck_parser(p_fsck)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; exit
        # quietly instead of tracebacking (dup /dev/null over stdout so
        # interpreter shutdown doesn't re-raise on flush).
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 1


if __name__ == "__main__":
    sys.exit(main())
