"""Production-style query monitoring — the Section 6 report generator.

The paper reports three months of production measurements: average
cells per click, the skipped/cached/scanned split, in-memory query
share, and latency distributions. :class:`QueryLogCollector` gathers
the same quantities from any stream of executed queries so examples,
benches and deployments can print a "Section 6" report of their own.

The module also hosts the process-wide :data:`counters` registry —
named monotonically increasing counters that subsystems (the
``repro.analysis`` lint/fsck tooling, caches, the distributed fault
layer's ``distributed.faults.*`` retry/failover/timeout/quarantine/
degradation counters, ...) bump as they work, so operational tooling
has one place to read activity from.
"""

from __future__ import annotations

import math
import random
import threading
from collections import deque
from dataclasses import dataclass, field

from repro.core.result import QueryResult, ScanStats
from repro.errors import ReproError


class CounterRegistry:
    """Named monotonic counters, keyed by dotted names.

    A deliberately tiny stand-in for a production metrics client:
    ``increment`` never fails on unknown names, ``snapshot`` returns a
    stable copy for reporting, and ``reset`` exists for tests.

    Thread-safe: ``increment`` is a read-modify-write, and the serving
    layer bumps counters from many dispatch threads at once — without
    the lock, concurrent increments interleave and silently drop
    counts. ``snapshot``/``reset`` take the same lock so a snapshot is
    a consistent point-in-time view, never a half-applied update.
    """

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()

    def increment(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to ``name`` (creating it at 0), return the total."""
        with self._lock:
            total = self._counts.get(name, 0) + amount
            self._counts[name] = total
            return total

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        """A sorted, consistent copy of every counter's current value."""
        with self._lock:
            return dict(sorted(self._counts.items()))

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()


#: The process-wide counter registry.
counters = CounterRegistry()


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, max(0, math.ceil(fraction * len(sorted_values)) - 1)
    )
    return sorted_values[index]


@dataclass
class QueryLogCollector:
    """Accumulates per-query statistics into production-style totals.

    Latency memory is bounded for long-running services: all-time
    percentiles come from a seeded reservoir sample (Vitter's
    Algorithm R — exact until ``reservoir_capacity`` queries, an
    unbiased uniform sample after), and rolling percentiles come from a
    fixed-size window over the most recent ``window_capacity`` queries.
    """

    n_queries: int = 0
    rows_total: int = 0
    rows_skipped: int = 0
    rows_cached: int = 0
    rows_scanned: int = 0
    cells_touched: int = 0
    disk_bytes: int = 0
    in_memory_queries: int = 0
    reservoir_capacity: int = 4096
    window_capacity: int = 512
    _latencies: list[float] = field(default_factory=list)
    _window: deque = field(default_factory=deque)
    _rng: random.Random = field(default_factory=lambda: random.Random(0x5EED))

    def __post_init__(self) -> None:
        if self.reservoir_capacity < 1:
            raise ReproError("reservoir_capacity must be >= 1")
        if self.window_capacity < 1:
            raise ReproError("window_capacity must be >= 1")
        self._window = deque(self._window, maxlen=self.window_capacity)

    def record(
        self,
        result: QueryResult,
        disk_bytes: int = 0,
        latency_seconds: float | None = None,
    ) -> None:
        """Record one executed query (optionally with simulated I/O)."""
        stats: ScanStats = result.stats
        self.n_queries += 1
        self.rows_total += stats.rows_total
        self.rows_skipped += stats.rows_skipped
        self.rows_cached += stats.rows_cached
        self.rows_scanned += stats.rows_scanned
        self.cells_touched += stats.cells_scanned
        self.disk_bytes += disk_bytes
        if disk_bytes == 0:
            self.in_memory_queries += 1
        latency = (
            result.elapsed_seconds if latency_seconds is None else latency_seconds
        )
        self._window.append(latency)
        if len(self._latencies) < self.reservoir_capacity:
            self._latencies.append(latency)
        else:
            # Algorithm R: the i-th value replaces a reservoir slot
            # with probability capacity/i, keeping the sample uniform.
            slot = self._rng.randrange(self.n_queries)
            if slot < self.reservoir_capacity:
                self._latencies[slot] = latency

    # -- derived quantities ---------------------------------------------------
    @property
    def skip_fraction(self) -> float:
        return self.rows_skipped / self.rows_total if self.rows_total else 0.0

    @property
    def cache_fraction(self) -> float:
        return self.rows_cached / self.rows_total if self.rows_total else 0.0

    @property
    def scan_fraction(self) -> float:
        return self.rows_scanned / self.rows_total if self.rows_total else 0.0

    @property
    def in_memory_share(self) -> float:
        return self.in_memory_queries / self.n_queries if self.n_queries else 0.0

    def latency_percentiles(self) -> dict[str, float]:
        """All-time percentiles (exact below ``reservoir_capacity``)."""
        ordered = sorted(self._latencies)
        return {
            "p50": percentile(ordered, 0.50),
            "p90": percentile(ordered, 0.90),
            "p99": percentile(ordered, 0.99),
            "mean": sum(ordered) / len(ordered) if ordered else 0.0,
        }

    def windowed_percentiles(self) -> dict[str, float]:
        """Rolling percentiles over the most recent queries.

        Covers exactly the last ``min(n_queries, window_capacity)``
        recorded latencies — the number is reported as ``window`` so
        dashboards can tell a cold window from a full one.
        """
        ordered = sorted(self._window)
        return {
            "window": float(len(ordered)),
            "p50": percentile(ordered, 0.50),
            "p95": percentile(ordered, 0.95),
            "p99": percentile(ordered, 0.99),
        }

    def report(self) -> str:
        """A Section 6-style text report."""
        lat = self.latency_percentiles()
        lines = [
            f"queries: {self.n_queries}",
            f"hypothetical full-scan rows: {self.rows_total:,}",
            (
                f"skipped {self.skip_fraction:.2%} | cached "
                f"{self.cache_fraction:.2%} | scanned {self.scan_fraction:.2%}"
            ),
            (
                f"in-memory queries: {self.in_memory_share:.1%} "
                f"({self.disk_bytes / (1 << 20):.1f} MB loaded from disk)"
            ),
            (
                f"latency ms: mean {1000 * lat['mean']:.1f}, "
                f"p50 {1000 * lat['p50']:.1f}, p90 {1000 * lat['p90']:.1f}, "
                f"p99 {1000 * lat['p99']:.1f}"
            ),
        ]
        return "\n".join(lines)
