"""Production-style query monitoring — the Section 6 report generator.

The paper reports three months of production measurements: average
cells per click, the skipped/cached/scanned split, in-memory query
share, and latency distributions. :class:`QueryLogCollector` gathers
the same quantities from any stream of executed queries so examples,
benches and deployments can print a "Section 6" report of their own.

The module also hosts the process-wide :data:`counters` registry —
named monotonically increasing counters that subsystems (the
``repro.analysis`` lint/fsck tooling, caches, the distributed fault
layer's ``distributed.faults.*`` retry/failover/timeout/quarantine/
degradation counters, ...) bump as they work, so operational tooling
has one place to read activity from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.result import QueryResult, ScanStats


class CounterRegistry:
    """Named monotonic counters, keyed by dotted names.

    A deliberately tiny stand-in for a production metrics client:
    ``increment`` never fails on unknown names, ``snapshot`` returns a
    stable copy for reporting, and ``reset`` exists for tests.
    """

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def increment(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to ``name`` (creating it at 0), return the total."""
        total = self._counts.get(name, 0) + amount
        self._counts[name] = total
        return total

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        """A sorted copy of every counter's current value."""
        return dict(sorted(self._counts.items()))

    def reset(self) -> None:
        self._counts.clear()


#: The process-wide counter registry.
counters = CounterRegistry()


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, max(0, math.ceil(fraction * len(sorted_values)) - 1)
    )
    return sorted_values[index]


@dataclass
class QueryLogCollector:
    """Accumulates per-query statistics into production-style totals."""

    n_queries: int = 0
    rows_total: int = 0
    rows_skipped: int = 0
    rows_cached: int = 0
    rows_scanned: int = 0
    cells_touched: int = 0
    disk_bytes: int = 0
    in_memory_queries: int = 0
    _latencies: list[float] = field(default_factory=list)

    def record(
        self,
        result: QueryResult,
        disk_bytes: int = 0,
        latency_seconds: float | None = None,
    ) -> None:
        """Record one executed query (optionally with simulated I/O)."""
        stats: ScanStats = result.stats
        self.n_queries += 1
        self.rows_total += stats.rows_total
        self.rows_skipped += stats.rows_skipped
        self.rows_cached += stats.rows_cached
        self.rows_scanned += stats.rows_scanned
        self.cells_touched += stats.cells_scanned
        self.disk_bytes += disk_bytes
        if disk_bytes == 0:
            self.in_memory_queries += 1
        self._latencies.append(
            result.elapsed_seconds if latency_seconds is None else latency_seconds
        )

    # -- derived quantities ---------------------------------------------------
    @property
    def skip_fraction(self) -> float:
        return self.rows_skipped / self.rows_total if self.rows_total else 0.0

    @property
    def cache_fraction(self) -> float:
        return self.rows_cached / self.rows_total if self.rows_total else 0.0

    @property
    def scan_fraction(self) -> float:
        return self.rows_scanned / self.rows_total if self.rows_total else 0.0

    @property
    def in_memory_share(self) -> float:
        return self.in_memory_queries / self.n_queries if self.n_queries else 0.0

    def latency_percentiles(self) -> dict[str, float]:
        ordered = sorted(self._latencies)
        return {
            "p50": percentile(ordered, 0.50),
            "p90": percentile(ordered, 0.90),
            "p99": percentile(ordered, 0.99),
            "mean": sum(ordered) / len(ordered) if ordered else 0.0,
        }

    def report(self) -> str:
        """A Section 6-style text report."""
        lat = self.latency_percentiles()
        lines = [
            f"queries: {self.n_queries}",
            f"hypothetical full-scan rows: {self.rows_total:,}",
            (
                f"skipped {self.skip_fraction:.2%} | cached "
                f"{self.cache_fraction:.2%} | scanned {self.scan_fraction:.2%}"
            ),
            (
                f"in-memory queries: {self.in_memory_share:.1%} "
                f"({self.disk_bytes / (1 << 20):.1f} MB loaded from disk)"
            ),
            (
                f"latency ms: mean {1000 * lat['mean']:.1f}, "
                f"p50 {1000 * lat['p50']:.1f}, p90 {1000 * lat['p90']:.1f}, "
                f"p99 {1000 * lat['p99']:.1f}"
            ),
        ]
        return "\n".join(lines)
