"""repro — a reproduction of "Processing a Trillion Cells per Mouse Click".

This package implements the PowerDrill column-store (Hall et al.,
VLDB 2012) in pure Python: the double dictionary encoding, composite
range partitioning with chunk skipping, the Section 3 storage
optimizations (element encodings, nibble-trie dictionaries, generic
compression, row reordering), approximate count-distinct, and a
simulated distributed execution layer — plus the row/column baseline
backends the paper compares against.

Quickstart::

    from repro import DataStore, DataStoreOptions, generate_query_logs

    table = generate_query_logs()
    store = DataStore.from_table(
        table,
        DataStoreOptions(
            partition_fields=("country", "table_name"),
            reorder_rows=True,
        ),
    )
    result = store.execute(
        "SELECT country, COUNT(*) as c FROM data "
        "GROUP BY country ORDER BY c DESC LIMIT 10"
    )
    print(result.rows())
    print(f"skipped {result.stats.skip_fraction:.0%} of rows")
"""

from repro.core.datastore import DataStore, DataStoreOptions, FieldStore
from repro.core.result import QueryResult, ScanStats
from repro.core.table import Column, DataType, Schema, Table
from repro.distributed.cluster import (
    ClusterConfig,
    MachineConfig,
    QueryMetrics,
    SimulatedCluster,
)
from repro.errors import ReproError
from repro.monitoring import QueryLogCollector
from repro.sql.parser import parse_query
from repro.storage.serde import load_store, save_store
from repro.workload.generator import LogsConfig, generate_query_logs
from repro.workload.queries import (
    QUERY_1,
    QUERY_2,
    QUERY_3,
    DrillDownConfig,
    generate_drilldown_sessions,
    paper_queries,
)

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "Column",
    "DataStore",
    "DataStoreOptions",
    "DataType",
    "DrillDownConfig",
    "FieldStore",
    "LogsConfig",
    "MachineConfig",
    "QUERY_1",
    "QUERY_2",
    "QUERY_3",
    "QueryLogCollector",
    "QueryMetrics",
    "QueryResult",
    "ReproError",
    "ScanStats",
    "Schema",
    "SimulatedCluster",
    "Table",
    "__version__",
    "generate_drilldown_sessions",
    "generate_query_logs",
    "load_store",
    "paper_queries",
    "parse_query",
    "save_store",
]
