"""Byte-stream transform stages for the cascade pipelines (PR 9).

These are not general-purpose compressors on their own — they are the
reorderings and repackings Rozenberg's composite-compression model
("Faster across the PCIe bus", PAPERS.md) composes *around* an entropy
stage. Each one is a total bytes -> bytes bijection with an explicit
self-delimiting frame, so any chain of stages round-trips byte-exactly
and the registry can treat a cascade like an atomic codec:

- ``delta``  — byte-wise difference mod 256. Length-preserving, no
  frame needed: sorted or slowly-varying payloads (packed element
  arrays, dictionary deltas) collapse to near-zero bytes that RLE,
  word-varint or an LZ stage then shrink.
- ``varint`` — word-pack: the payload is viewed as little-endian
  uint32 words (zero-padded) and each word is varint-encoded. Frame:
  ``varint(raw_len)`` so the pad is dropped exactly on decode. Packed
  arrays whose high bytes are zero (small ids, delta'd values) lose
  most of their width.
- ``dict``   — dense byte remap: distinct byte values are replaced by
  their rank. Frame: ``varint(raw_len) varint(n_distinct) table
  ranks``. Canonicalizes few-symbol payloads into the dense low range
  before an RLE or word-pack stage.

All kernels are numpy bulk passes (REP010: no per-byte Python walks in
``repro/compress/*``). Malformed frames raise
:class:`~repro.errors.CompressionError`, like every other codec.
"""

from __future__ import annotations

import numpy as np

from repro.compress.varint import (
    decode_varint,
    decode_varint_stream,
    encode_varint,
    encode_varint_array,
)
from repro.errors import CompressionError

_WORD_BYTES = 4
_MAX_WORD = 0xFFFFFFFF


# -- delta (byte-wise difference mod 256) -----------------------------------


def delta_encode_bytes(data: bytes) -> bytes:
    """Byte-wise delta mod 256 (length-preserving; first byte kept)."""
    if not data:
        return b""
    arr = np.frombuffer(data, dtype=np.uint8)
    shifted = np.concatenate(
        (np.zeros(1, dtype=np.uint8), arr[:-1])
    )
    # uint8 subtraction wraps mod 256, which is exactly the inverse of
    # the cumulative sum below.
    return np.subtract(arr, shifted).tobytes()


def delta_decode_bytes(data: bytes) -> bytes:
    """Inverse of :func:`delta_encode_bytes` (cumulative sum mod 256)."""
    if not data:
        return b""
    arr = np.frombuffer(data, dtype=np.uint8)
    return np.add.accumulate(arr, dtype=np.uint8).tobytes()


# -- varint (little-endian uint32 word-pack) --------------------------------


def wordpack_encode_bytes(data: bytes) -> bytes:
    """Varint-encode the payload as zero-padded little-endian u32 words."""
    head = encode_varint(len(data))
    if not data:
        return head
    pad = (-len(data)) % _WORD_BYTES
    words = np.frombuffer(data + b"\x00" * pad, dtype="<u4")
    return head + encode_varint_array(words.astype(np.int64))


def wordpack_decode_bytes(data: bytes) -> bytes:
    """Inverse of :func:`wordpack_encode_bytes`."""
    total, pos = decode_varint(data, 0)
    if not total:
        if pos != len(data):
            raise CompressionError(
                f"word-pack: {len(data) - pos} trailing byte(s) after an "
                "empty payload"
            )
        return b""
    n_words = (total + _WORD_BYTES - 1) // _WORD_BYTES
    words, consumed = decode_varint_stream(
        memoryview(data)[pos:], n_words, 0
    )
    if pos + consumed != len(data):
        raise CompressionError(
            f"word-pack: frame says {n_words} words but "
            f"{len(data) - pos - consumed} byte(s) trail the stream"
        )
    if int(words.max()) > _MAX_WORD:
        raise CompressionError("word-pack: word beyond uint32 range")
    raw = words.astype("<u4").tobytes()
    if any(raw[total:].strip(b"\x00")):
        raise CompressionError("word-pack: nonzero pad bytes")
    return raw[:total]


# -- dict (dense byte remap) ------------------------------------------------


def bytedict_encode_bytes(data: bytes) -> bytes:
    """Replace each byte with its rank among the distinct bytes present."""
    head = encode_varint(len(data))
    if not data:
        return head
    arr = np.frombuffer(data, dtype=np.uint8)
    table = np.unique(arr)  # sorted distinct byte values
    ranks = np.searchsorted(table, arr).astype(np.uint8)
    return (
        head
        + encode_varint(int(table.size))
        + table.tobytes()
        + ranks.tobytes()
    )


def bytedict_decode_bytes(data: bytes) -> bytes:
    """Inverse of :func:`bytedict_encode_bytes` (table gather)."""
    total, pos = decode_varint(data, 0)
    if not total:
        if pos != len(data):
            raise CompressionError(
                f"byte-dict: {len(data) - pos} trailing byte(s) after an "
                "empty payload"
            )
        return b""
    n_distinct, pos = decode_varint(data, pos)
    if not 1 <= n_distinct <= 256:
        raise CompressionError(
            f"byte-dict: table size {n_distinct} outside [1, 256]"
        )
    if pos + n_distinct > len(data):
        raise CompressionError("byte-dict: table truncated")
    table = np.frombuffer(data, dtype=np.uint8, count=n_distinct, offset=pos)
    pos += n_distinct
    ranks = np.frombuffer(data, dtype=np.uint8, offset=pos)
    if ranks.size != total:
        raise CompressionError(
            f"byte-dict: frame says {total} bytes, payload holds "
            f"{ranks.size}"
        )
    if int(ranks.max()) >= n_distinct:
        raise CompressionError(
            f"byte-dict: rank {int(ranks.max())} outside the "
            f"{n_distinct}-entry table"
        )
    return table[ranks].tobytes()
