"""Canonical Huffman coding over bytes.

Section 5 of the paper tests ZLIB "with additional Huffman coding",
observing 20-30% better ratios at up to an order of magnitude more CPU.
This module provides the Huffman stage: a canonical code built from byte
frequencies, serialized as the 256 code lengths, followed by the packed
bitstream. Stack it on an LZ codec (see ``zippy+huffman`` in
:mod:`repro.compress.registry`) to reproduce the ZLIB-like variant.
"""

from __future__ import annotations

import heapq

from repro.compress.varint import decode_varint, encode_varint
from repro.errors import CompressionError

_MAX_CODE_LEN = 32


def _code_lengths(freqs: list[int]) -> list[int]:
    """Huffman code length per symbol (0 for absent symbols)."""
    heap: list[tuple[int, int, tuple]] = []
    tick = 0
    for symbol, freq in enumerate(freqs):
        if freq:
            heap.append((freq, tick, (symbol,)))
            tick += 1
    if not heap:
        return [0] * 256
    if len(heap) == 1:
        lengths = [0] * 256
        lengths[heap[0][2][0]] = 1
        return lengths
    heapq.heapify(heap)
    lengths = [0] * 256
    while len(heap) > 1:
        fa, __, syms_a = heapq.heappop(heap)
        fb, __, syms_b = heapq.heappop(heap)
        merged = syms_a + syms_b
        for symbol in merged:
            lengths[symbol] += 1
        heapq.heappush(heap, (fa + fb, tick, merged))
        tick += 1
    return lengths


def _canonical_codes(lengths: list[int]) -> dict[int, tuple[int, int]]:
    """Map symbol -> (code, length) in canonical order."""
    symbols = sorted(
        (s for s in range(256) if lengths[s]), key=lambda s: (lengths[s], s)
    )
    codes: dict[int, tuple[int, int]] = {}
    code = 0
    prev_len = 0
    for symbol in symbols:
        length = lengths[symbol]
        code <<= length - prev_len
        codes[symbol] = (code, length)
        code += 1
        prev_len = length
    return codes


def huffman_compress(data: bytes) -> bytes:
    """Compress ``data`` with a canonical Huffman code.

    Output layout: varint(len(data)) || 256 length bytes || bitstream.
    """
    out = bytearray(encode_varint(len(data)))
    if not data:
        return bytes(out)
    freqs = [0] * 256
    for byte in data:
        freqs[byte] += 1
    lengths = _code_lengths(freqs)
    if max(lengths) > _MAX_CODE_LEN:
        raise CompressionError("Huffman code length exceeds 32 bits")
    out += bytes(lengths)
    codes = _canonical_codes(lengths)
    acc = 0
    bits = 0
    for byte in data:
        code, length = codes[byte]
        acc = (acc << length) | code
        bits += length
        while bits >= 8:
            bits -= 8
            out.append((acc >> bits) & 0xFF)
    if bits:
        out.append((acc << (8 - bits)) & 0xFF)
    return bytes(out)


def huffman_decompress(data: bytes) -> bytes:
    """Decompress a buffer produced by :func:`huffman_compress`."""
    expected, pos = decode_varint(data, 0)
    if expected == 0:
        return b""
    if pos + 256 > len(data):
        raise CompressionError("truncated Huffman length table")
    lengths = list(data[pos : pos + 256])
    pos += 256
    codes = _canonical_codes(lengths)
    if not codes:
        raise CompressionError("empty Huffman code for non-empty payload")
    # Invert: (length, code) -> symbol.
    decode_map = {(ln, code): sym for sym, (code, ln) in codes.items()}
    out = bytearray()
    acc = 0
    bits = 0
    for byte in data[pos:]:
        acc = (acc << 8) | byte
        bits += 8
        while True:
            matched = False
            # Try the shortest prefix first; code lengths are <= 32.
            for ln in range(1, min(bits, _MAX_CODE_LEN) + 1):
                prefix = acc >> (bits - ln)
                symbol = decode_map.get((ln, prefix))
                if symbol is not None:
                    out.append(symbol)
                    bits -= ln
                    acc &= (1 << bits) - 1
                    matched = True
                    break
            if not matched or len(out) == expected:
                break
        if len(out) == expected:
            break
    if len(out) != expected:
        raise CompressionError(
            f"decoded {len(out)} symbols, expected {expected}"
        )
    return bytes(out)
