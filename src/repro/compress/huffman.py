"""Canonical Huffman coding over bytes.

Section 5 of the paper tests ZLIB "with additional Huffman coding",
observing 20-30% better ratios at up to an order of magnitude more CPU.
This module provides the Huffman stage: a canonical code built from byte
frequencies, serialized as the 256 code lengths, followed by the packed
bitstream. Stack it on an LZ codec (see ``zippy+huffman`` in
:mod:`repro.compress.registry`) to reproduce the ZLIB-like variant.

PR 5 vectorized both directions, byte-identical to the scalar codec
frozen in :mod:`repro.compress.reference`. Encoding gathers every
symbol's code and length with one fancy index, lays the bits out with a
chunked 2-D scatter, and packs them with ``np.packbits`` (whose
right-padding of the final byte matches the scalar accumulator).
Decoding is the interesting direction: symbol boundaries in a Huffman
bitstream are sequential, so the kernel materializes a 32-bit window at
*every* bit position, resolves each position's would-be symbol through
the canonical per-length code ranges, and then selects the true symbol
starts with :func:`repro.compress.bulk.mark_chain` in O(log n)
pointer-doubling rounds. Only the code-length tree construction keeps
its scalar heap loop — it runs once per 256-entry frequency table, not
per byte.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.compress.bulk import mark_chain
from repro.compress.varint import decode_varint, encode_varint
from repro.errors import CompressionError

_MAX_CODE_LEN = 32

#: Symbols per 2-D bit-scatter chunk; bounds scratch memory at roughly
#: ``3 * 10 bytes * 65536 * max_code_len`` regardless of input size.
_ENCODE_CHUNK = 1 << 16


def _code_lengths(freqs: list[int]) -> list[int]:
    """Huffman code length per symbol (0 for absent symbols)."""
    heap: list[tuple[int, int, tuple]] = []
    tick = 0
    for symbol, freq in enumerate(freqs):
        if freq:
            heap.append((freq, tick, (symbol,)))
            tick += 1
    if not heap:
        return [0] * 256
    if len(heap) == 1:
        lengths = [0] * 256
        lengths[heap[0][2][0]] = 1
        return lengths
    heapq.heapify(heap)
    lengths = [0] * 256
    # Heap merge: one round per tree node (<= 255), not per input byte.
    while len(heap) > 1:
        fa, __, syms_a = heapq.heappop(heap)
        fb, __, syms_b = heapq.heappop(heap)
        merged = syms_a + syms_b
        for symbol in merged:
            lengths[symbol] += 1
        heapq.heappush(heap, (fa + fb, tick, merged))
        tick += 1
    return lengths


def _canonical_codes(lengths: list[int]) -> dict[int, tuple[int, int]]:
    """Map symbol -> (code, length) in canonical order."""
    symbols = sorted(
        (s for s in range(256) if lengths[s]), key=lambda s: (lengths[s], s)
    )
    codes: dict[int, tuple[int, int]] = {}
    code = 0
    prev_len = 0
    for symbol in symbols:
        length = lengths[symbol]
        code <<= length - prev_len
        codes[symbol] = (code, length)
        code += 1
        prev_len = length
    return codes


def huffman_compress(data: bytes) -> bytes:
    """Compress ``data`` with a canonical Huffman code.

    Output layout: varint(len(data)) || 256 length bytes || bitstream.
    """
    out = bytearray(encode_varint(len(data)))
    if not data:
        return bytes(out)
    arr = np.frombuffer(data, dtype=np.uint8)
    freqs = np.bincount(arr, minlength=256).tolist()
    lengths = _code_lengths(freqs)
    if max(lengths) > _MAX_CODE_LEN:
        raise CompressionError("Huffman code length exceeds 32 bits")
    out += bytes(lengths)
    codes = _canonical_codes(lengths)
    code_table = np.zeros(256, dtype=np.uint64)
    len_table = np.zeros(256, dtype=np.int64)
    for symbol, (code, length) in codes.items():
        code_table[symbol] = code
        len_table[symbol] = length
    sym_lens = len_table[arr]
    sym_codes = code_table[arr]
    ends = np.cumsum(sym_lens)
    starts = ends - sym_lens
    bits = np.zeros(int(ends[-1]), dtype=np.uint8)
    for lo in range(0, arr.size, _ENCODE_CHUNK):
        cl = sym_lens[lo : lo + _ENCODE_CHUNK]
        cv = sym_codes[lo : lo + _ENCODE_CHUNK]
        st = starts[lo : lo + _ENCODE_CHUNK]
        width = int(cl.max())
        k = np.arange(width, dtype=np.int64)[None, :]
        valid = k < cl[:, None]
        # Bit k of a symbol is its code shifted down by (len - 1 - k),
        # MSB first; invalid lanes clamp the shift to keep uint64 happy.
        shifts = np.maximum(cl[:, None] - 1 - k, 0).astype(np.uint64)
        lanes = ((cv[:, None] >> shifts) & np.uint64(1)).astype(np.uint8)
        positions = st[:, None] + k
        bits[positions[valid]] = lanes[valid]
    out += np.packbits(bits).tobytes()
    return bytes(out)


def _decode_tables(
    lengths: list[int],
) -> list[tuple[int, int, np.ndarray]]:
    """Canonical decode ranges: (length, first code, symbols) ascending.

    Within one length canonical codes are consecutive integers, so a
    prefix matches iff it falls in ``[first, first + len(symbols))``.
    Lengths beyond 32 bits are omitted — the scalar decoder never tries
    them either (they only occur in corrupted length tables).
    """
    by_len: dict[int, tuple[int, list[int]]] = {}
    for symbol, (code, length) in _canonical_codes(lengths).items():
        if length > _MAX_CODE_LEN:
            continue
        if length not in by_len:
            by_len[length] = (code, [])
        by_len[length][1].append(symbol)
    return [
        (length, first, np.asarray(symbols, dtype=np.uint8))
        for length, (first, symbols) in sorted(by_len.items())
    ]


def _bit_windows(payload: np.ndarray) -> tuple[np.ndarray, int]:
    """32-bit big-endian window at every bit position of ``payload``.

    Returns ``(windows, nbits)``; windows past the end are zero-padded.
    Built from 40-bit byte-aligned windows (five shift-or passes over
    the byte array) plus one sub-byte shift, instead of 32 passes over
    the unpacked bit array.
    """
    nb = payload.size
    nbits = nb * 8
    padded = np.zeros(nb + 5, dtype=np.uint8)
    padded[:nb] = payload
    byte_windows = np.zeros(nb, dtype=np.uint64)
    for k in range(5):
        byte_windows |= padded[k : k + nb].astype(np.uint64) << np.uint64(
            8 * (4 - k)
        )
    idx = np.arange(nbits, dtype=np.int64)
    sub = (np.uint64(8) - (idx & 7).astype(np.uint64))
    windows = (byte_windows[idx >> 3] >> sub) & np.uint64(0xFFFFFFFF)
    return windows, nbits


def huffman_decompress(data: bytes) -> bytes:
    """Decompress a buffer produced by :func:`huffman_compress`."""
    expected, pos = decode_varint(data, 0)
    if expected == 0:
        return b""
    if pos + 256 > len(data):
        raise CompressionError("truncated Huffman length table")
    lengths = list(data[pos : pos + 256])
    pos += 256
    tables = _decode_tables(lengths)
    if not tables:
        raise CompressionError("empty Huffman code for non-empty payload")
    payload = np.frombuffer(data, dtype=np.uint8, offset=pos)
    windows, nbits = _bit_windows(payload)
    # Resolve every bit position: the shortest code range containing the
    # position's prefix wins, exactly like the scalar try-each-length
    # walk. ``code_len`` doubles as the claim mask.
    code_len = np.zeros(nbits, dtype=np.int64)
    symbol_at = np.zeros(nbits, dtype=np.uint8)
    top = np.arange(nbits, dtype=np.int64)
    for length, first, symbols in tables:
        if first >= 1 << length:
            continue  # corrupted table: no stream prefix can match
        prefix = windows >> np.uint64(32 - length)
        hit = (
            (code_len == 0)
            & (prefix >= np.uint64(first))
            & (prefix < np.uint64(first + symbols.size))
            & (top + length <= nbits)
        )
        where = np.flatnonzero(hit)
        if where.size:
            code_len[where] = length
            symbol_at[where] = symbols[
                (prefix[where] - np.uint64(first)).astype(np.int64)
            ]
    # Chain symbol starts from bit 0; an unmatched position ends the
    # chain (clamping its jump past the end), mirroring the scalar
    # decoder giving up at the first unmatchable prefix.
    jumps = np.where(code_len > 0, top + code_len, nbits)
    starts = np.flatnonzero(mark_chain(jumps, 0, nbits))
    if starts.size:
        starts = starts[code_len[starts] > 0]
    if starts.size < expected:
        raise CompressionError(
            f"decoded {starts.size} symbols, expected {expected}"
        )
    return symbol_at[starts[:expected]].tobytes()
