"""Frozen scalar codec implementations: the byte-identity oracles.

PR 5 rewrote the hot paths of every codec in :mod:`repro.compress` as
numpy bulk kernels. This module keeps the original per-byte scalar
implementations **verbatim and frozen** so that the vectorized kernels
can be differentially tested against them forever — the same oracle
pattern PR 4 established with ``factorize_scalar`` and
``reference_trie_bytes``.

Rules for this module:

- never "optimize" it: its only job is to define the correct bytes;
- it is exempt from the REP010 per-byte-loop lint rule (it *is* the
  per-byte implementation);
- it has no dependencies beyond the error types, so a bug in the live
  kernels can never leak into the oracle.

Functions mirror the live API names; import the module qualified
(``from repro.compress import reference``) so call sites read as
``reference.zippy_compress(...)``.
"""

from __future__ import annotations

import heapq

from repro.errors import CompressionError

# --------------------------------------------------------------------------
# varint / zigzag
# --------------------------------------------------------------------------


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a base-128 varint."""
    if value < 0:
        raise CompressionError(f"varint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes | memoryview, pos: int = 0) -> tuple[int, int]:
    """Decode a varint from ``data`` starting at ``pos``."""
    result = 0
    shift = 0
    start = pos
    while True:
        if pos >= len(data):
            raise CompressionError(f"truncated varint at offset {start}")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise CompressionError(f"varint too long at offset {start}")


def encode_zigzag(value: int) -> bytes:
    """Encode a signed integer with zigzag mapping then varint."""
    return encode_varint((value << 1) ^ (value >> 63) if value < 0 else value << 1)


def decode_zigzag(data: bytes | memoryview, pos: int = 0) -> tuple[int, int]:
    """Decode a zigzag varint; returns ``(value, next_pos)``."""
    raw, pos = decode_varint(data, pos)
    return (raw >> 1) ^ -(raw & 1), pos


def encode_varint_array(values) -> bytes:
    """Concatenated varints of ``values`` — the bulk-kernel oracle."""
    out = bytearray()
    for value in values:
        out += encode_varint(int(value))
    return bytes(out)


def decode_varint_stream(
    data: bytes | memoryview, count: int, pos: int = 0
) -> tuple[list[int], int]:
    """Decode ``count`` adjacent varints; returns ``(values, next_pos)``."""
    values: list[int] = []
    for _ in range(count):
        value, pos = decode_varint(data, pos)
        values.append(value)
    return values, pos


def encode_zigzag_array(values) -> bytes:
    """Concatenated zigzag varints of ``values``."""
    out = bytearray()
    for value in values:
        out += encode_zigzag(int(value))
    return bytes(out)


def decode_zigzag_stream(
    data: bytes | memoryview, count: int, pos: int = 0
) -> tuple[list[int], int]:
    """Decode ``count`` adjacent zigzag varints."""
    values: list[int] = []
    for _ in range(count):
        value, pos = decode_zigzag(data, pos)
        values.append(value)
    return values, pos


# --------------------------------------------------------------------------
# byte-level RLE
# --------------------------------------------------------------------------


def rle_encode_bytes(data: bytes) -> bytes:
    """Encode ``data`` as varint(total) || (varint(run) byte)*."""
    out = bytearray(encode_varint(len(data)))
    i = 0
    n = len(data)
    while i < n:
        byte = data[i]
        j = i + 1
        while j < n and data[j] == byte:
            j += 1
        out += encode_varint(j - i)
        out.append(byte)
        i = j
    return bytes(out)


def rle_decode_bytes(data: bytes) -> bytes:
    """Decode a buffer produced by :func:`rle_encode_bytes`."""
    expected, pos = decode_varint(data, 0)
    out = bytearray()
    n = len(data)
    while pos < n:
        run, pos = decode_varint(data, pos)
        if pos >= n:
            raise CompressionError("truncated RLE pair")
        out += bytes([data[pos]]) * run
        pos += 1
    if len(out) != expected:
        raise CompressionError(f"decoded {len(out)} bytes, expected {expected}")
    return bytes(out)


# --------------------------------------------------------------------------
# Zippy (Snappy-style LZ77)
# --------------------------------------------------------------------------

_MIN_MATCH = 4
_MAX_COPY_LEN = 64
_MAX_OFFSET_1BYTE = 1 << 11
_MAX_OFFSET_2BYTE = 1 << 16
_TAG_LITERAL = 0b00
_TAG_COPY1 = 0b01
_TAG_COPY2 = 0b10
_TAG_COPY3 = 0b11


def _zippy_emit_literal(out: bytearray, data: bytes, start: int, end: int) -> None:
    length = end - start
    while length > 0:
        run = min(length, 1 << 32)
        n = run - 1
        if n < 60:
            out.append(_TAG_LITERAL | (n << 2))
        elif n < 1 << 8:
            out.append(_TAG_LITERAL | (60 << 2))
            out.append(n)
        elif n < 1 << 16:
            out.append(_TAG_LITERAL | (61 << 2))
            out += n.to_bytes(2, "little")
        elif n < 1 << 24:
            out.append(_TAG_LITERAL | (62 << 2))
            out += n.to_bytes(3, "little")
        else:
            out.append(_TAG_LITERAL | (63 << 2))
            out += n.to_bytes(4, "little")
        out += data[start : start + run]
        start += run
        length -= run


def _zippy_emit_copy(out: bytearray, offset: int, length: int) -> None:
    while length >= _MAX_COPY_LEN + _MIN_MATCH:
        _zippy_emit_one_copy(out, offset, _MAX_COPY_LEN)
        length -= _MAX_COPY_LEN
    if length > _MAX_COPY_LEN:
        _zippy_emit_one_copy(out, offset, length - _MIN_MATCH)
        length = _MIN_MATCH
    _zippy_emit_one_copy(out, offset, length)


def _zippy_emit_one_copy(out: bytearray, offset: int, length: int) -> None:
    if 4 <= length <= 11 and offset < _MAX_OFFSET_1BYTE:
        out.append(_TAG_COPY1 | ((length - 4) << 2) | ((offset >> 8) << 5))
        out.append(offset & 0xFF)
    else:
        out.append(_TAG_COPY2 | ((length - 1) << 2))
        out += offset.to_bytes(2, "little")


def zippy_compress(data: bytes) -> bytes:
    """The frozen per-byte Zippy encoder."""
    n = len(data)
    out = bytearray(encode_varint(n))
    if n < _MIN_MATCH:
        if n:
            _zippy_emit_literal(out, data, 0, n)
        return bytes(out)

    table: dict[int, int] = {}
    pos = 0
    literal_start = 0
    limit = n - _MIN_MATCH
    skip = 32
    while pos <= limit:
        key = int.from_bytes(data[pos : pos + _MIN_MATCH], "little")
        candidate = table.get(key)
        table[key] = pos
        if (
            candidate is not None
            and pos - candidate < _MAX_OFFSET_2BYTE
            and data[candidate : candidate + _MIN_MATCH]
            == data[pos : pos + _MIN_MATCH]
        ):
            match_len = _MIN_MATCH
            max_len = n - pos
            while (
                match_len < max_len
                and data[candidate + match_len] == data[pos + match_len]
            ):
                match_len += 1
            if literal_start < pos:
                _zippy_emit_literal(out, data, literal_start, pos)
            _zippy_emit_copy(out, pos - candidate, match_len)
            end = pos + match_len
            if end - 1 <= limit:
                tail_key = int.from_bytes(
                    data[end - 1 : end - 1 + _MIN_MATCH], "little"
                )
                table[tail_key] = end - 1
            pos = end
            literal_start = pos
            skip = 32
        else:
            pos += 1 + (skip >> 5)
            skip += 1
    if literal_start < n:
        _zippy_emit_literal(out, data, literal_start, n)
    return bytes(out)


def zippy_decompress(data: bytes) -> bytes:
    """The frozen per-byte Zippy decoder."""
    expected, pos = decode_varint(data, 0)
    out = bytearray()
    n = len(data)
    while pos < n:
        tag = data[pos]
        pos += 1
        kind = tag & 0b11
        if kind == _TAG_LITERAL:
            marker = tag >> 2
            if marker < 60:
                length = marker + 1
            else:
                extra = marker - 59
                if pos + extra > n:
                    raise CompressionError("truncated literal length")
                length = int.from_bytes(data[pos : pos + extra], "little") + 1
                pos += extra
            if pos + length > n:
                raise CompressionError("truncated literal body")
            out += data[pos : pos + length]
            pos += length
        elif kind == _TAG_COPY1:
            if pos >= n:
                raise CompressionError("truncated 1-byte-offset copy")
            length = ((tag >> 2) & 0b111) + 4
            offset = ((tag >> 5) << 8) | data[pos]
            pos += 1
            _apply_copy(out, offset, length)
        elif kind == _TAG_COPY2:
            if pos + 2 > n:
                raise CompressionError("truncated 2-byte-offset copy")
            length = (tag >> 2) + 1
            offset = int.from_bytes(data[pos : pos + 2], "little")
            pos += 2
            _apply_copy(out, offset, length)
        else:
            raise CompressionError(f"unknown tag kind {kind:#b}")
    if len(out) != expected:
        raise CompressionError(
            f"decompressed size {len(out)} != declared {expected}"
        )
    return bytes(out)


def _apply_copy(out: bytearray, offset: int, length: int) -> None:
    """The frozen per-byte overlapping copy (both LZ codecs share it)."""
    if offset <= 0 or offset > len(out):
        raise CompressionError(f"copy offset {offset} out of range")
    start = len(out) - offset
    if offset >= length:
        out += out[start : start + length]
    else:
        for i in range(length):
            out.append(out[start + i])


# --------------------------------------------------------------------------
# LZO-like (lazy matching, chained candidates)
# --------------------------------------------------------------------------

_LZO_MIN_MATCH = 3
_LZO_HASH_LEN = 4
_LZO_MAX_OFFSET = 1 << 20
_LZO_CHAIN_LEN = 8


def _lzo_emit_literal(out: bytearray, data: bytes, start: int, end: int) -> None:
    length = end - start
    while length > 0:
        run = min(length, 1 << 16)
        n = run - 1
        if n < 60:
            out.append(_TAG_LITERAL | (n << 2))
        else:
            out.append(_TAG_LITERAL | (61 << 2))
            out += n.to_bytes(2, "little")
        out += data[start : start + run]
        start += run
        length -= run


def _lzo_emit_copy(out: bytearray, offset: int, length: int) -> None:
    while length > 0:
        run = min(length, 255 + _LZO_MIN_MATCH)
        if run >= 64 and length - run < _LZO_MIN_MATCH and length != run:
            run = length - _LZO_MIN_MATCH
        if 4 <= run <= 11 and offset < 1 << 11:
            out.append(_TAG_COPY1 | ((run - 4) << 2) | ((offset >> 8) << 5))
            out.append(offset & 0xFF)
        elif run <= 64 and offset < 1 << 16:
            out.append(_TAG_COPY2 | ((run - 1) << 2))
            out += offset.to_bytes(2, "little")
        else:
            out.append(_TAG_COPY3)
            out.append(run - _LZO_MIN_MATCH)
            out += offset.to_bytes(3, "little")
        length -= run


def _match_length(data: bytes, a: int, b: int, limit: int) -> int:
    length = 0
    while b + length < limit and data[a + length] == data[b + length]:
        length += 1
    return length


def _best_match(
    data: bytes, pos: int, chain: list[int], limit: int
) -> tuple[int, int]:
    best_len = 0
    best_off = 0
    for candidate in reversed(chain):
        offset = pos - candidate
        if offset <= 0 or offset >= _LZO_MAX_OFFSET:
            continue
        length = _match_length(data, candidate, pos, limit)
        if length > best_len:
            best_len = length
            best_off = offset
    return best_len, best_off


def lzo_compress(data: bytes) -> bytes:
    """The frozen per-byte LZO-like encoder."""
    n = len(data)
    out = bytearray(encode_varint(n))
    if n < _LZO_HASH_LEN:
        if n:
            _lzo_emit_literal(out, data, 0, n)
        return bytes(out)

    table: dict[int, list[int]] = {}
    pos = 0
    literal_start = 0
    limit = n - _LZO_HASH_LEN

    def key_at(i: int) -> int:
        return int.from_bytes(data[i : i + _LZO_HASH_LEN], "little")

    def insert(i: int) -> None:
        chain = table.setdefault(key_at(i), [])
        chain.append(i)
        if len(chain) > _LZO_CHAIN_LEN:
            del chain[0]

    while pos <= limit:
        chain = table.get(key_at(pos), ())
        length, offset = _best_match(data, pos, list(chain), n)
        if length >= _LZO_HASH_LEN:
            if pos + 1 <= limit:
                next_chain = table.get(key_at(pos + 1), ())
                next_len, __ = _best_match(data, pos + 1, list(next_chain), n)
                if next_len > length + 1:
                    insert(pos)
                    pos += 1
                    continue
            if literal_start < pos:
                _lzo_emit_literal(out, data, literal_start, pos)
            _lzo_emit_copy(out, offset, length)
            end = min(pos + length, limit + 1)
            step = max(1, length // 4)
            for i in range(pos, end, step):
                insert(i)
            pos += length
            literal_start = pos
        else:
            insert(pos)
            pos += 1
    if literal_start < n:
        _lzo_emit_literal(out, data, literal_start, n)
    return bytes(out)


def lzo_decompress(data: bytes) -> bytes:
    """The frozen per-byte LZO-like decoder."""
    expected, pos = decode_varint(data, 0)
    out = bytearray()
    n = len(data)
    while pos < n:
        tag = data[pos]
        pos += 1
        kind = tag & 0b11
        if kind == _TAG_LITERAL:
            marker = tag >> 2
            if marker < 60:
                length = marker + 1
            else:
                if pos + 2 > n:
                    raise CompressionError("truncated literal length")
                length = int.from_bytes(data[pos : pos + 2], "little") + 1
                pos += 2
            if pos + length > n:
                raise CompressionError("truncated literal body")
            out += data[pos : pos + length]
            pos += length
        elif kind == _TAG_COPY1:
            if pos >= n:
                raise CompressionError("truncated short copy")
            length = ((tag >> 2) & 0b111) + 4
            offset = ((tag >> 5) << 8) | data[pos]
            pos += 1
            _apply_copy(out, offset, length)
        elif kind == _TAG_COPY2:
            if pos + 2 > n:
                raise CompressionError("truncated copy")
            length = (tag >> 2) + 1
            offset = int.from_bytes(data[pos : pos + 2], "little")
            pos += 2
            _apply_copy(out, offset, length)
        elif kind == _TAG_COPY3:
            if pos + 4 > n:
                raise CompressionError("truncated long copy")
            length = data[pos] + _LZO_MIN_MATCH
            offset = int.from_bytes(data[pos + 1 : pos + 4], "little")
            pos += 4
            _apply_copy(out, offset, length)
        else:
            raise CompressionError(f"unknown tag kind {kind:#b}")
    if len(out) != expected:
        raise CompressionError(
            f"decompressed size {len(out)} != declared {expected}"
        )
    return bytes(out)


# --------------------------------------------------------------------------
# canonical Huffman
# --------------------------------------------------------------------------

_MAX_CODE_LEN = 32


def _code_lengths(freqs: list[int]) -> list[int]:
    """Huffman code length per symbol (0 for absent symbols)."""
    heap: list[tuple[int, int, tuple]] = []
    tick = 0
    for symbol, freq in enumerate(freqs):
        if freq:
            heap.append((freq, tick, (symbol,)))
            tick += 1
    if not heap:
        return [0] * 256
    if len(heap) == 1:
        lengths = [0] * 256
        lengths[heap[0][2][0]] = 1
        return lengths
    heapq.heapify(heap)
    lengths = [0] * 256
    while len(heap) > 1:
        fa, __, syms_a = heapq.heappop(heap)
        fb, __, syms_b = heapq.heappop(heap)
        merged = syms_a + syms_b
        for symbol in merged:
            lengths[symbol] += 1
        heapq.heappush(heap, (fa + fb, tick, merged))
        tick += 1
    return lengths


def _canonical_codes(lengths: list[int]) -> dict[int, tuple[int, int]]:
    """Map symbol -> (code, length) in canonical order."""
    symbols = sorted(
        (s for s in range(256) if lengths[s]), key=lambda s: (lengths[s], s)
    )
    codes: dict[int, tuple[int, int]] = {}
    code = 0
    prev_len = 0
    for symbol in symbols:
        length = lengths[symbol]
        code <<= length - prev_len
        codes[symbol] = (code, length)
        code += 1
        prev_len = length
    return codes


def huffman_compress(data: bytes) -> bytes:
    """The frozen per-byte Huffman encoder."""
    out = bytearray(encode_varint(len(data)))
    if not data:
        return bytes(out)
    freqs = [0] * 256
    for byte in data:
        freqs[byte] += 1
    lengths = _code_lengths(freqs)
    if max(lengths) > _MAX_CODE_LEN:
        raise CompressionError("Huffman code length exceeds 32 bits")
    out += bytes(lengths)
    codes = _canonical_codes(lengths)
    acc = 0
    bits = 0
    for byte in data:
        code, length = codes[byte]
        acc = (acc << length) | code
        bits += length
        while bits >= 8:
            bits -= 8
            out.append((acc >> bits) & 0xFF)
    if bits:
        out.append((acc << (8 - bits)) & 0xFF)
    return bytes(out)


def huffman_decompress(data: bytes) -> bytes:
    """The frozen per-byte Huffman decoder."""
    expected, pos = decode_varint(data, 0)
    if expected == 0:
        return b""
    if pos + 256 > len(data):
        raise CompressionError("truncated Huffman length table")
    lengths = list(data[pos : pos + 256])
    pos += 256
    codes = _canonical_codes(lengths)
    if not codes:
        raise CompressionError("empty Huffman code for non-empty payload")
    decode_map = {(ln, code): sym for sym, (code, ln) in codes.items()}
    out = bytearray()
    acc = 0
    bits = 0
    for byte in data[pos:]:
        acc = (acc << 8) | byte
        bits += 8
        while True:
            matched = False
            for ln in range(1, min(bits, _MAX_CODE_LEN) + 1):
                prefix = acc >> (bits - ln)
                symbol = decode_map.get((ln, prefix))
                if symbol is not None:
                    out.append(symbol)
                    bits -= ln
                    acc &= (1 << bits) - 1
                    matched = True
                    break
            if not matched or len(out) == expected:
                break
        if len(out) == expected:
            break
    if len(out) != expected:
        raise CompressionError(
            f"decoded {len(out)} symbols, expected {expected}"
        )
    return bytes(out)


def zippy_huffman_compress(data: bytes) -> bytes:
    """The frozen stacked codec (zippy then Huffman)."""
    return huffman_compress(zippy_compress(data))


def zippy_huffman_decompress(data: bytes) -> bytes:
    """Inverse of :func:`zippy_huffman_compress`."""
    return zippy_decompress(huffman_decompress(data))
