"""Little-endian base-128 varints (the protocol-buffer wire encoding).

Shared by the compression codecs (length preambles) and the record-io
row format (:mod:`repro.formats.recordio`).

Two API tiers live here:

- scalar :func:`encode_varint` / :func:`decode_varint` for headers and
  one-off values;
- bulk kernels (:func:`encode_varint_array`,
  :func:`decode_varint_stream` and the zigzag variants) that encode or
  decode a whole integer column in a handful of numpy passes. They are
  byte-identical to the scalar loops frozen in
  :mod:`repro.compress.reference` — the columnio block codec, the
  record-io writer, and the chunk-dictionary serde are built on them.

The bulk decoder exploits that in a varint stream the byte's top bit
alone marks value boundaries: one comparison yields every terminator,
``cumsum``-style arithmetic yields every start, and a 2-D gather
accumulates all payload bits at once. Values are decoded modulo 2**64
(the scalar decoder agrees for every canonically encoded value).
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompressionError

#: Smallest value needing k+1 payload septets, for k = 1..9.
_VARINT_THRESHOLDS = tuple(1 << (7 * k) for k in range(1, 10))

#: A canonical uint64 varint never exceeds ten bytes.
_MAX_VARINT_LEN = 10


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a base-128 varint."""
    if value < 0:
        raise CompressionError(f"varint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes | memoryview, pos: int = 0) -> tuple[int, int]:
    """Decode a varint from ``data`` starting at ``pos``.

    Returns ``(value, next_pos)``.
    """
    result = 0
    shift = 0
    start = pos
    while True:  # reprolint: disable=REP010 -- single-value header decode, <= 10 iterations
        if pos >= len(data):
            raise CompressionError(f"truncated varint at offset {start}")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise CompressionError(f"varint too long at offset {start}")


def encode_zigzag(value: int) -> bytes:
    """Encode a signed integer with zigzag mapping then varint."""
    return encode_varint((value << 1) ^ (value >> 63) if value < 0 else value << 1)


def decode_zigzag(data: bytes | memoryview, pos: int = 0) -> tuple[int, int]:
    """Decode a zigzag varint; returns ``(value, next_pos)``."""
    raw, pos = decode_varint(data, pos)
    return (raw >> 1) ^ -(raw & 1), pos


# --------------------------------------------------------------------------
# bulk kernels
# --------------------------------------------------------------------------


def _as_uint64(values: object) -> np.ndarray:
    """Validate an integer array-like and return it as uint64."""
    arr = np.asarray(values)
    if arr.dtype.kind == "u":
        return arr.astype(np.uint64, copy=False)
    if arr.dtype.kind != "i":
        raise CompressionError(
            f"varint kernel requires an integer array, got dtype {arr.dtype}"
        )
    if arr.size and int(arr.min()) < 0:
        raise CompressionError(
            f"varint cannot encode negative value {int(arr.min())}"
        )
    return arr.astype(np.uint64)


def varint_lengths(values: object) -> np.ndarray:
    """Encoded byte length of each value in an unsigned array.

    Vectorized as nine threshold comparisons: a value needs one byte
    per started septet.
    """
    arr = _as_uint64(values)
    lengths = np.ones(arr.size, dtype=np.int64)
    for threshold in _VARINT_THRESHOLDS:
        lengths += arr >= np.uint64(threshold)
    return lengths


def _scatter_varints(
    out: np.ndarray,
    starts: np.ndarray,
    values: np.ndarray,
    lengths: np.ndarray,
) -> None:
    """Write the varint bytes of ``values`` into ``out`` at ``starts``.

    One 2-D scatter: byte ``k`` of value ``i`` is septet ``k`` plus a
    continuation bit everywhere but the final byte.
    """
    maxlen = int(lengths.max())
    k = np.arange(maxlen, dtype=np.int64)
    shifts = (np.uint64(7) * np.arange(maxlen, dtype=np.uint64))[None, :]
    septets = ((values[:, None] >> shifts) & np.uint64(0x7F)).astype(np.uint8)
    continuation = k[None, :] < (lengths[:, None] - 1)
    septets |= np.where(continuation, np.uint8(0x80), np.uint8(0))
    valid = k[None, :] < lengths[:, None]
    positions = starts[:, None] + k[None, :]
    out[positions[valid]] = septets[valid]


def encode_varint_array(values: object) -> bytes:
    """Concatenated varints of an unsigned integer array.

    Byte-identical to encoding each value with :func:`encode_varint`.
    """
    arr = _as_uint64(values)
    if arr.size == 0:
        return b""
    lengths = varint_lengths(arr)
    ends = np.cumsum(lengths)
    out = np.zeros(int(ends[-1]), dtype=np.uint8)
    _scatter_varints(out, ends - lengths, arr, lengths)
    return out.tobytes()


def gather_varints(
    arr: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Decode the varints starting at ``starts`` in a uint8 array.

    ``lengths`` must already span each varint including its terminator;
    values accumulate modulo 2**64. Shared by the stream decoder and
    the RLE pair decoder. One clipped gather per byte position — most
    streams need one or two passes because most varints are short.
    """
    maxlen = int(lengths.max())
    top = arr.size - 1
    values = np.zeros(starts.size, dtype=np.uint64)
    for offset in range(maxlen):
        septets = arr[np.minimum(starts + offset, top)].astype(np.uint64)
        septets &= np.uint64(0x7F)
        septets <<= np.uint64(7 * offset)
        values |= np.where(offset < lengths, septets, np.uint64(0))
    return values


def decode_varint_stream(
    data: bytes | bytearray | memoryview, count: int, pos: int = 0
) -> tuple[np.ndarray, int]:
    """Decode ``count`` adjacent varints starting at ``pos``.

    Returns ``(values, next_pos)`` with ``values`` as uint64. Raises
    :class:`~repro.errors.CompressionError` on truncation or a varint
    longer than ten bytes, like the scalar decoder.
    """
    if count < 0:
        raise CompressionError(f"cannot decode {count} varints")
    if count == 0:
        return np.empty(0, dtype=np.uint64), pos
    if pos >= len(data):
        raise CompressionError(f"truncated varint at offset {pos}")
    arr = np.frombuffer(data, dtype=np.uint8, offset=pos)
    terminators = np.flatnonzero(arr < 0x80)
    if terminators.size < count:
        raise CompressionError(
            f"truncated varint stream at offset {pos}: "
            f"{terminators.size} of {count} values terminated"
        )
    ends = terminators[:count]
    starts = np.empty(count, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    longest = int(lengths.max())
    if longest > _MAX_VARINT_LEN:
        offender = int(starts[int(np.argmax(lengths))])
        raise CompressionError(f"varint too long at offset {pos + offender}")
    values = gather_varints(arr, starts, lengths)
    return values, pos + int(ends[-1]) + 1


def encode_zigzag_array(values: object) -> bytes:
    """Concatenated zigzag varints of a signed integer array.

    Byte-identical to encoding each value with :func:`encode_zigzag`;
    values must fit in int64.
    """
    arr = np.asarray(values)
    if arr.dtype.kind == "u":
        if arr.size and int(arr.max()) > np.iinfo(np.int64).max:
            raise CompressionError("zigzag kernel requires int64-range values")
        arr = arr.astype(np.int64)
    if arr.dtype.kind != "i":
        raise CompressionError(
            f"zigzag kernel requires an integer array, got dtype {arr.dtype}"
        )
    signed = arr.astype(np.int64, copy=False)
    # int64 shifts wrap modulo 2**64, which is exactly the zigzag map.
    zigzag = ((signed << np.int64(1)) ^ (signed >> np.int64(63))).view(np.uint64)
    return encode_varint_array(zigzag)


def decode_zigzag_stream(
    data: bytes | bytearray | memoryview, count: int, pos: int = 0
) -> tuple[np.ndarray, int]:
    """Decode ``count`` adjacent zigzag varints; values come back int64."""
    raw, pos = decode_varint_stream(data, count, pos)
    values = (raw >> np.uint64(1)).astype(np.int64) ^ -(
        (raw & np.uint64(1)).astype(np.int64)
    )
    return values, pos
