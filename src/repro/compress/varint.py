"""Little-endian base-128 varints (the protocol-buffer wire encoding).

Shared by the compression codecs (length preambles) and the record-io
row format (:mod:`repro.formats.recordio`).
"""

from __future__ import annotations

from repro.errors import CompressionError


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a base-128 varint."""
    if value < 0:
        raise CompressionError(f"varint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes | memoryview, pos: int = 0) -> tuple[int, int]:
    """Decode a varint from ``data`` starting at ``pos``.

    Returns ``(value, next_pos)``.
    """
    result = 0
    shift = 0
    start = pos
    while True:
        if pos >= len(data):
            raise CompressionError(f"truncated varint at offset {start}")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise CompressionError(f"varint too long at offset {start}")


def encode_zigzag(value: int) -> bytes:
    """Encode a signed integer with zigzag mapping then varint."""
    return encode_varint((value << 1) ^ (value >> 63) if value < 0 else value << 1)


def decode_zigzag(data: bytes | memoryview, pos: int = 0) -> tuple[int, int]:
    """Decode a zigzag varint; returns ``(value, next_pos)``."""
    raw, pos = decode_varint(data, pos)
    return (raw >> 1) ^ -(raw & 1), pos
