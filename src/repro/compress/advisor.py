"""The encoding advisor: data-driven per-column codec selection (PR 9).

The paper gets its space/speed wins by choosing the right representation
per column (dictionary codes, Zippy blocks, the Section 6 optimized
layouts). This module makes that choice *data-driven* in the spirit of
LEA ("A Learned Encoding Advisor for Column Stores", PAPERS.md): instead
of a learned model we keep LEA's *feature set* and pair it with either
cheap trial encodes or a deterministic cost table.

Three pieces:

- :func:`profile_values` — samples a column and extracts the LEA-style
  features (cardinality ratio, run structure, value width, null
  fraction, string prefix sharing, sortedness) into a
  :class:`ColumnProfile`.
- :func:`sample_window` — a seeded, size-bounded byte sample of the
  encoded payload the trial encodes run against.
- :func:`choose_codec` — scores candidate codecs/cascades on
  ``compression_ratio ** size_weight * (decode_mbps / reference)
  ** speed_weight`` and returns a :class:`CodecChoice`. In ``trial``
  mode the decode throughput is *measured* via the registry's
  per-codec :class:`~repro.compress.registry.CompressionStats` deltas
  (PR 5's telemetry becomes the signal); in the default ``stats`` mode
  a fixed nominal-throughput table is used instead, so a fixed sample
  seed yields byte-identical advisor output across machines — the
  determinism contract the property tests and fsck rely on.

Candidates that fail to encode, decode, or round-trip the sample are
skipped (never chosen), so a bad candidate list degrades to the
baseline rather than corrupting data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from os.path import commonprefix

import numpy as np

from repro.compress.registry import (
    cascade_stages,
    compression_stats,
    get_codec,
)
from repro.errors import CompressionError

#: Candidate codecs the advisor scores by default. A deliberate subset
#: of the registry: ``huffman``-family codecs decode far too slowly to
#: ever win under the default weights, and trialling them would only
#: slow imports down.
DEFAULT_CANDIDATES: tuple[str, ...] = (
    "none",
    "zippy",
    "lzo",
    "rle",
    "delta+varint",
    "delta+rle",
    "delta+zippy",
    "rle+zippy",
    "dict+rle+varint",
)

#: Nominal decode throughput (decompressed MB/s) per *atomic* stage for
#: the deterministic ``stats`` scoring mode. Calibrated once against
#: this repo's pure-python kernels on the PR 5 bench corpus; the exact
#: values matter less than their order, and they must never be read
#: from the live machine (that would break cross-machine determinism).
_NOMINAL_DECODE_MBPS: dict[str, float] = {
    "none": 4096.0,
    "dict": 1200.0,
    "delta": 900.0,
    "rle": 700.0,
    "varint": 250.0,
    "lzo": 160.0,
    "zippy": 110.0,
    "huffman": 30.0,
}

#: Reference decode throughput: the speed factor is ``mbps / _REF_MBPS``
#: so a codec at the reference speed scores purely on ratio.
_REF_MBPS = 64.0

_VALUE_KINDS = ("empty", "int", "float", "string", "mixed")

#: Cap on how much of each sampled string feeds the prefix-sharing
#: feature — table names share prefixes in their first bytes.
_PREFIX_PROBE_CHARS = 512


@dataclass(frozen=True)
class ColumnProfile:
    """LEA-style summary statistics of a sampled column."""

    n_total: int
    n_sample: int
    null_fraction: float
    cardinality_ratio: float
    mean_run_length: float
    sortedness: float
    value_kind: str
    int_width_bytes: int
    avg_string_len: float
    prefix_share: float

    def as_dict(self) -> dict[str, float | int | str]:
        return {
            "n_total": self.n_total,
            "n_sample": self.n_sample,
            "null_fraction": self.null_fraction,
            "cardinality_ratio": self.cardinality_ratio,
            "mean_run_length": self.mean_run_length,
            "sortedness": self.sortedness,
            "value_kind": self.value_kind,
            "int_width_bytes": self.int_width_bytes,
            "avg_string_len": self.avg_string_len,
            "prefix_share": self.prefix_share,
        }


@dataclass(frozen=True)
class AdvisorConfig:
    """Advisor knobs; the importer builds one from ``DataStoreOptions``.

    ``mode`` selects how decode speed enters the score: ``stats``
    (default) uses the nominal throughput table and is deterministic
    under a fixed ``seed``; ``trial`` measures the sample decodes via
    the registry stats and tracks the host machine.
    """

    sample_rows: int = 4096
    sample_budget_bytes: int = 64 * 1024
    seed: int = 2012
    size_weight: float = 1.0
    speed_weight: float = 0.15
    mode: str = "stats"
    candidates: tuple[str, ...] = DEFAULT_CANDIDATES

    def __post_init__(self) -> None:
        if self.sample_rows < 1:
            raise CompressionError(
                f"advisor sample_rows must be >= 1, got {self.sample_rows}"
            )
        if self.sample_budget_bytes < 1024:
            raise CompressionError(
                "advisor sample_budget_bytes must be >= 1024, got "
                f"{self.sample_budget_bytes}"
            )
        if self.size_weight < 0 or self.speed_weight < 0:
            raise CompressionError(
                "advisor weights must be non-negative, got "
                f"size={self.size_weight} speed={self.speed_weight}"
            )
        if self.mode not in ("stats", "trial"):
            raise CompressionError(
                f"advisor mode must be 'stats' or 'trial', got {self.mode!r}"
            )
        if not self.candidates:
            raise CompressionError("advisor candidate list is empty")


@dataclass(frozen=True)
class CodecChoice:
    """The advisor's verdict for one column/payload."""

    codec: str
    predicted_ratio: float
    sample_bytes: int
    mode: str
    #: ``(candidate, ratio, score)`` per scored candidate, sorted by
    #: descending score — kept for ``repro describe`` and the bench.
    scores: tuple[tuple[str, float, float], ...] = field(default=())

    def as_dict(self) -> dict[str, object]:
        return {
            "codec": self.codec,
            "predicted_ratio": self.predicted_ratio,
            "sample_bytes": self.sample_bytes,
            "mode": self.mode,
            "scores": [list(row) for row in self.scores],
        }


def _rng(config: AdvisorConfig) -> np.random.Generator:
    return np.random.default_rng(config.seed)


def _sample_indices(n: int, k: int, config: AdvisorConfig) -> list[int]:
    """``k`` sorted distinct indices into ``range(n)``, seeded."""
    if n <= k:
        return list(range(n))
    picked = _rng(config).choice(n, size=k, replace=False)
    picked.sort()
    return picked.tolist()


def profile_values(values, config: AdvisorConfig) -> ColumnProfile:
    """Profile a column (any indexable sequence, ``None`` for NULL)."""
    n_total = len(values)
    idx = _sample_indices(n_total, config.sample_rows, config)
    sample = list(map(values.__getitem__, idx))
    n_sample = len(sample)
    if not n_sample:
        return ColumnProfile(
            n_total=n_total,
            n_sample=0,
            null_fraction=0.0,
            cardinality_ratio=0.0,
            mean_run_length=0.0,
            sortedness=0.0,
            value_kind="empty",
            int_width_bytes=0,
            avg_string_len=0.0,
            prefix_share=0.0,
        )

    nulls = sum(1 for v in sample if v is None)
    null_fraction = nulls / n_sample
    present = [v for v in sample if v is not None]

    kinds = {type(v) for v in present}
    if not present:
        value_kind = "empty"
    elif kinds <= {int, bool}:
        value_kind = "int"
    elif kinds <= {int, bool, float}:
        value_kind = "float" if float in kinds else "int"
    elif kinds == {str}:
        value_kind = "string"
    else:
        value_kind = "mixed"

    distinct = len(set(sample))
    cardinality_ratio = distinct / n_sample

    runs = 1 + sum(1 for a, b in zip(sample, sample[1:]) if a != b)
    mean_run_length = n_sample / runs

    # Fraction of adjacent sampled pairs already in order. Mixed-type
    # columns are incomparable — call them unsorted rather than raising.
    if n_sample > 1:
        try:
            in_order = sum(
                1
                for a, b in zip(present, present[1:])
                if a <= b
            )
            pairs = max(1, len(present) - 1)
            sortedness = in_order / pairs if len(present) > 1 else 0.0
        except TypeError:
            sortedness = 0.0
    else:
        sortedness = 1.0

    int_width_bytes = 0
    if value_kind == "int" and present:
        top = max(abs(int(v)) for v in present)
        int_width_bytes = max(1, (int(top).bit_length() + 8) // 8)

    avg_string_len = 0.0
    prefix_share = 0.0
    if value_kind == "string" and present:
        avg_string_len = sum(map(len, present)) / len(present)
        # Prefix sharing over *sorted* strings mirrors how the
        # dictionary stores them; adjacent pairs share the longest
        # prefixes, so this is a tight upper-bound estimate.
        probe = sorted(s[:_PREFIX_PROBE_CHARS] for s in present)
        shared = sum(
            len(commonprefix((a, b)))
            for a, b in zip(probe, probe[1:])
        )
        total = sum(map(len, probe[1:]))
        prefix_share = shared / total if total else 0.0

    return ColumnProfile(
        n_total=n_total,
        n_sample=n_sample,
        null_fraction=null_fraction,
        cardinality_ratio=cardinality_ratio,
        mean_run_length=mean_run_length,
        sortedness=sortedness,
        value_kind=value_kind,
        int_width_bytes=int_width_bytes,
        avg_string_len=avg_string_len,
        prefix_share=prefix_share,
    )


def sample_window(data: bytes, config: AdvisorConfig) -> bytes:
    """A seeded byte sample of ``data``, at most ``sample_budget_bytes``.

    Small payloads are returned whole; large ones are sampled as sorted
    1 KiB windows so the sample preserves local run/delta structure the
    candidate codecs exploit.
    """
    budget = config.sample_budget_bytes
    if len(data) <= budget:
        return data
    window = 1024
    n_windows = budget // window
    n_starts = max(1, (len(data) - window) // window + 1)
    picked = _rng(config).choice(
        n_starts, size=min(n_windows, n_starts), replace=False
    )
    picked.sort()
    starts = (picked * window).tolist()
    return b"".join(data[s : s + window] for s in starts)


def _candidates_for(
    profile: ColumnProfile | None, config: AdvisorConfig
) -> tuple[str, ...]:
    """Prune the candidate list using the column profile.

    Without a profile every configured candidate is trialled. With one,
    only the families the features point at are — always keeping the
    baselines so pruning can never make the choice worse than static.
    """
    if profile is None:
        return config.candidates
    keep = []
    run_heavy = (
        profile.mean_run_length >= 1.5 or profile.cardinality_ratio <= 0.1
    )
    delta_friendly = (
        profile.sortedness >= 0.4 or profile.value_kind in ("int", "float")
    )
    stringish = profile.value_kind in ("string", "mixed")
    for name in config.candidates:
        stages = set(cascade_stages(name)) or {name}
        if "rle" in stages and not run_heavy:
            continue
        if "delta" in stages and not (delta_friendly or run_heavy):
            continue
        if "huffman" in stages and not stringish:
            continue
        keep.append(name)
    return tuple(keep) if keep else config.candidates


def _nominal_mbps(name: str) -> float:
    """Deterministic decode-throughput estimate for ``stats`` mode.

    Cascades compose harmonically: each stage processes roughly the
    whole payload, so the pipeline's rate is the harmonic combination
    of its stages' rates.
    """
    stages = cascade_stages(name) or (name,)
    inv = 0.0
    for stage in stages:
        inv += 1.0 / _NOMINAL_DECODE_MBPS.get(stage, _REF_MBPS)
    return 1.0 / inv


def choose_codec(
    sample: bytes,
    config: AdvisorConfig,
    profile: ColumnProfile | None = None,
    candidates: tuple[str, ...] | None = None,
) -> CodecChoice:
    """Score candidates on the sample and return the winner.

    Every candidate is round-trip verified on the sample; candidates
    that raise :class:`~repro.errors.CompressionError` or fail the
    round-trip are skipped. Score is
    ``ratio ** size_weight * (decode_mbps / 64) ** speed_weight``; ties
    break on codec name so the choice is total-ordered.
    """
    if candidates is None:
        candidates = _candidates_for(profile, config)
    if not sample:
        # Nothing to measure — identity is the only sane answer.
        return CodecChoice(
            codec="none",
            predicted_ratio=1.0,
            sample_bytes=0,
            mode=config.mode,
        )

    scored: list[tuple[float, str, float]] = []
    for name in candidates:
        try:
            codec = get_codec(name)
            if config.mode == "trial":
                stats = compression_stats(name)
                before_s = stats.decode_seconds
                before_b = stats.decode_bytes_out
                encoded = codec.compress(sample)
                decoded = codec.decompress(encoded)
                trial_s = stats.decode_seconds - before_s
                trial_b = stats.decode_bytes_out - before_b
                mbps = (
                    trial_b / trial_s / (1 << 20)
                    if trial_s > 0
                    else _nominal_mbps(name)
                )
            else:
                encoded = codec.compress(sample)
                decoded = codec.decompress(encoded)
                mbps = _nominal_mbps(name)
        except CompressionError:
            continue
        if decoded != sample or not encoded:
            continue
        ratio = len(sample) / len(encoded)
        score = (ratio ** config.size_weight) * (
            (mbps / _REF_MBPS) ** config.speed_weight
        )
        scored.append((score, name, ratio))

    if not scored:
        raise CompressionError(
            "advisor: no candidate codec round-tripped the sample "
            f"(candidates: {', '.join(candidates)})"
        )
    scored.sort(key=lambda row: (-row[0], row[1]))
    best_score, best_name, best_ratio = scored[0]
    return CodecChoice(
        codec=best_name,
        predicted_ratio=best_ratio,
        sample_bytes=len(sample),
        mode=config.mode,
        scores=tuple((name, ratio, score) for score, name, ratio in scored),
    )
