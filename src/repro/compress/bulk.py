"""Shared numpy primitives for the vectorized codec kernels.

The sticking point when vectorizing byte-stream decoders is that record
boundaries are *sequential*: where pair ``i + 1`` starts depends on how
long pair ``i`` was. :func:`mark_chain` breaks that dependency with
pointer doubling — given every position's successor, it marks the set
of positions reachable from a start in O(log n) vectorized rounds, so a
decoder can compute candidate record lengths for *all* positions at
once and then select the true record starts in logarithmic passes instead
of one Python iteration per record. Both the RLE pair-stream decoder
and the Huffman bitstream decoder are built on it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mark_chain"]


def mark_chain(jumps: np.ndarray, start: int, size: int) -> np.ndarray:
    """Boolean mask of the indices reachable from ``start`` via ``jumps``.

    ``jumps[p]`` is the successor of position ``p``; any successor
    ``>= size`` terminates the chain (a clamped out-of-range jump).
    Runs ``ceil(log2(size)) + 1`` pointer-doubling rounds: after round
    ``k`` every position ``f^j(start)`` with ``j < 2**k`` is marked and
    the jump table composes to ``f^(2**k)``.
    """
    mark = np.zeros(size, dtype=bool)
    if size <= 0 or not 0 <= start < size:
        return mark
    # Extended table with a self-looping sentinel row at index ``size``.
    ext = np.empty(size + 1, dtype=np.int64)
    np.clip(jumps, 0, size, out=ext[:size])
    ext[size] = size
    marked_ext = np.zeros(size + 1, dtype=bool)
    marked_ext[start] = True
    steps = 1
    while steps <= size:  # reprolint: disable=REP010 -- O(log n) doubling rounds, not per byte
        marked_ext[ext[np.flatnonzero(marked_ext)]] = True
        ext = ext[ext]
        steps <<= 1
    mark[:] = marked_ext[:size]
    mark[start] = True
    return mark
