"""An LZO-like LZ77 variant: lazy matching and chained candidates.

Section 5 of the paper reports that a variant of LZO was chosen for
production because it compressed ~10% better than Zippy and decompressed
up to twice as fast. This codec reproduces those trade-offs relative to
:mod:`repro.compress.zippy`:

- *lazy matching*: before emitting a match at ``pos`` the encoder also
  probes ``pos + 1`` and defers if the later match is longer,
- *candidate chains*: each hash bucket keeps a short chain of previous
  positions instead of a single one, finding longer matches,
- a 3-byte minimum match, catching short repeats zippy skips.

The output format reuses zippy's tag scheme plus one extra tag kind
(``11`` = copy with 3-byte offset and explicit length byte) so matches
can reference further back. Decompression is a single linear pass.

Like :mod:`repro.compress.zippy` (PR 5), the hot paths are bulk
operations byte-identical to the scalar encoder frozen in
:mod:`repro.compress.reference`: window keys come from one vectorized
pass, candidate matches extend via doubling slice compares, and
overlapping copies tile instead of appending per byte.
"""

from __future__ import annotations

import numpy as np

from repro.compress.varint import decode_varint, encode_varint
from repro.compress.zippy import match_extension, window_keys
from repro.errors import CompressionError

_MIN_MATCH = 3
_HASH_LEN = 4  # candidate keys hash 4 bytes; 3-byte keys collide badly
_MAX_OFFSET = 1 << 20
_CHAIN_LEN = 8
_TAG_LITERAL = 0b00
_TAG_COPY1 = 0b01  # 11-bit offset, length 4..11 (2 bytes total)
_TAG_COPY2 = 0b10
_TAG_COPY3 = 0b11


def _emit_literal(out: bytearray, data: bytes, start: int, end: int) -> None:
    length = end - start
    while length > 0:
        run = min(length, 1 << 16)
        n = run - 1
        if n < 60:
            out.append(_TAG_LITERAL | (n << 2))
        else:
            out.append(_TAG_LITERAL | (61 << 2))
            out += n.to_bytes(2, "little")
        out += data[start : start + run]
        start += run
        length -= run


def _emit_copy(out: bytearray, offset: int, length: int) -> None:
    while length > 0:
        run = min(length, 255 + _MIN_MATCH)
        if run >= 64 and length - run < _MIN_MATCH and length != run:
            run = length - _MIN_MATCH
        if 4 <= run <= 11 and offset < 1 << 11:
            out.append(_TAG_COPY1 | ((run - 4) << 2) | ((offset >> 8) << 5))
            out.append(offset & 0xFF)
        elif run <= 64 and offset < 1 << 16:
            out.append(_TAG_COPY2 | ((run - 1) << 2))
            out += offset.to_bytes(2, "little")
        else:
            out.append(_TAG_COPY3)
            out.append(run - _MIN_MATCH)
            out += offset.to_bytes(3, "little")
        length -= run


def _best_match(
    data: bytes, pos: int, chain: list[int], limit: int
) -> tuple[int, int]:
    """Best (length, offset) among chained candidates; (0, 0) if none."""
    best_len = 0
    best_off = 0
    for candidate in reversed(chain):
        offset = pos - candidate
        if offset <= 0 or offset >= _MAX_OFFSET:
            continue
        length = match_extension(data, candidate, pos, limit - pos)
        if length > best_len:
            best_len = length
            best_off = offset
    return best_len, best_off


def lzo_compress(data: bytes) -> bytes:
    """Compress ``data`` with lazy matching; round-trips via
    :func:`lzo_decompress`.
    """
    n = len(data)
    out = bytearray(encode_varint(n))
    if n < _HASH_LEN:
        if n:
            _emit_literal(out, data, 0, n)
        return bytes(out)

    table: dict[int, list[int]] = {}
    pos = 0
    literal_start = 0
    limit = n - _HASH_LEN
    key_list = window_keys(
        np.frombuffer(data, dtype=np.uint8), limit + 1
    ).tolist()

    def key_at(i: int) -> int:
        return key_list[i]

    def insert(i: int) -> None:
        chain = table.setdefault(key_at(i), [])
        chain.append(i)
        if len(chain) > _CHAIN_LEN:
            del chain[0]

    # Lazy greedy parse: advances by whole matches; per-index access
    # goes through key_at/insert, so no REP010 suppression is needed.
    while pos <= limit:
        chain = table.get(key_at(pos), ())
        length, offset = _best_match(data, pos, list(chain), n)
        # A 3-byte match emitted as a 3-byte copy tag saves nothing and
        # splits literal runs; only matches of >= 4 bytes are profitable.
        if length >= _HASH_LEN:
            # Lazy evaluation: a longer match starting one byte later wins.
            if pos + 1 <= limit:
                next_chain = table.get(key_at(pos + 1), ())
                next_len, __ = _best_match(data, pos + 1, list(next_chain), n)
                if next_len > length + 1:
                    insert(pos)
                    pos += 1
                    continue
            if literal_start < pos:
                _emit_literal(out, data, literal_start, pos)
            _emit_copy(out, offset, length)
            end = min(pos + length, limit + 1)
            # Index a few positions inside the match to keep chains warm.
            step = max(1, length // 4)
            for i in range(pos, end, step):
                insert(i)
            pos += length
            literal_start = pos
        else:
            insert(pos)
            pos += 1
    if literal_start < n:
        _emit_literal(out, data, literal_start, n)
    return bytes(out)


def lzo_decompress(data: bytes) -> bytes:
    """Decompress a buffer produced by :func:`lzo_compress`."""
    expected, pos = decode_varint(data, 0)
    out = bytearray()
    n = len(data)
    while pos < n:  # reprolint: disable=REP010 -- per-tag dispatch; all byte copies are slices
        tag = data[pos]
        pos += 1
        kind = tag & 0b11
        if kind == _TAG_LITERAL:
            marker = tag >> 2
            if marker < 60:
                length = marker + 1
            else:
                if pos + 2 > n:
                    raise CompressionError("truncated literal length")
                length = int.from_bytes(data[pos : pos + 2], "little") + 1
                pos += 2
            if pos + length > n:
                raise CompressionError("truncated literal body")
            out += data[pos : pos + length]
            pos += length
        elif kind == _TAG_COPY1:
            if pos >= n:
                raise CompressionError("truncated short copy")
            length = ((tag >> 2) & 0b111) + 4
            offset = ((tag >> 5) << 8) | data[pos]
            pos += 1
            _apply_copy(out, offset, length)
        elif kind == _TAG_COPY2:
            if pos + 2 > n:
                raise CompressionError("truncated copy")
            length = (tag >> 2) + 1
            offset = int.from_bytes(data[pos : pos + 2], "little")
            pos += 2
            _apply_copy(out, offset, length)
        elif kind == _TAG_COPY3:
            if pos + 4 > n:
                raise CompressionError("truncated long copy")
            length = data[pos] + _MIN_MATCH
            offset = int.from_bytes(data[pos + 1 : pos + 4], "little")
            pos += 4
            _apply_copy(out, offset, length)
        else:
            raise CompressionError(f"unknown tag kind {kind:#b}")
    if len(out) != expected:
        raise CompressionError(
            f"decompressed size {len(out)} != declared {expected}"
        )
    return bytes(out)


def _apply_copy(out: bytearray, offset: int, length: int) -> None:
    if offset <= 0 or offset > len(out):
        raise CompressionError(f"copy offset {offset} out of range")
    start = len(out) - offset
    if offset >= length:
        out += out[start : start + length]
    else:
        # Overlapping copy: tile the periodic source instead of
        # appending byte by byte.
        tile = bytes(out[start:])
        out += (tile * (length // offset + 1))[:length]
