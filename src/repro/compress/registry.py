"""Codec registry: look up compressors and cascade pipelines by name.

The hybrid storage layers (:mod:`repro.storage.layers`), the column-io
backend and the PDS2 serializer reference codecs by name so that the
codec choice is a configuration knob, mirroring Section 5's "Other
Compression Algorithms" evaluation.

Two kinds of entries share one namespace:

- **atomic codecs** (``zippy``, ``rle``, ``delta``, ...) wrap a single
  compress/decompress function pair, and
- **cascades** (``delta+varint``, ``rle+zippy``, ...) compose already
  registered atomic stages left-to-right on encode and right-to-left
  on decode. Framing is per stage: every stage's encoded form is
  self-delimiting (length prefixes where the payload is padded or
  tabled), so a chain round-trips byte-exactly, and the pipeline
  *identity* travels out-of-band in whichever container header
  recorded the name (PDS2 field meta, column-io column meta, the
  hybrid layer's blob map). :func:`register_cascade` is public —
  the encoding advisor (:mod:`repro.compress.advisor`) scores the
  registered pipelines per column.

Every registry-level call is instrumented (PR 5): each codec — cascade
or atomic — carries a :class:`CompressionStats` record of bytes in/out,
call counts and wall time per direction, and the same quantities are
mirrored into the process-wide :data:`repro.monitoring.counters`
registry under ``compress.<codec>.*``. Cascades are measured as one
unit (their stages' raw functions are composed uninstrumented), so
their stats read like any atomic codec's. Callers that import a codec
function directly (for example the column-io block kernels) bypass the
wrappers by design — the stats describe named-codec usage.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.compress.huffman import huffman_compress, huffman_decompress
from repro.compress.lzo_like import lzo_compress, lzo_decompress
from repro.compress.rle import rle_decode_bytes, rle_encode_bytes
from repro.compress.transforms import (
    bytedict_decode_bytes,
    bytedict_encode_bytes,
    delta_decode_bytes,
    delta_encode_bytes,
    wordpack_decode_bytes,
    wordpack_encode_bytes,
)
from repro.compress.zippy import zippy_compress, zippy_decompress
from repro.errors import CompressionError
from repro.monitoring import counters


@dataclass
class CompressionStats:
    """Cumulative per-codec activity, split by direction.

    ``*_seconds`` is wall time inside the codec function; errors count
    calls that raised (their bytes are *not* added to ``*_bytes_in``).
    """

    name: str
    encode_calls: int = 0
    encode_bytes_in: int = 0
    encode_bytes_out: int = 0
    encode_seconds: float = 0.0
    encode_errors: int = 0
    decode_calls: int = 0
    decode_bytes_in: int = 0
    decode_bytes_out: int = 0
    decode_seconds: float = 0.0
    decode_errors: int = 0

    @property
    def compression_ratio(self) -> float:
        """Uncompressed bytes per compressed byte on the encode path."""
        if not self.encode_bytes_out:
            return 0.0
        return self.encode_bytes_in / self.encode_bytes_out

    @property
    def encode_mb_per_s(self) -> float:
        if self.encode_seconds <= 0.0:
            return 0.0
        return self.encode_bytes_in / self.encode_seconds / (1 << 20)

    @property
    def decode_mb_per_s(self) -> float:
        """Throughput in *decompressed* megabytes per second."""
        if self.decode_seconds <= 0.0:
            return 0.0
        return self.decode_bytes_out / self.decode_seconds / (1 << 20)

    def as_dict(self) -> dict[str, float | int | str]:
        """A JSON-friendly snapshot including the derived rates."""
        return {
            "name": self.name,
            "encode_calls": self.encode_calls,
            "encode_bytes_in": self.encode_bytes_in,
            "encode_bytes_out": self.encode_bytes_out,
            "encode_seconds": self.encode_seconds,
            "encode_errors": self.encode_errors,
            "decode_calls": self.decode_calls,
            "decode_bytes_in": self.decode_bytes_in,
            "decode_bytes_out": self.decode_bytes_out,
            "decode_seconds": self.decode_seconds,
            "decode_errors": self.decode_errors,
            "compression_ratio": self.compression_ratio,
            "encode_mb_per_s": self.encode_mb_per_s,
            "decode_mb_per_s": self.decode_mb_per_s,
        }


@dataclass(frozen=True)
class Codec:
    """A named pair of compress/decompress functions over bytes.

    ``stages`` is empty for atomic codecs; for cascades it names the
    registered stages applied left-to-right on the encode path.
    """

    name: str
    compress: Callable[[bytes], bytes]
    decompress: Callable[[bytes], bytes]
    stats: CompressionStats = field(compare=False, default=None)  # type: ignore[assignment]
    stages: tuple[str, ...] = ()


_STATS: dict[str, CompressionStats] = {}
_CODECS: dict[str, Codec] = {}
#: Uninstrumented (compress, decompress) pairs — cascades compose these
#: so one cascade call is measured as one unit, not once per stage.
_RAW: dict[
    str, tuple[Callable[[bytes], bytes], Callable[[bytes], bytes]]
] = {}


def _instrumented(
    name: str, fn: Callable[[bytes], bytes], direction: str
) -> Callable[[bytes], bytes]:
    """Wrap a codec function with stats and monitoring counters."""
    prefix = f"compress.{name}.{direction}"

    def wrapper(data: bytes) -> bytes:
        stats = _STATS[name]
        start = time.perf_counter()
        try:
            out = fn(data)
        except CompressionError:
            counters.increment(f"{prefix}_errors")
            if direction == "encode":
                stats.encode_errors += 1
            else:
                stats.decode_errors += 1
            raise
        elapsed = time.perf_counter() - start
        if direction == "encode":
            stats.encode_calls += 1
            stats.encode_bytes_in += len(data)
            stats.encode_bytes_out += len(out)
            stats.encode_seconds += elapsed
        else:
            stats.decode_calls += 1
            stats.decode_bytes_in += len(data)
            stats.decode_bytes_out += len(out)
            stats.decode_seconds += elapsed
        counters.increment(f"{prefix}_calls")
        counters.increment(f"{prefix}_bytes_in", len(data))
        counters.increment(f"{prefix}_bytes_out", len(out))
        counters.increment(f"{prefix}_micros", int(elapsed * 1_000_000))
        return out

    wrapper.__name__ = f"{name}_{direction}"
    return wrapper


def _identity(data: bytes) -> bytes:
    return data


def _register(
    name: str,
    compress_fn: Callable[[bytes], bytes],
    decompress_fn: Callable[[bytes], bytes],
    stages: tuple[str, ...] = (),
) -> Codec:
    if name in _CODECS:
        raise CompressionError(f"codec {name!r} is already registered")
    _RAW[name] = (compress_fn, decompress_fn)
    _STATS[name] = CompressionStats(name=name)
    codec = Codec(
        name,
        _instrumented(name, compress_fn, "encode"),
        _instrumented(name, decompress_fn, "decode"),
        _STATS[name],
        stages,
    )
    _CODECS[name] = codec
    return codec


def register_cascade(name: str, stages: Sequence[str]) -> Codec:
    """Register a named pipeline composing already registered stages.

    ``stages`` apply left-to-right on encode; decode applies each
    stage's inverse right-to-left. Stages must be atomic codecs (no
    nesting — a nested cascade is just a longer stage list). The
    cascade gets its own :class:`CompressionStats` entry and behaves
    like any atomic codec from the caller's side.
    """
    if len(stages) < 2:
        raise CompressionError(
            f"cascade {name!r} needs at least 2 stages, got {len(stages)}"
        )
    resolved = []
    for stage in stages:
        raw = _RAW.get(stage)
        if raw is None:
            raise CompressionError(
                f"cascade {name!r}: unknown stage {stage!r}; available: "
                f"{', '.join(available_codecs())}"
            )
        if _CODECS[stage].stages:
            raise CompressionError(
                f"cascade {name!r}: stage {stage!r} is itself a cascade; "
                "list its stages directly"
            )
        resolved.append(raw)

    def cascade_compress(data: bytes) -> bytes:
        for encode_fn, __ in resolved:
            data = encode_fn(data)
        return data

    def cascade_decompress(data: bytes) -> bytes:
        for __, decode_fn in reversed(resolved):
            data = decode_fn(data)
        return data

    return _register(
        name, cascade_compress, cascade_decompress, tuple(stages)
    )


_register("none", _identity, _identity)
_register("zippy", zippy_compress, zippy_decompress)
_register("lzo", lzo_compress, lzo_decompress)
_register("huffman", huffman_compress, huffman_decompress)
_register("rle", rle_encode_bytes, rle_decode_bytes)
_register("delta", delta_encode_bytes, delta_decode_bytes)
_register("varint", wordpack_encode_bytes, wordpack_decode_bytes)
_register("dict", bytedict_encode_bytes, bytedict_decode_bytes)

#: The built-in pipelines the encoding advisor scores. ``zippy+huffman``
#: predates the cascade layer (PR 5 registered it as a hand-rolled
#: composite); expressing it as a cascade keeps its bytes identical.
DEFAULT_CASCADES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("zippy+huffman", ("zippy", "huffman")),
    ("delta+varint", ("delta", "varint")),
    ("delta+rle", ("delta", "rle")),
    ("delta+zippy", ("delta", "zippy")),
    ("rle+zippy", ("rle", "zippy")),
    ("dict+rle+varint", ("dict", "rle", "varint")),
)

for _name, _stages in DEFAULT_CASCADES:
    register_cascade(_name, _stages)


def available_codecs() -> list[str]:
    """Names of all registered codecs (atomic and cascades)."""
    return sorted(_CODECS)


def cascade_stages(name: str) -> tuple[str, ...]:
    """The named codec's stage list (empty for atomic codecs)."""
    return get_codec(name).stages


def get_codec(name: str) -> Codec:
    """Return the codec registered under ``name``.

    Raises :class:`~repro.errors.CompressionError` for unknown names.
    """
    try:
        return _CODECS[name]
    except KeyError:
        raise CompressionError(
            f"unknown codec {name!r}; available: {', '.join(available_codecs())}"
        ) from None


def compress(name: str, data: bytes) -> bytes:
    """Compress ``data`` with the named codec."""
    return get_codec(name).compress(data)


def decompress(name: str, data: bytes) -> bytes:
    """Decompress ``data`` with the named codec."""
    return get_codec(name).decompress(data)


def compression_stats(name: str) -> CompressionStats:
    """The live :class:`CompressionStats` for the named codec."""
    get_codec(name)  # raise the usual error for unknown names
    return _STATS[name]


def all_compression_stats() -> dict[str, CompressionStats]:
    """Name -> live stats for every registered codec, sorted by name."""
    return {name: _STATS[name] for name in available_codecs()}


def reset_compression_stats() -> None:
    """Zero every codec's stats (the monitoring counters are unaffected;
    reset those via :func:`repro.monitoring.counters.reset`)."""
    for name, stats in _STATS.items():
        # Update in place: Codec.stats references stay live.
        stats.__dict__.update(CompressionStats(name=name).__dict__)
