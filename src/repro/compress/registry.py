"""Codec registry: look up compressors by stable name.

The hybrid storage layers (:mod:`repro.storage.layers`) and the
column-io backend reference codecs by name so that the codec choice is
a configuration knob, mirroring Section 5's "Other Compression
Algorithms" evaluation.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.compress.huffman import huffman_compress, huffman_decompress
from repro.compress.lzo_like import lzo_compress, lzo_decompress
from repro.compress.rle import rle_decode_bytes, rle_encode_bytes
from repro.compress.zippy import zippy_compress, zippy_decompress
from repro.errors import CompressionError


@dataclass(frozen=True)
class Codec:
    """A named pair of compress/decompress functions over bytes."""

    name: str
    compress: Callable[[bytes], bytes]
    decompress: Callable[[bytes], bytes]


def _identity(data: bytes) -> bytes:
    return data


def _zippy_huffman_compress(data: bytes) -> bytes:
    return huffman_compress(zippy_compress(data))


def _zippy_huffman_decompress(data: bytes) -> bytes:
    return zippy_decompress(huffman_decompress(data))


_CODECS: dict[str, Codec] = {
    codec.name: codec
    for codec in (
        Codec("none", _identity, _identity),
        Codec("zippy", zippy_compress, zippy_decompress),
        Codec("lzo", lzo_compress, lzo_decompress),
        Codec("huffman", huffman_compress, huffman_decompress),
        Codec("zippy+huffman", _zippy_huffman_compress, _zippy_huffman_decompress),
        Codec("rle", rle_encode_bytes, rle_decode_bytes),
    )
}


def available_codecs() -> list[str]:
    """Names of all registered codecs."""
    return sorted(_CODECS)


def get_codec(name: str) -> Codec:
    """Return the codec registered under ``name``.

    Raises :class:`~repro.errors.CompressionError` for unknown names.
    """
    try:
        return _CODECS[name]
    except KeyError:
        raise CompressionError(
            f"unknown codec {name!r}; available: {', '.join(available_codecs())}"
        ) from None


def compress(name: str, data: bytes) -> bytes:
    """Compress ``data`` with the named codec."""
    return get_codec(name).compress(data)


def decompress(name: str, data: bytes) -> bytes:
    """Decompress ``data`` with the named codec."""
    return get_codec(name).decompress(data)
