"""Compression codecs used by the column-store.

The paper compresses its encodings with Google's Zippy (released as
Snappy) and evaluates ZLIB/LZO variants in Section 5. This package
provides from-scratch, pure-Python equivalents:

- :mod:`repro.compress.zippy` -- an LZ77 byte codec with Snappy-style
  literal/copy tags (the workhorse codec).
- :mod:`repro.compress.lzo_like` -- an LZ77 variant with lazy matching
  and a larger window: ~10% better ratio, cheap decompression
  (the "variant of LZO" chosen for production in Section 5).
- :mod:`repro.compress.huffman` -- canonical Huffman coding; stacked on
  zippy it plays the role of "ZLIB with additional Huffman coding".
- :mod:`repro.compress.rle` -- run-length encodings, including the
  simplified bit-column RLE of Figure 3.

All codecs round-trip arbitrary ``bytes`` and are registered in
:mod:`repro.compress.registry` under stable names. Hot paths are numpy
bulk kernels, byte-identical to the scalar implementations frozen in
:mod:`repro.compress.reference`; registry-level calls accumulate
per-codec :class:`~repro.compress.registry.CompressionStats` mirrored
into :data:`repro.monitoring.counters`.
"""

from repro.compress.huffman import huffman_compress, huffman_decompress
from repro.compress.lzo_like import lzo_compress, lzo_decompress
from repro.compress.registry import (
    CompressionStats,
    all_compression_stats,
    available_codecs,
    compress,
    compression_stats,
    decompress,
    get_codec,
    reset_compression_stats,
)
from repro.compress.rle import (
    bit_rle_counter_count,
    rle_decode_bytes,
    rle_decode_ints,
    rle_encode_bytes,
    rle_encode_ints,
)
from repro.compress.zippy import zippy_compress, zippy_decompress

__all__ = [
    "CompressionStats",
    "all_compression_stats",
    "available_codecs",
    "bit_rle_counter_count",
    "compress",
    "compression_stats",
    "decompress",
    "get_codec",
    "reset_compression_stats",
    "huffman_compress",
    "huffman_decompress",
    "lzo_compress",
    "lzo_decompress",
    "rle_decode_bytes",
    "rle_decode_ints",
    "rle_encode_bytes",
    "rle_encode_ints",
    "zippy_compress",
    "zippy_decompress",
]
