"""Zippy: a from-scratch LZ77 codec with Snappy-style tags.

The paper compresses all of its encodings with Google's internal Zippy
algorithm (open-sourced as Snappy). This module implements the same
design from scratch:

- a varint preamble carrying the uncompressed length,
- *literal* tags (tag low bits ``00``) carrying up to 2**32 raw bytes,
- *copy* tags referencing earlier output, in two shapes:
  ``01`` = length 4..11 with an 11-bit offset, ``10`` = length 1..64
  with a 16-bit offset,
- greedy matching driven by a hash table over 4-byte windows with the
  Snappy "skip ahead on repeated misses" heuristic.

The encoder favours speed over ratio (like Zippy); the LZO-like variant
in :mod:`repro.compress.lzo_like` trades encode time for ~10% better
ratio, matching the Section 5 comparison.

PR 5 vectorized the hot paths while keeping the output byte-identical
to the scalar encoder frozen in :mod:`repro.compress.reference`: the
compressor computes every 4-byte window key in one vectorized pass and
extends matches with doubling slice compares instead of a per-byte
loop; the decompressor copies literals and back-references as slices,
replicating overlapping copies by tiling instead of appending bytes
one at a time. The greedy parse itself stays a Python loop — each step
consumes a data-dependent span — but it no longer touches individual
bytes.
"""

from __future__ import annotations

import numpy as np

from repro.compress.varint import decode_varint, encode_varint
from repro.errors import CompressionError

_MIN_MATCH = 4
_MAX_COPY_LEN = 64
_MAX_OFFSET_1BYTE = 1 << 11  # 01-tag copies: 11-bit offset
_MAX_OFFSET_2BYTE = 1 << 16  # 10-tag copies: 16-bit offset
_TAG_LITERAL = 0b00
_TAG_COPY1 = 0b01
_TAG_COPY2 = 0b10


def _emit_literal(out: bytearray, data: bytes, start: int, end: int) -> None:
    """Append a literal run ``data[start:end]`` with its tag byte(s)."""
    length = end - start
    while length > 0:
        run = min(length, 1 << 32)
        n = run - 1
        if n < 60:
            out.append(_TAG_LITERAL | (n << 2))
        elif n < 1 << 8:
            out.append(_TAG_LITERAL | (60 << 2))
            out.append(n)
        elif n < 1 << 16:
            out.append(_TAG_LITERAL | (61 << 2))
            out += n.to_bytes(2, "little")
        elif n < 1 << 24:
            out.append(_TAG_LITERAL | (62 << 2))
            out += n.to_bytes(3, "little")
        else:
            out.append(_TAG_LITERAL | (63 << 2))
            out += n.to_bytes(4, "little")
        out += data[start : start + run]
        start += run
        length -= run


def _emit_copy(out: bytearray, offset: int, length: int) -> None:
    """Append copy tag(s) for a back-reference of ``length`` at ``offset``."""
    # Long matches are emitted as a sequence of <=64-byte copies.
    while length >= _MAX_COPY_LEN + _MIN_MATCH:
        _emit_one_copy(out, offset, _MAX_COPY_LEN)
        length -= _MAX_COPY_LEN
    if length > _MAX_COPY_LEN:
        # Avoid leaving a tail shorter than a representable copy.
        _emit_one_copy(out, offset, length - _MIN_MATCH)
        length = _MIN_MATCH
    _emit_one_copy(out, offset, length)


def _emit_one_copy(out: bytearray, offset: int, length: int) -> None:
    if 4 <= length <= 11 and offset < _MAX_OFFSET_1BYTE:
        out.append(_TAG_COPY1 | ((length - 4) << 2) | ((offset >> 8) << 5))
        out.append(offset & 0xFF)
    else:
        out.append(_TAG_COPY2 | ((length - 1) << 2))
        out += offset.to_bytes(2, "little")


def window_keys(arr: np.ndarray, count: int) -> np.ndarray:
    """Little-endian 4-byte window key at each of the first ``count``
    positions of a uint8 array — every hash-table key in one pass.
    """
    keys = arr[:count].astype(np.uint32)
    keys |= arr[1 : count + 1].astype(np.uint32) << np.uint32(8)
    keys |= arr[2 : count + 2].astype(np.uint32) << np.uint32(16)
    keys |= arr[3 : count + 3].astype(np.uint32) << np.uint32(24)
    return keys


def match_extension(data: bytes, a: int, b: int, max_extra: int) -> int:
    """Length of the common run of ``data[a:]`` and ``data[b:]``, capped
    at ``max_extra`` — doubling slice compares instead of a per-byte
    walk; the first differing byte falls out of one XOR.
    """
    if max_extra <= 0 or data[a] != data[b]:
        return 0
    length = 0
    span = 8
    while length < max_extra:
        step = min(span, max_extra - length)
        x = data[a + length : a + length + step]
        y = data[b + length : b + length + step]
        if x != y:
            diff = int.from_bytes(x, "little") ^ int.from_bytes(y, "little")
            return length + (((diff & -diff).bit_length() - 1) >> 3)
        length += step
        span <<= 1
    return length


def zippy_compress(data: bytes) -> bytes:
    """Compress ``data``; the result always round-trips via
    :func:`zippy_decompress` and is byte-identical to the frozen
    scalar encoder.
    """
    n = len(data)
    out = bytearray(encode_varint(n))
    if n < _MIN_MATCH:
        if n:
            _emit_literal(out, data, 0, n)
        return bytes(out)

    arr = np.frombuffer(data, dtype=np.uint8)
    limit = n - _MIN_MATCH
    keys = window_keys(arr, limit + 1)
    key_list = keys.tolist()  # scalar dict keys; one bulk conversion
    table: dict[int, int] = {}
    pos = 0
    literal_start = 0
    skip = 32  # Snappy heuristic: 1 extra skip per 32 misses.
    while pos <= limit:  # reprolint: disable=REP010 -- greedy parse advances by whole matches
        key = key_list[pos]
        candidate = table.get(key)
        table[key] = pos
        if candidate is not None and pos - candidate < _MAX_OFFSET_2BYTE:
            # Equal keys mean equal 4-byte windows: the key *is* the
            # bytes. Extend by doubling slice compares (inlined from
            # match_extension — this runs once per emitted copy).
            base_c = candidate + _MIN_MATCH
            base_p = pos + _MIN_MATCH
            extra_cap = n - base_p
            extra = 0
            span = 8
            while extra < extra_cap:
                step = span if span < extra_cap - extra else extra_cap - extra
                x = data[base_c + extra : base_c + extra + step]
                y = data[base_p + extra : base_p + extra + step]
                if x != y:
                    diff = int.from_bytes(x, "little") ^ int.from_bytes(y, "little")
                    extra += ((diff & -diff).bit_length() - 1) >> 3
                    break
                extra += step
                span <<= 1
            match_len = _MIN_MATCH + extra
            if literal_start < pos:
                _emit_literal(out, data, literal_start, pos)
            _emit_copy(out, pos - candidate, match_len)
            # Seed the table at the end of the match so adjacent repeats
            # are found without hashing every interior position.
            end = pos + match_len
            if end - 1 <= limit:
                table[key_list[end - 1]] = end - 1
            pos = end
            literal_start = pos
            skip = 32
        else:
            pos += 1 + (skip >> 5)
            skip += 1
    if literal_start < n:
        _emit_literal(out, data, literal_start, n)
    return bytes(out)


def zippy_decompress(data: bytes) -> bytes:
    """Decompress a buffer produced by :func:`zippy_compress`."""
    expected, pos = decode_varint(data, 0)
    out = bytearray()
    n = len(data)
    while pos < n:  # reprolint: disable=REP010 -- per-tag dispatch; all byte copies are slices
        tag = data[pos]
        pos += 1
        kind = tag & 0b11
        if kind == _TAG_LITERAL:
            marker = tag >> 2
            if marker < 60:
                length = marker + 1
            else:
                extra = marker - 59
                if pos + extra > n:
                    raise CompressionError("truncated literal length")
                length = int.from_bytes(data[pos : pos + extra], "little") + 1
                pos += extra
            if pos + length > n:
                raise CompressionError("truncated literal body")
            out += data[pos : pos + length]
            pos += length
        elif kind == _TAG_COPY1:
            if pos >= n:
                raise CompressionError("truncated 1-byte-offset copy")
            length = ((tag >> 2) & 0b111) + 4
            offset = ((tag >> 5) << 8) | data[pos]
            pos += 1
            _apply_copy(out, offset, length)
        elif kind == _TAG_COPY2:
            if pos + 2 > n:
                raise CompressionError("truncated 2-byte-offset copy")
            length = (tag >> 2) + 1
            offset = int.from_bytes(data[pos : pos + 2], "little")
            pos += 2
            _apply_copy(out, offset, length)
        else:
            raise CompressionError(f"unknown tag kind {kind:#b}")
    if len(out) != expected:
        raise CompressionError(
            f"decompressed size {len(out)} != declared {expected}"
        )
    return bytes(out)


def _apply_copy(out: bytearray, offset: int, length: int) -> None:
    """Copy ``length`` bytes from ``offset`` back in ``out`` (may overlap)."""
    if offset <= 0 or offset > len(out):
        raise CompressionError(f"copy offset {offset} out of range")
    start = len(out) - offset
    if offset >= length:
        out += out[start : start + length]
    else:
        # Overlapping copy: the source period repeats, so tile it out
        # to the requested length instead of appending byte by byte.
        tile = bytes(out[start:])
        out += (tile * (length // offset + 1))[:length]
