"""Zippy: a from-scratch LZ77 codec with Snappy-style tags.

The paper compresses all of its encodings with Google's internal Zippy
algorithm (open-sourced as Snappy). This module implements the same
design from scratch:

- a varint preamble carrying the uncompressed length,
- *literal* tags (tag low bits ``00``) carrying up to 2**32 raw bytes,
- *copy* tags referencing earlier output, in two shapes:
  ``01`` = length 4..11 with an 11-bit offset, ``10`` = length 1..64
  with a 16-bit offset,
- greedy matching driven by a hash table over 4-byte windows with the
  Snappy "skip ahead on repeated misses" heuristic.

The encoder favours speed over ratio (like Zippy); the LZO-like variant
in :mod:`repro.compress.lzo_like` trades encode time for ~10% better
ratio, matching the Section 5 comparison.
"""

from __future__ import annotations

from repro.compress.varint import decode_varint, encode_varint
from repro.errors import CompressionError

_MIN_MATCH = 4
_MAX_COPY_LEN = 64
_MAX_OFFSET_1BYTE = 1 << 11  # 01-tag copies: 11-bit offset
_MAX_OFFSET_2BYTE = 1 << 16  # 10-tag copies: 16-bit offset
_TAG_LITERAL = 0b00
_TAG_COPY1 = 0b01
_TAG_COPY2 = 0b10


def _emit_literal(out: bytearray, data: bytes, start: int, end: int) -> None:
    """Append a literal run ``data[start:end]`` with its tag byte(s)."""
    length = end - start
    while length > 0:
        run = min(length, 1 << 32)
        n = run - 1
        if n < 60:
            out.append(_TAG_LITERAL | (n << 2))
        elif n < 1 << 8:
            out.append(_TAG_LITERAL | (60 << 2))
            out.append(n)
        elif n < 1 << 16:
            out.append(_TAG_LITERAL | (61 << 2))
            out += n.to_bytes(2, "little")
        elif n < 1 << 24:
            out.append(_TAG_LITERAL | (62 << 2))
            out += n.to_bytes(3, "little")
        else:
            out.append(_TAG_LITERAL | (63 << 2))
            out += n.to_bytes(4, "little")
        out += data[start : start + run]
        start += run
        length -= run


def _emit_copy(out: bytearray, offset: int, length: int) -> None:
    """Append copy tag(s) for a back-reference of ``length`` at ``offset``."""
    # Long matches are emitted as a sequence of <=64-byte copies.
    while length >= _MAX_COPY_LEN + _MIN_MATCH:
        _emit_one_copy(out, offset, _MAX_COPY_LEN)
        length -= _MAX_COPY_LEN
    if length > _MAX_COPY_LEN:
        # Avoid leaving a tail shorter than a representable copy.
        _emit_one_copy(out, offset, length - _MIN_MATCH)
        length = _MIN_MATCH
    _emit_one_copy(out, offset, length)


def _emit_one_copy(out: bytearray, offset: int, length: int) -> None:
    if 4 <= length <= 11 and offset < _MAX_OFFSET_1BYTE:
        out.append(_TAG_COPY1 | ((length - 4) << 2) | ((offset >> 8) << 5))
        out.append(offset & 0xFF)
    else:
        out.append(_TAG_COPY2 | ((length - 1) << 2))
        out += offset.to_bytes(2, "little")


def zippy_compress(data: bytes) -> bytes:
    """Compress ``data``; the result always round-trips via
    :func:`zippy_decompress`.
    """
    n = len(data)
    out = bytearray(encode_varint(n))
    if n < _MIN_MATCH:
        if n:
            _emit_literal(out, data, 0, n)
        return bytes(out)

    table: dict[int, int] = {}
    pos = 0
    literal_start = 0
    limit = n - _MIN_MATCH
    skip = 32  # Snappy heuristic: 1 extra skip per 32 misses.
    while pos <= limit:
        key = int.from_bytes(data[pos : pos + _MIN_MATCH], "little")
        candidate = table.get(key)
        table[key] = pos
        if (
            candidate is not None
            and pos - candidate < _MAX_OFFSET_2BYTE
            and data[candidate : candidate + _MIN_MATCH]
            == data[pos : pos + _MIN_MATCH]
        ):
            # Extend the match as far as possible.
            match_len = _MIN_MATCH
            max_len = n - pos
            while (
                match_len < max_len
                and data[candidate + match_len] == data[pos + match_len]
            ):
                match_len += 1
            if literal_start < pos:
                _emit_literal(out, data, literal_start, pos)
            _emit_copy(out, pos - candidate, match_len)
            # Seed the table at the end of the match so adjacent repeats
            # are found without hashing every interior position.
            end = pos + match_len
            if end - 1 <= limit:
                tail_key = int.from_bytes(
                    data[end - 1 : end - 1 + _MIN_MATCH], "little"
                )
                table[tail_key] = end - 1
            pos = end
            literal_start = pos
            skip = 32
        else:
            pos += 1 + (skip >> 5)
            skip += 1
    if literal_start < n:
        _emit_literal(out, data, literal_start, n)
    return bytes(out)


def zippy_decompress(data: bytes) -> bytes:
    """Decompress a buffer produced by :func:`zippy_compress`."""
    expected, pos = decode_varint(data, 0)
    out = bytearray()
    n = len(data)
    while pos < n:
        tag = data[pos]
        pos += 1
        kind = tag & 0b11
        if kind == _TAG_LITERAL:
            marker = tag >> 2
            if marker < 60:
                length = marker + 1
            else:
                extra = marker - 59
                if pos + extra > n:
                    raise CompressionError("truncated literal length")
                length = int.from_bytes(data[pos : pos + extra], "little") + 1
                pos += extra
            if pos + length > n:
                raise CompressionError("truncated literal body")
            out += data[pos : pos + length]
            pos += length
        elif kind == _TAG_COPY1:
            if pos >= n:
                raise CompressionError("truncated 1-byte-offset copy")
            length = ((tag >> 2) & 0b111) + 4
            offset = ((tag >> 5) << 8) | data[pos]
            pos += 1
            _apply_copy(out, offset, length)
        elif kind == _TAG_COPY2:
            if pos + 2 > n:
                raise CompressionError("truncated 2-byte-offset copy")
            length = (tag >> 2) + 1
            offset = int.from_bytes(data[pos : pos + 2], "little")
            pos += 2
            _apply_copy(out, offset, length)
        else:
            raise CompressionError(f"unknown tag kind {kind:#b}")
    if len(out) != expected:
        raise CompressionError(
            f"decompressed size {len(out)} != declared {expected}"
        )
    return bytes(out)


def _apply_copy(out: bytearray, offset: int, length: int) -> None:
    """Copy ``length`` bytes from ``offset`` back in ``out`` (may overlap)."""
    if offset <= 0 or offset > len(out):
        raise CompressionError(f"copy offset {offset} out of range")
    start = len(out) - offset
    if offset >= length:
        out += out[start : start + length]
    else:
        # Overlapping copy: replicate byte-by-byte (RLE-style runs).
        for i in range(length):
            out.append(out[start + i])
