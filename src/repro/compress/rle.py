"""Run-length encodings, including the simplified bit-RLE of Figure 3.

Three related encoders live here:

- byte-level RLE (``rle_encode_bytes``/``rle_decode_bytes``) with an
  escape-free (count, value) pair stream, used as a registered codec;
- integer-sequence RLE (``rle_encode_ints``/``rle_decode_ints``)
  producing explicit (run, value) pairs, used by the reordering
  experiments on element arrays (Figure 2);
- the *simplified* bit-column RLE of Figure 3, which stores only
  counters (one per bit flip); ``bit_rle_counter_count`` computes its
  size, which equals 1 + number of bit flips in the column.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.compress.varint import decode_varint, encode_varint
from repro.errors import CompressionError


def rle_encode_bytes(data: bytes) -> bytes:
    """Encode ``data`` as varint(total) || (varint(run) byte)*."""
    out = bytearray(encode_varint(len(data)))
    i = 0
    n = len(data)
    while i < n:
        byte = data[i]
        j = i + 1
        while j < n and data[j] == byte:
            j += 1
        out += encode_varint(j - i)
        out.append(byte)
        i = j
    return bytes(out)


def rle_decode_bytes(data: bytes) -> bytes:
    """Decode a buffer produced by :func:`rle_encode_bytes`."""
    expected, pos = decode_varint(data, 0)
    out = bytearray()
    n = len(data)
    while pos < n:
        run, pos = decode_varint(data, pos)
        if pos >= n:
            raise CompressionError("truncated RLE pair")
        out += bytes([data[pos]]) * run
        pos += 1
    if len(out) != expected:
        raise CompressionError(f"decoded {len(out)} bytes, expected {expected}")
    return bytes(out)


def rle_encode_ints(values: Sequence[int] | Iterable[int]) -> list[tuple[int, int]]:
    """Encode an integer sequence as (run, value) pairs.

    Example: ``[0, 0, 0, 1, 1, 1] -> [(3, 0), (3, 1)]`` — exactly the
    encoding the paper uses to motivate row reordering (Section 3).
    """
    pairs: list[tuple[int, int]] = []
    run = 0
    current: int | None = None
    for value in values:
        if current is not None and value == current:
            run += 1
        else:
            if current is not None:
                pairs.append((run, current))
            current = value
            run = 1
    if current is not None:
        pairs.append((run, current))
    return pairs


def rle_decode_ints(pairs: Iterable[tuple[int, int]]) -> list[int]:
    """Expand (run, value) pairs back into the full sequence."""
    out: list[int] = []
    for run, value in pairs:
        if run < 0:
            raise CompressionError(f"negative run length {run}")
        out.extend([value] * run)
    return out


def bit_rle_counter_count(bits: Sequence[int]) -> int:
    """Number of counters in the simplified bit-column RLE of Figure 3.

    For a 0/1 column the simplified RLE stores only run counters (the
    values alternate implicitly), so its size is one counter per run:
    1 + number of positions where the bit flips. An empty column costs
    zero counters.
    """
    if not bits:
        return 0
    flips = sum(1 for a, b in zip(bits, bits[1:]) if a != b)
    return 1 + flips
