"""Run-length encodings, including the simplified bit-RLE of Figure 3.

Three related encoders live here:

- byte-level RLE (``rle_encode_bytes``/``rle_decode_bytes``) with an
  escape-free (count, value) pair stream, used as a registered codec;
- integer-sequence RLE (``rle_encode_ints``/``rle_decode_ints``)
  producing explicit (run, value) pairs, used by the reordering
  experiments on element arrays (Figure 2);
- the *simplified* bit-column RLE of Figure 3, which stores only
  counters (one per bit flip); ``bit_rle_counter_count`` computes its
  size, which equals 1 + number of bit flips in the column.

Both byte-level directions are numpy bulk kernels (PR 5), byte-identical
to the scalar loops frozen in :mod:`repro.compress.reference`. Run
detection is a boundary mask — ``np.flatnonzero(a[1:] != a[:-1])``
yields every run edge at once. Decoding a (varint, byte) pair stream is
the harder direction because pair boundaries are sequential; the kernel
computes every position's potential pair length, then selects the true
pair starts with :func:`repro.compress.bulk.mark_chain` in O(log n)
pointer-doubling rounds and expands runs with one ``np.repeat``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.compress.bulk import mark_chain
from repro.compress.varint import (
    _scatter_varints,
    decode_varint,
    encode_varint,
    gather_varints,
    varint_lengths,
)
from repro.errors import CompressionError


def rle_encode_bytes(data: bytes) -> bytes:
    """Encode ``data`` as varint(total) || (varint(run) byte)*."""
    head = encode_varint(len(data))
    n = len(data)
    if n == 0:
        return head
    arr = np.frombuffer(data, dtype=np.uint8)
    edges = np.flatnonzero(arr[1:] != arr[:-1])
    starts = np.empty(edges.size + 1, dtype=np.int64)
    starts[0] = 0
    starts[1:] = edges + 1
    runs = np.diff(starts, append=n)
    run_lengths = varint_lengths(runs)
    cells = run_lengths + 1  # each pair is varint(run) plus the byte
    ends = np.cumsum(cells)
    offsets = ends - cells
    body = np.zeros(int(ends[-1]), dtype=np.uint8)
    _scatter_varints(body, offsets, runs.astype(np.uint64), run_lengths)
    body[offsets + run_lengths] = arr[starts]
    return head + body.tobytes()


def rle_decode_bytes(data: bytes) -> bytes:
    """Decode a buffer produced by :func:`rle_encode_bytes`."""
    expected, pos = decode_varint(data, 0)
    n = len(data)
    if pos >= n:
        if expected:
            raise CompressionError(f"decoded 0 bytes, expected {expected}")
        return b""
    arr = np.frombuffer(data, dtype=np.uint8, offset=pos)
    m = arr.size
    term_mask = arr < 0x80
    terminators = np.flatnonzero(term_mask)
    k = terminators.size
    if k == 0:
        raise CompressionError(f"truncated varint at offset {pos}")
    # A pair start is either offset 0 or two past a varint terminator
    # (the terminator's value byte, then the next pair). Chaining over
    # those k + 1 candidates — successor = first terminator at/after a
    # candidate, plus two — finds the true pair starts in O(log k)
    # pointer-doubling rounds regardless of how runs and values alias
    # continuation bytes.
    candidates = np.empty(k + 1, dtype=np.int64)
    candidates[0] = 0
    candidates[1:] = terminators + 2
    terms_through = np.cumsum(term_mask)  # terminators at offsets <= p
    in_range = candidates < m
    next_term = np.where(
        candidates > 0, terms_through[np.minimum(candidates, m) - 1], 0
    )
    has_term = in_range & (next_term < k)
    successors = np.where(has_term, next_term + 1, k + 1)
    marked = np.flatnonzero(mark_chain(successors, 0, k + 1))
    if bool((candidates[marked] > m).any()):
        raise CompressionError("truncated RLE pair")
    live = marked[candidates[marked] < m]  # candidate == m is a clean end
    if not bool(has_term[live].all()):
        bad = int(candidates[live[int(np.argmin(has_term[live]))]])
        raise CompressionError(f"truncated varint at offset {pos + bad}")
    starts = candidates[live]
    term_positions = terminators[next_term[live]]
    spans = term_positions - starts + 1
    if int(spans.max()) > 10:
        bad = int(starts[int(np.argmax(spans))])
        raise CompressionError(f"varint too long at offset {pos + bad}")
    runs = gather_varints(arr, starts, spans)
    values = arr[term_positions + 1]
    max_run = int(runs.max())
    if max_run and runs.size > (1 << 63) // max_run:
        # Totals near 2**64 could wrap a vectorized sum; fall back to
        # exact Python arithmetic for such adversarial streams.
        total = sum(map(int, runs.tolist()))
    else:
        total = int(runs.sum(dtype=np.uint64))
    if total != expected:
        raise CompressionError(f"decoded {total} bytes, expected {expected}")
    return np.repeat(values, runs.astype(np.int64)).tobytes()


def rle_encode_ints(values: Sequence[int] | Iterable[int]) -> list[tuple[int, int]]:
    """Encode an integer sequence as (run, value) pairs.

    Example: ``[0, 0, 0, 1, 1, 1] -> [(3, 0), (3, 1)]`` — exactly the
    encoding the paper uses to motivate row reordering (Section 3).
    """
    items = list(values)
    if not items:
        return []
    try:
        arr = np.asarray(items, dtype=np.int64)
    except (OverflowError, TypeError, ValueError):
        return _rle_encode_ints_scalar(items)
    edges = np.flatnonzero(arr[1:] != arr[:-1])
    starts = np.empty(edges.size + 1, dtype=np.int64)
    starts[0] = 0
    starts[1:] = edges + 1
    runs = np.diff(starts, append=arr.size)
    return list(zip(runs.tolist(), arr[starts].tolist()))


def _rle_encode_ints_scalar(items: list[int]) -> list[tuple[int, int]]:
    """Fallback for values outside int64 (arbitrary Python ints)."""
    pairs: list[tuple[int, int]] = []
    run = 0
    current: int | None = None
    for value in items:
        if current is not None and value == current:
            run += 1
        else:
            if current is not None:
                pairs.append((run, current))
            current = value
            run = 1
    if current is not None:
        pairs.append((run, current))
    return pairs


def rle_decode_ints(pairs: Iterable[tuple[int, int]]) -> list[int]:
    """Expand (run, value) pairs back into the full sequence."""
    out: list[int] = []
    for run, value in pairs:
        if run < 0:
            raise CompressionError(f"negative run length {run}")
        out.extend([value] * run)
    return out


def bit_rle_counter_count(bits: Sequence[int]) -> int:
    """Number of counters in the simplified bit-column RLE of Figure 3.

    For a 0/1 column the simplified RLE stores only run counters (the
    values alternate implicitly), so its size is one counter per run:
    1 + number of positions where the bit flips. An empty column costs
    zero counters.
    """
    if not bits:
        return 0
    arr = np.asarray(bits)
    return 1 + int(np.count_nonzero(arr[1:] != arr[:-1]))
