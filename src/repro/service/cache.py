"""The session-aware semantic result cache (serving layer, level 0).

The paper's servers keep *result* caches above the chunk/scan layer:
most mouse clicks repeat or refine recent queries, so whole answers —
not just per-chunk partials — are worth remembering. This module
implements that top level of the cache hierarchy:

- **Exact reuse** — entries are keyed on canonical plan fingerprints
  (:func:`repro.core.plan.query_fingerprint`), so queries that differ
  only in conjunct order, IN-list order/duplicates, or GROUP BY alias
  spelling share one entry. Eviction is byte-weighted and delegated to
  the existing :mod:`repro.storage.cache` policies behind this class's
  lock (those policies are deliberately not thread-safe themselves).
- **Drill-down subsumption reuse** — every admitted result also records
  its restriction *footprint*: the chunks its WHERE could not prove
  away (``ScanStats.active_chunks``). A later query whose conjunct set
  is a superset of a recorded one (a UI drill-down refinement) can
  soundly rescan just that footprint: AND-ing more conjuncts onto a
  restriction only shrinks the set of non-SKIP chunks, never grows it.
- **Session awareness** — each session keeps a short lineage of its own
  recent footprints, checked before the global index, because a
  refinement almost always narrows *that session's* previous click.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Hashable

from repro.core.result import QueryResult
from repro.errors import ServiceError
from repro.storage.cache import Cache, make_cache


def estimate_result_weight(result: QueryResult) -> float:
    """Approximate resident bytes of a cached result (for eviction).

    Result tables are small (post-LIMIT), so a per-cell estimate plus a
    fixed object overhead is accurate enough to make eviction pressure
    proportional to real memory use.
    """
    n_rows = result.table.n_rows
    n_cols = max(1, len(result.column_names))
    return 512.0 + 64.0 * n_rows * n_cols


@dataclass(frozen=True)
class CachedResult:
    """One admitted result plus the keys subsumption reuse needs."""

    result: QueryResult
    conjuncts: frozenset[str]
    footprint: tuple[int, ...]


class FootprintIndex:
    """A bounded LRU index from conjunct sets to chunk footprints.

    Separate from the byte-weighted result cache on purpose: a
    footprint is a few dozen ints and stays useful long after its
    (much heavier) result was evicted — a refinement can still prune
    its scan even when the parent's rows are gone.
    """

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ServiceError("footprint index needs max_entries >= 1")
        self._max_entries = max_entries
        self._entries: OrderedDict[frozenset[str], tuple[int, ...]] = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def record(
        self, conjuncts: frozenset[str], footprint: tuple[int, ...]
    ) -> None:
        existing = self._entries.pop(conjuncts, None)
        if existing is not None and len(existing) < len(footprint):
            # Keep the tighter footprint (a pruned re-execution can
            # only have recorded a subset of the original).
            footprint = existing
        self._entries[conjuncts] = footprint
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)

    def lookup(
        self, conjuncts: frozenset[str]
    ) -> tuple[int, ...] | None:
        """The smallest recorded footprint that soundly covers ``conjuncts``.

        A recorded entry covers the probe when its conjunct set is a
        subset of the probe's — the probe's WHERE is the entry's WHERE
        AND extra conjuncts, so the probe's active chunks are contained
        in the entry's footprint.
        """
        exact = self._entries.get(conjuncts)
        if exact is not None:
            self._entries.move_to_end(conjuncts)
            return exact
        best: tuple[int, ...] | None = None
        for key, footprint in self._entries.items():
            if key <= conjuncts and (
                best is None or len(footprint) < len(best)
            ):
                best = footprint
        return best


class SemanticResultCache:
    """Thread-safe exact + subsumption reuse above the chunk cache."""

    def __init__(
        self,
        capacity_bytes: float,
        policy: str = "lru",
        footprint_entries: int = 1024,
        session_lineage: int = 8,
        max_sessions: int = 1024,
    ) -> None:
        if session_lineage < 1:
            raise ServiceError("session_lineage must be >= 1")
        if max_sessions < 1:
            raise ServiceError("max_sessions must be >= 1")
        self._lock = threading.Lock()
        self._results: Cache = make_cache(policy, capacity_bytes)
        self._footprints = FootprintIndex(footprint_entries)
        self._session_lineage = session_lineage
        self._max_sessions = max_sessions
        self._sessions: OrderedDict[Hashable, deque] = OrderedDict()
        self.hits = 0
        self.subsumption_probes = 0
        self.misses = 0

    # -- internal helpers (callers hold the lock) ------------------------------
    def _lineage(self, session: Hashable) -> deque:
        lineage = self._sessions.pop(session, None)
        if lineage is None:
            lineage = deque(maxlen=self._session_lineage)
        self._sessions[session] = lineage
        while len(self._sessions) > self._max_sessions:
            self._sessions.popitem(last=False)
        return lineage

    def _session_footprint(
        self, session: Hashable | None, conjuncts: frozenset[str]
    ) -> tuple[int, ...] | None:
        if session is None:
            return None
        lineage = self._sessions.get(session)
        if lineage is None:
            return None
        best: tuple[int, ...] | None = None
        for key, footprint in reversed(lineage):
            if key <= conjuncts and (
                best is None or len(footprint) < len(best)
            ):
                best = footprint
        return best

    # -- public API -------------------------------------------------------------
    def lookup(
        self,
        fingerprint: str,
        conjuncts: frozenset[str],
        session: Hashable | None = None,
    ) -> tuple[QueryResult | None, tuple[int, ...] | None]:
        """Probe for an exact hit, else a subsumption footprint.

        Returns ``(result, None)`` on an exact canonical-plan hit and
        ``(None, footprint)`` when only a covering footprint is known
        (``footprint`` is ``None`` on a cold miss). Session lineage is
        consulted before the global footprint index.
        """
        with self._lock:
            entry = self._results.get(fingerprint)
            if entry is not None:
                self.hits += 1
                return entry.result, None
            footprint = self._session_footprint(session, conjuncts)
            if footprint is None:
                footprint = self._footprints.lookup(conjuncts)
            if footprint is not None:
                self.subsumption_probes += 1
            else:
                self.misses += 1
            return None, footprint

    def admit(
        self,
        fingerprint: str,
        conjuncts: frozenset[str],
        result: QueryResult,
        session: Hashable | None = None,
    ) -> None:
        """Cache a served result and record its footprint.

        Incomplete (degraded) results are never admitted: their rows
        undercount, and their footprint may be missing unserved chunks.
        """
        if not result.complete:
            return
        footprint = tuple(result.stats.active_chunks)
        entry = CachedResult(result, conjuncts, footprint)
        with self._lock:
            self._results.put(
                fingerprint, entry, weight=estimate_result_weight(result)
            )
            self._footprints.record(conjuncts, footprint)
            if session is not None:
                self._lineage(session).append((conjuncts, footprint))

    def stats(self) -> dict[str, float]:
        """A consistent snapshot of cache activity and occupancy."""
        with self._lock:
            probes = self.hits + self.subsumption_probes + self.misses
            return {
                "hits": float(self.hits),
                "subsumption_probes": float(self.subsumption_probes),
                "misses": float(self.misses),
                "hit_fraction": self.hits / probes if probes else 0.0,
                "subsumption_fraction": (
                    self.subsumption_probes / probes if probes else 0.0
                ),
                "entries": float(len(self._results)),
                "used_bytes": float(self._results.used),
                "evictions": float(self._results.stats.evictions),
                "footprints": float(len(self._footprints)),
            }
