"""`QueryService` — the long-lived, multi-tenant serving layer.

Turns the one-shot engine into the paper's production shape: many
concurrent drill-down sessions submitting query streams against one
shared store, answered through a cache hierarchy (semantic result cache
-> chunk-result cache -> column scans) with admission control and
per-tenant fairness in front of the shared execution strategy.

Request lifecycle::

    submit(tenant, sql) -> admission (bounded per-tenant queue)
        -> smooth-WRR dispatch (FairScheduler, in-flight caps)
        -> semantic cache probe (exact hit | subsumption footprint)
        -> engine execution (pruned to the footprint when subsumed)
        -> admit result + resolve the caller's QueryTicket

Load shedding is explicit: an over-admitted query resolves to a
:class:`QueryRejected` outcome, never an exception and never a silent
drop — the bench layer accounts every submission exactly.

Serving is backend-agnostic: a local :class:`DataStore` (where
subsumption pruning applies) or a :class:`SimulatedCluster` (exact
reuse only — merged shard-local chunk indices are not a sound pruning
footprint, and the cluster is gated to one query at a time).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Hashable

from repro.core.datastore import DataStore
from repro.core.plan import query_fingerprint, where_conjuncts
from repro.core.result import QueryResult
from repro.errors import ReproError, ServiceError
from repro.monitoring import QueryLogCollector, counters
from repro.service.cache import SemanticResultCache
from repro.service.scheduler import FairScheduler
from repro.sql.ast_nodes import Query
from repro.sql.parser import parse_query


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for one :class:`QueryService` instance."""

    workers: int = 2
    queue_depth: int = 32
    max_inflight_per_tenant: int = 2
    default_weight: int = 1
    cache_capacity_bytes: float = 64 * 1024 * 1024
    cache_policy: str = "lru"
    enable_result_cache: bool = True
    enable_subsumption: bool = True
    footprint_entries: int = 1024
    session_lineage: int = 8
    max_sessions: int = 1024
    dispatch_poll_seconds: float = 0.05
    shutdown_timeout_seconds: float = 10.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServiceError("workers must be >= 1")
        if self.queue_depth < 1:
            raise ServiceError("queue_depth must be >= 1")
        if self.max_inflight_per_tenant < 1:
            raise ServiceError("max_inflight_per_tenant must be >= 1")
        if self.default_weight < 1:
            raise ServiceError("default_weight must be >= 1")
        if self.cache_capacity_bytes <= 0:
            raise ServiceError("cache_capacity_bytes must be positive")
        if self.dispatch_poll_seconds <= 0:
            raise ServiceError("dispatch_poll_seconds must be positive")
        if self.shutdown_timeout_seconds <= 0:
            raise ServiceError("shutdown_timeout_seconds must be positive")


@dataclass
class QueryOutcome:
    """What happened to one submitted query (common envelope)."""

    tenant: str
    session: Hashable | None
    sql: str
    queue_seconds: float
    total_seconds: float


@dataclass
class QueryCompleted(QueryOutcome):
    """The query was served; ``cache_path`` says how."""

    result: QueryResult
    cache_path: str  # "miss" | "hit" | "subsumption"


@dataclass
class QueryRejected(QueryOutcome):
    """Admission control shed the query (queue full / shutdown)."""

    reason: str


@dataclass
class QueryFailed(QueryOutcome):
    """The engine raised while serving (bad SQL binding, etc.)."""

    error: str


@dataclass
class _Request:
    tenant: str
    session: Hashable | None
    sql: str
    query: Query
    ticket: "QueryTicket"
    submitted: float


class QueryTicket:
    """The caller's handle for one submitted query."""

    def __init__(self) -> None:
        self._done = threading.Event()
        self._outcome: QueryOutcome | None = None

    def _resolve(self, outcome: QueryOutcome) -> None:
        self._outcome = outcome
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def outcome(self, timeout: float = 60.0) -> QueryOutcome:
        """Block (bounded) until the query resolves."""
        if not self._done.wait(timeout):
            raise ServiceError(
                f"query did not resolve within {timeout:.1f}s"
            )
        assert self._outcome is not None
        return self._outcome


# -- live-service registry (leak detection for the test suite) -----------------

_live_lock = threading.Lock()
_live_services: dict[int, "QueryService"] = {}


def live_services() -> tuple["QueryService", ...]:
    """Every constructed-but-not-closed service, oldest first."""
    with _live_lock:
        return tuple(
            service for __, service in sorted(_live_services.items())
        )


class QueryService:
    """A long-lived multi-tenant query server over one shared backend."""

    def __init__(
        self,
        backend: Any,
        config: ServiceConfig | None = None,
        weights: dict[str, int] | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.backend = backend
        self._is_store = isinstance(backend, DataStore)
        self._scheduler = FairScheduler(
            queue_depth=self.config.queue_depth,
            max_inflight_per_tenant=self.config.max_inflight_per_tenant,
            default_weight=self.config.default_weight,
        )
        for tenant, weight in sorted((weights or {}).items()):
            self._scheduler.set_weight(tenant, weight)
        self._cache: SemanticResultCache | None = None
        if self.config.enable_result_cache:
            self._cache = SemanticResultCache(
                capacity_bytes=self.config.cache_capacity_bytes,
                policy=self.config.cache_policy,
                footprint_entries=self.config.footprint_entries,
                session_lineage=self.config.session_lineage,
                max_sessions=self.config.max_sessions,
            )
        # Subsumption pruning is only sound against a local DataStore
        # (cluster stats merge shard-local chunk indices).
        self._subsumption = (
            self.config.enable_subsumption
            and self.config.enable_result_cache
            and self._is_store
        )
        # Process pools supervise one wave at a time, and the simulated
        # cluster mutates machine state per query — both get a width-1
        # gate. Thread/serial strategies accept concurrent callers.
        if self._is_store and not backend.executor.wants_picklable_tasks:
            gate_width = self.config.workers
        else:
            gate_width = 1
        self._engine_gate = threading.Semaphore(gate_width)
        self._collector = QueryLogCollector()
        self._collector_lock = threading.Lock()
        self._counts = {
            "submitted": 0,
            "completed": 0,
            "rejected": 0,
            "failed": 0,
            "degraded": 0,
        }
        self._counts_lock = threading.Lock()
        self._stop = threading.Event()
        self._closed = False
        self._close_lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-serve-{index}",
                daemon=True,
            )
            for index in range(self.config.workers)
        ]
        with _live_lock:
            _live_services[id(self)] = self
        for thread in self._threads:
            thread.start()

    # -- submission ---------------------------------------------------------------
    def submit(
        self, tenant: str, sql: Query | str, session: Hashable | None = None
    ) -> QueryTicket:
        """Admit one query; the ticket resolves when it is served or shed."""
        if self._closed:
            raise ServiceError("submit() on a closed QueryService")
        query = parse_query(sql) if isinstance(sql, str) else sql
        rendered = sql if isinstance(sql, str) else sql.sql()
        ticket = QueryTicket()
        request = _Request(
            tenant=tenant,
            session=session,
            sql=rendered,
            query=query,
            ticket=ticket,
            submitted=time.perf_counter(),
        )
        self._count("submitted")
        counters.increment("service.submitted")
        if not self._scheduler.offer(tenant, request):
            self._reject(request, "tenant queue full")
        return ticket

    def run(
        self,
        tenant: str,
        sql: Query | str,
        session: Hashable | None = None,
        timeout: float = 60.0,
    ) -> QueryOutcome:
        """Submit and wait — the closed-loop client call."""
        return self.submit(tenant, sql, session).outcome(timeout)

    # -- dispatch -----------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            picked = self._scheduler.take(self.config.dispatch_poll_seconds)
            if picked is None:
                continue
            tenant, request = picked
            try:
                self._serve(request)
            finally:
                self._scheduler.complete(tenant)

    def _serve(self, request: _Request) -> None:
        started = time.perf_counter()
        queue_seconds = started - request.submitted
        fingerprint = query_fingerprint(request.query)
        conjuncts = frozenset(where_conjuncts(request.query))
        candidates: tuple[int, ...] | None = None
        cache_path = "miss"
        result: QueryResult | None = None
        if self._cache is not None:
            cached, footprint = self._cache.lookup(
                fingerprint, conjuncts, request.session
            )
            if cached is not None:
                cache_path = "hit"
                result = cached
            elif footprint is not None and self._subsumption:
                candidates = footprint
                cache_path = "subsumption"
        if result is None:
            try:
                result = self._execute(request.query, candidates)
            except ReproError as error:
                self._count("failed")
                counters.increment("service.failed")
                request.ticket._resolve(
                    QueryFailed(
                        tenant=request.tenant,
                        session=request.session,
                        sql=request.sql,
                        queue_seconds=queue_seconds,
                        total_seconds=time.perf_counter() - request.submitted,
                        error=str(error),
                    )
                )
                return
            if self._cache is not None:
                self._cache.admit(
                    fingerprint, conjuncts, result, request.session
                )
        counters.increment(f"service.cache.{cache_path}")
        if not result.complete:
            self._count("degraded")
            counters.increment("service.degraded")
        self._count("completed")
        counters.increment("service.completed")
        total_seconds = time.perf_counter() - request.submitted
        with self._collector_lock:
            self._collector.record(result, latency_seconds=total_seconds)
        request.ticket._resolve(
            QueryCompleted(
                tenant=request.tenant,
                session=request.session,
                sql=request.sql,
                queue_seconds=queue_seconds,
                total_seconds=total_seconds,
                result=result,
                cache_path=cache_path,
            )
        )

    def _execute(
        self, query: Query, candidates: tuple[int, ...] | None
    ) -> QueryResult:
        with self._engine_gate:
            if self._is_store:
                return self.backend.execute(
                    query, candidate_chunks=candidates
                )
            result, __ = self.backend.execute(query)
            return result

    # -- accounting ---------------------------------------------------------------
    def _count(self, key: str) -> None:
        with self._counts_lock:
            self._counts[key] += 1

    def _reject(self, request: _Request, reason: str) -> None:
        self._count("rejected")
        counters.increment("service.rejected")
        request.ticket._resolve(
            QueryRejected(
                tenant=request.tenant,
                session=request.session,
                sql=request.sql,
                queue_seconds=time.perf_counter() - request.submitted,
                total_seconds=time.perf_counter() - request.submitted,
                reason=reason,
            )
        )

    def stats(self) -> dict[str, Any]:
        """A point-in-time operational snapshot (bench/CLI reporting)."""
        with self._counts_lock:
            counts = dict(self._counts)
        with self._collector_lock:
            all_time = self._collector.latency_percentiles()
            windowed = self._collector.windowed_percentiles()
        snapshot: dict[str, Any] = {
            "counts": counts,
            "latency": all_time,
            "windowed_latency": windowed,
            "queue_depths": self._scheduler.queue_depths(),
            "backlog": self._scheduler.backlog(),
        }
        if self._cache is not None:
            snapshot["cache"] = self._cache.stats()
        return snapshot

    # -- shutdown -----------------------------------------------------------------
    def worker_threads(self) -> tuple[threading.Thread, ...]:
        """The dispatch threads (leak assertions in the test suite)."""
        return tuple(self._threads)

    def close(self, timeout: float | None = None) -> None:
        """Stop serving: reject the backlog, join every worker (bounded)."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        self._scheduler.close()
        deadline = time.perf_counter() + (
            self.config.shutdown_timeout_seconds if timeout is None else timeout
        )
        for thread in self._threads:
            remaining = deadline - time.perf_counter()
            thread.join(max(0.0, remaining))
        alive = [t.name for t in self._threads if t.is_alive()]
        for __, request in self._scheduler.drain():
            self._reject(request, "service shutdown")
        with _live_lock:
            _live_services.pop(id(self), None)
        if alive:
            raise ServiceError(
                f"dispatch thread(s) failed to stop: {alive}"
            )

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
