"""The multi-tenant query serving layer (``repro serve``).

- :mod:`repro.service.service` -- :class:`QueryService`, the long-lived
  server: admission, dispatch, cache probes, explicit outcomes.
- :mod:`repro.service.cache` -- the session-aware semantic result cache
  with drill-down subsumption reuse above the chunk cache.
- :mod:`repro.service.scheduler` -- bounded per-tenant queues and
  smooth weighted round-robin dispatch with in-flight caps.
"""

from repro.service.cache import (
    FootprintIndex,
    SemanticResultCache,
    estimate_result_weight,
)
from repro.service.scheduler import FairScheduler
from repro.service.service import (
    QueryCompleted,
    QueryFailed,
    QueryOutcome,
    QueryRejected,
    QueryService,
    QueryTicket,
    ServiceConfig,
    live_services,
)

__all__ = [
    "FairScheduler",
    "FootprintIndex",
    "QueryCompleted",
    "QueryFailed",
    "QueryOutcome",
    "QueryRejected",
    "QueryService",
    "QueryTicket",
    "SemanticResultCache",
    "ServiceConfig",
    "estimate_result_weight",
    "live_services",
]
