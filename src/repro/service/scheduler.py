"""Admission control and per-tenant fair scheduling.

One shared engine serves every tenant, so the queue in front of it is
where multi-tenant isolation is won or lost. Three mechanisms, matching
the tentpole's contract:

- **Bounded per-tenant queues** — each tenant owns a small FIFO with an
  explicit depth; a full queue sheds the offer immediately (the caller
  turns that into an explicit ``QueryRejected`` outcome). One tenant
  flooding the service can only ever occupy its own queue.
- **Smooth weighted round-robin dispatch** — workers pick the next
  request with the classic smooth-WRR rule (each eligible tenant's
  credit grows by its weight; the max-credit tenant is picked and pays
  back the total), which interleaves tenants proportionally to weight
  with bounded deviation instead of bursting one tenant's backlog.
- **Per-tenant in-flight caps** — a tenant already occupying its
  allowed number of engine slots is ineligible until one completes, so
  a hot looper cannot monopolize the workers between picks.

All waits are bounded (condition waits with timeouts); the scheduler
never sleeps and never blocks forever.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Iterator

from repro.errors import ServiceError


class _TenantState:
    """One tenant's queue and scheduling credit (guarded by the lock)."""

    __slots__ = ("name", "weight", "queue", "inflight", "credit")

    def __init__(self, name: str, weight: int, queue_depth: int) -> None:
        self.name = name
        self.weight = weight
        # maxlen is a hard backstop; offer() rejects explicitly before
        # ever reaching it, so nothing is silently dropped.
        self.queue: deque = deque(maxlen=queue_depth)
        self.inflight = 0
        self.credit = 0


class FairScheduler:
    """Bounded queues + smooth weighted round-robin + in-flight caps."""

    def __init__(
        self,
        queue_depth: int = 32,
        max_inflight_per_tenant: int = 2,
        default_weight: int = 1,
    ) -> None:
        if queue_depth < 1:
            raise ServiceError("queue_depth must be >= 1")
        if max_inflight_per_tenant < 1:
            raise ServiceError("max_inflight_per_tenant must be >= 1")
        if default_weight < 1:
            raise ServiceError("default_weight must be >= 1")
        self._queue_depth = queue_depth
        self._max_inflight = max_inflight_per_tenant
        self._default_weight = default_weight
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._tenants: dict[str, _TenantState] = {}
        self._closed = False

    # -- tenant management (lock held in callers below) ------------------------
    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState(
                tenant, self._default_weight, self._queue_depth
            )
            self._tenants[tenant] = state
        return state

    def set_weight(self, tenant: str, weight: int) -> None:
        """Give ``tenant`` a share proportional to ``weight`` (>= 1)."""
        if weight < 1:
            raise ServiceError("tenant weight must be >= 1")
        with self._lock:
            self._state(tenant).weight = weight

    # -- admission --------------------------------------------------------------
    def offer(self, tenant: str, item: Any) -> bool:
        """Enqueue ``item`` for ``tenant``; False = shed (queue full)."""
        with self._ready:
            if self._closed:
                return False
            state = self._state(tenant)
            if len(state.queue) >= self._queue_depth:
                return False
            state.queue.append(item)
            self._ready.notify()
            return True

    # -- dispatch ----------------------------------------------------------------
    def _eligible(self) -> list[_TenantState]:
        return [
            state
            for state in self._tenants.values()
            if state.queue and state.inflight < self._max_inflight
        ]

    def _pick(self) -> tuple[str, Any] | None:
        eligible = self._eligible()
        if not eligible:
            return None
        # Smooth WRR: credit every eligible tenant, pick the richest
        # (name-tie-broken for determinism), who pays back the round.
        total = sum(state.weight for state in eligible)
        for state in eligible:
            state.credit += state.weight
        best = max(eligible, key=lambda state: (state.credit, state.name))
        best.credit -= total
        best.inflight += 1
        return best.name, best.queue.popleft()

    def take(self, timeout: float) -> tuple[str, Any] | None:
        """The next ``(tenant, item)`` to serve, or None after ``timeout``.

        The wait is bounded: workers poll this in their loop, checking
        their own stop signal between calls.
        """
        with self._ready:
            picked = self._pick()
            if picked is not None:
                return picked
            if self._closed:
                return None
            self._ready.wait(timeout)
            return self._pick()

    def complete(self, tenant: str) -> None:
        """Release ``tenant``'s in-flight slot (call once per take)."""
        with self._ready:
            state = self._tenants.get(tenant)
            if state is None or state.inflight == 0:
                raise ServiceError(
                    f"complete() without a matching take() for {tenant!r}"
                )
            state.inflight -= 1
            self._ready.notify()

    # -- observability / shutdown ------------------------------------------------
    def queue_depths(self) -> dict[str, int]:
        with self._lock:
            return {
                name: len(state.queue)
                for name, state in sorted(self._tenants.items())
            }

    def backlog(self) -> int:
        with self._lock:
            return sum(len(state.queue) for state in self._tenants.values())

    def close(self) -> None:
        """Stop admitting; wake every waiting worker."""
        with self._ready:
            self._closed = True
            self._ready.notify_all()

    def drain(self) -> Iterator[tuple[str, Any]]:
        """Remove and yield every queued item (after close)."""
        with self._lock:
            leftovers: list[tuple[str, Any]] = []
            for name, state in sorted(self._tenants.items()):
                while state.queue:
                    leftovers.append((name, state.queue.popleft()))
        return iter(leftovers)
