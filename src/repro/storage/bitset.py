"""A compact bit set over a ``bytearray``.

Used by the two-distinct-value element encoding (Section 3 "OptCols":
"in case there are two distinct values a bit-set suffices; resulting in
ceil(n/8) bytes") and by the Bloom filters of Section 5.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import StorageError

# Lookup table used to expand packed bytes back to bits quickly.
_BIT_UNPACK = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1)


class BitSet:
    """Fixed-size sequence of bits stored 8 per byte (MSB first)."""

    __slots__ = ("_buf", "_size")

    def __init__(self, size: int) -> None:
        if size < 0:
            raise StorageError(f"bitset size must be >= 0, got {size}")
        self._size = size
        self._buf = bytearray((size + 7) // 8)

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitSet":
        """Build from an iterable of 0/1 values."""
        values = list(bits)
        bitset = cls(len(values))
        for index, bit in enumerate(values):
            if bit:
                bitset.set(index)
        return bitset

    @classmethod
    def from_numpy(cls, bits: np.ndarray) -> "BitSet":
        """Build from a 0/1 numpy array using vectorized packing."""
        bitset = cls(int(bits.size))
        packed = np.packbits(bits.astype(np.uint8))
        bitset._buf = bytearray(packed.tobytes())
        return bitset

    def __len__(self) -> int:
        return self._size

    def _check(self, index: int) -> None:
        if not 0 <= index < self._size:
            raise StorageError(f"bit index {index} out of range [0, {self._size})")

    def get(self, index: int) -> int:
        """Return the bit at ``index`` as 0 or 1."""
        self._check(index)
        return (self._buf[index >> 3] >> (7 - (index & 7))) & 1

    def set(self, index: int) -> None:
        """Set the bit at ``index`` to 1."""
        self._check(index)
        self._buf[index >> 3] |= 1 << (7 - (index & 7))

    def clear(self, index: int) -> None:
        """Set the bit at ``index`` to 0."""
        self._check(index)
        self._buf[index >> 3] &= ~(1 << (7 - (index & 7))) & 0xFF

    def __iter__(self) -> Iterator[int]:
        for index in range(self._size):
            yield self.get(index)

    def to_numpy(self) -> np.ndarray:
        """All bits as a uint8 numpy array of 0/1."""
        if not self._size:
            return np.zeros(0, dtype=np.uint8)
        unpacked = _BIT_UNPACK[np.frombuffer(bytes(self._buf), dtype=np.uint8)]
        return unpacked.reshape(-1)[: self._size].copy()

    def count(self) -> int:
        """Number of set bits."""
        return int(self.to_numpy().sum()) if self._size else 0

    def size_bytes(self) -> int:
        """Encoded payload size: ceil(n/8) bytes."""
        return len(self._buf)

    def to_bytes(self) -> bytes:
        """The packed payload."""
        return bytes(self._buf)

    @classmethod
    def from_bytes(cls, data: bytes, size: int) -> "BitSet":
        """Rebuild from a packed payload and its bit count."""
        if len(data) != (size + 7) // 8:
            raise StorageError(
                f"payload of {len(data)} bytes cannot hold {size} bits"
            )
        bitset = cls(size)
        bitset._buf = bytearray(data)
        return bitset
