"""Two-layer hybrid store: uncompressed + compressed in memory.

Section 3 ("Generic Compression Algorithm") ends with the production
design: "a hybrid approach with two 'layers' of data-structures held
in-memory: uncompressed and compressed. Moving items between these
layers or finally evicting them entirely can be done, e.g., with the
well-known LRU cache eviction heuristic."

:class:`HybridLayerStore` keeps named byte blobs. Reads hit the hot
(uncompressed) layer first; on a hot miss the cold (compressed) layer is
decompressed and the blob promoted. When the hot layer overflows, its
least-recently-used blobs are *demoted* (compressed into the cold
layer); when the cold layer overflows, blobs are dropped entirely and
the next access goes to the ``loader`` callback (simulating a disk
read). All movements are counted so experiments can report hot / cold /
disk hit splits — the quantity behind Figure 5 — and mirrored into
:data:`repro.monitoring.counters` under ``storage.layers.*``. A blob
that alone overflows a layer is never admitted (it would stay resident
forever, since eviction only considers *other* entries) — it goes
straight to that layer's eviction path and the rejection is counted.

The demotion codec is configurable; ``codec="auto"`` defers to the
encoding advisor per *blob class* (the prefix before the first ``:``
in the key, e.g. ``chunk:country:3`` -> ``chunk``): the first blob of
a class to be demoted is sampled and scored, and every later blob of
that class reuses the winner, so keys that name the same kind of
payload compress the same way. :meth:`HybridLayerStore.codec_stats`
reports *this store's* codec traffic (per-instance stats — two stores
sharing a codec never alias each other's numbers).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass

from repro.compress.advisor import AdvisorConfig, choose_codec, sample_window
from repro.compress.registry import CompressionStats, get_codec
from repro.errors import StorageError
from repro.monitoring import counters


@dataclass
class LayerStats:
    """Where reads were served from, and byte traffic between layers.

    ``bytes_compressed`` / ``bytes_compressed_out`` are the demotion
    path's input and output totals, so :attr:`compression_ratio`
    reports what the cold layer actually achieves on this workload.
    """

    hot_hits: int = 0
    cold_hits: int = 0
    loads: int = 0
    demotions: int = 0
    drops: int = 0
    oversized_rejections: int = 0
    bytes_decompressed: int = 0
    bytes_loaded: int = 0
    bytes_compressed: int = 0
    bytes_compressed_out: int = 0

    @property
    def accesses(self) -> int:
        return self.hot_hits + self.cold_hits + self.loads

    @property
    def in_memory_rate(self) -> float:
        """Fraction of reads served without the loader (i.e. from RAM)."""
        if not self.accesses:
            return 0.0
        return (self.hot_hits + self.cold_hits) / self.accesses

    @property
    def compression_ratio(self) -> float:
        """Raw bytes per compressed byte across all demotions."""
        if not self.bytes_compressed_out:
            return 0.0
        return self.bytes_compressed / self.bytes_compressed_out


class _LruLayer:
    """A weighted LRU dict that hands overflow victims to a callback."""

    def __init__(
        self,
        capacity: float,
        on_evict: Callable[[str, bytes], None],
        on_reject: Callable[[str], None] | None = None,
    ):
        if capacity <= 0:
            raise StorageError(f"layer capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self.used = 0.0
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._on_evict = on_evict
        self._on_reject = on_reject

    def get(self, key: str) -> bytes | None:
        data = self._entries.get(key)
        if data is not None:
            self._entries.move_to_end(key)
        return data

    def put(self, key: str, data: bytes) -> None:
        if key in self._entries:
            self.used -= len(self._entries.pop(key))
        if len(data) > self.capacity:
            # An entry that alone overflows the budget must never be
            # admitted: eviction would keep it as the last resident
            # entry and the layer would stay permanently over budget.
            # It takes the eviction path immediately instead.
            if self._on_reject is not None:
                self._on_reject(key)
            self._on_evict(key, data)
            return
        self._entries[key] = data
        self.used += len(data)
        while self.used > self.capacity and self._entries:
            victim_key, victim = self._entries.popitem(last=False)
            self.used -= len(victim)
            self._on_evict(victim_key, victim)

    def remove(self, key: str) -> None:
        data = self._entries.pop(key, None)
        if data is not None:
            self.used -= len(data)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class HybridLayerStore:
    """Hot (raw) + cold (compressed) in-memory layers over byte blobs."""

    def __init__(
        self,
        hot_capacity_bytes: float,
        cold_capacity_bytes: float,
        codec: str = "zippy",
        loader: Callable[[str], bytes] | None = None,
        advisor_config: AdvisorConfig | None = None,
    ) -> None:
        if codec != "auto":
            get_codec(codec)  # fail fast on unknown names
        self._codec_name = codec
        self._advisor_config = (
            advisor_config if advisor_config is not None else AdvisorConfig()
        )
        # Blob class -> advisor-chosen codec name (auto mode only), and
        # cold key -> the codec its resident bytes were compressed with.
        self._class_codecs: dict[str, str] = {}
        self._blob_codecs: dict[str, str] = {}
        # Per-instance codec accounting (satellite fix, PR 9): the
        # registry's process-wide stats keep aggregating, but these
        # cover exactly this store's demote/promote traffic.
        self._local_stats: dict[str, CompressionStats] = {}
        self._hot = _LruLayer(hot_capacity_bytes, self._demote, self._reject)
        self._cold = _LruLayer(cold_capacity_bytes, self._drop, self._reject)
        self._loader = loader
        self.stats = LayerStats()

    def _reject(self, key: str) -> None:
        self.stats.oversized_rejections += 1
        counters.increment("storage.layers.oversized_rejections")

    @staticmethod
    def _blob_class(key: str) -> str:
        """The key prefix before the first ``:`` (the whole key if none)."""
        return key.split(":", 1)[0]

    def _codec_for(self, key: str, data: bytes) -> str:
        """The demotion codec for ``key`` (advisor-chosen in auto mode)."""
        if self._codec_name != "auto":
            return self._codec_name
        blob_class = self._blob_class(key)
        chosen = self._class_codecs.get(blob_class)
        if chosen is None:
            config = self._advisor_config
            choice = choose_codec(sample_window(data, config), config)
            chosen = choice.codec
            self._class_codecs[blob_class] = chosen
        return chosen

    def _run_codec(self, name: str, direction: str, data: bytes) -> bytes:
        """Run a codec and book the call into this store's local stats."""
        codec = get_codec(name)
        local = self._local_stats.setdefault(
            name, CompressionStats(name=name)
        )
        started = time.perf_counter()
        if direction == "encode":
            out = codec.compress(data)
            local.encode_seconds += time.perf_counter() - started
            local.encode_calls += 1
            local.encode_bytes_in += len(data)
            local.encode_bytes_out += len(out)
        else:
            out = codec.decompress(data)
            local.decode_seconds += time.perf_counter() - started
            local.decode_calls += 1
            local.decode_bytes_in += len(data)
            local.decode_bytes_out += len(out)
        return out

    def _demote(self, key: str, data: bytes) -> None:
        codec_name = self._codec_for(key, data)
        compressed = self._run_codec(codec_name, "encode", data)
        self.stats.demotions += 1
        self.stats.bytes_compressed += len(data)
        self.stats.bytes_compressed_out += len(compressed)
        counters.increment("storage.layers.demotions")
        counters.increment("storage.layers.bytes_compressed", len(data))
        counters.increment(
            "storage.layers.bytes_compressed_out", len(compressed)
        )
        # Record the codec before the put: an immediate drop/rejection
        # cleans the record back up via _drop.
        self._blob_codecs[key] = codec_name
        self._cold.put(key, compressed)
        if key not in self._cold:
            self._blob_codecs.pop(key, None)

    def _drop(self, key: str, data: bytes) -> None:
        self._blob_codecs.pop(key, None)
        self.stats.drops += 1
        counters.increment("storage.layers.drops")

    def put(self, key: str, data: bytes) -> None:
        """Insert a blob into the hot layer (demoting LRU overflow)."""
        self._cold.remove(key)
        self._blob_codecs.pop(key, None)
        self._hot.put(key, data)

    def get(self, key: str) -> bytes:
        """Read a blob, promoting it to hot on a cold/loader hit."""
        data = self._hot.get(key)
        if data is not None:
            self.stats.hot_hits += 1
            counters.increment("storage.layers.hot_hits")
            return data
        compressed = self._cold.get(key)
        if compressed is not None:
            self.stats.cold_hits += 1
            self.stats.bytes_decompressed += len(compressed)
            counters.increment("storage.layers.cold_hits")
            counters.increment(
                "storage.layers.bytes_decompressed", len(compressed)
            )
            codec_name = self._blob_codecs.get(key, self._codec_name)
            data = self._run_codec(codec_name, "decode", compressed)
            self._cold.remove(key)
            self._blob_codecs.pop(key, None)
            self._hot.put(key, data)
            return data
        if self._loader is None:
            raise StorageError(f"blob {key!r} not resident and no loader set")
        data = self._loader(key)
        self.stats.loads += 1
        self.stats.bytes_loaded += len(data)
        counters.increment("storage.layers.loads")
        counters.increment("storage.layers.bytes_loaded", len(data))
        self._hot.put(key, data)
        return data

    def codec_stats(self) -> dict[str, CompressionStats]:
        """Codec name -> stats for *this store's* layer traffic only.

        Per-instance accounting: two stores configured with the same
        codec never alias each other's numbers (the process-wide
        aggregate still lives in the registry).
        """
        return dict(self._local_stats)

    def blob_class_codecs(self) -> dict[str, str]:
        """Blob class -> advisor-chosen codec (empty unless auto mode)."""
        return dict(self._class_codecs)

    def contains_hot(self, key: str) -> bool:
        return key in self._hot

    def contains_cold(self, key: str) -> bool:
        return key in self._cold

    @property
    def hot_used_bytes(self) -> float:
        return self._hot.used

    @property
    def cold_used_bytes(self) -> float:
        return self._cold.used
