"""Two-layer hybrid store: uncompressed + compressed in memory.

Section 3 ("Generic Compression Algorithm") ends with the production
design: "a hybrid approach with two 'layers' of data-structures held
in-memory: uncompressed and compressed. Moving items between these
layers or finally evicting them entirely can be done, e.g., with the
well-known LRU cache eviction heuristic."

:class:`HybridLayerStore` keeps named byte blobs. Reads hit the hot
(uncompressed) layer first; on a hot miss the cold (compressed) layer is
decompressed and the blob promoted. When the hot layer overflows, its
least-recently-used blobs are *demoted* (compressed into the cold
layer); when the cold layer overflows, blobs are dropped entirely and
the next access goes to the ``loader`` callback (simulating a disk
read). All movements are counted so experiments can report hot / cold /
disk hit splits — the quantity behind Figure 5.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass

from repro.compress.registry import get_codec
from repro.errors import StorageError


@dataclass
class LayerStats:
    """Where reads were served from, and byte traffic between layers."""

    hot_hits: int = 0
    cold_hits: int = 0
    loads: int = 0
    demotions: int = 0
    drops: int = 0
    bytes_decompressed: int = 0
    bytes_loaded: int = 0

    @property
    def accesses(self) -> int:
        return self.hot_hits + self.cold_hits + self.loads

    @property
    def in_memory_rate(self) -> float:
        """Fraction of reads served without the loader (i.e. from RAM)."""
        if not self.accesses:
            return 0.0
        return (self.hot_hits + self.cold_hits) / self.accesses


class _LruLayer:
    """A weighted LRU dict that hands overflow victims to a callback."""

    def __init__(self, capacity: float, on_evict: Callable[[str, bytes], None]):
        if capacity <= 0:
            raise StorageError(f"layer capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self.used = 0.0
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._on_evict = on_evict

    def get(self, key: str) -> bytes | None:
        data = self._entries.get(key)
        if data is not None:
            self._entries.move_to_end(key)
        return data

    def put(self, key: str, data: bytes) -> None:
        if key in self._entries:
            self.used -= len(self._entries.pop(key))
        self._entries[key] = data
        self.used += len(data)
        while self.used > self.capacity and len(self._entries) > 1:
            victim_key, victim = self._entries.popitem(last=False)
            self.used -= len(victim)
            self._on_evict(victim_key, victim)

    def remove(self, key: str) -> None:
        data = self._entries.pop(key, None)
        if data is not None:
            self.used -= len(data)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class HybridLayerStore:
    """Hot (raw) + cold (compressed) in-memory layers over byte blobs."""

    def __init__(
        self,
        hot_capacity_bytes: float,
        cold_capacity_bytes: float,
        codec: str = "zippy",
        loader: Callable[[str], bytes] | None = None,
    ) -> None:
        self._codec = get_codec(codec)
        self._hot = _LruLayer(hot_capacity_bytes, self._demote)
        self._cold = _LruLayer(cold_capacity_bytes, self._drop)
        self._loader = loader
        self.stats = LayerStats()

    def _demote(self, key: str, data: bytes) -> None:
        self.stats.demotions += 1
        self._cold.put(key, self._codec.compress(data))

    def _drop(self, key: str, data: bytes) -> None:
        self.stats.drops += 1

    def put(self, key: str, data: bytes) -> None:
        """Insert a blob into the hot layer (demoting LRU overflow)."""
        self._cold.remove(key)
        self._hot.put(key, data)

    def get(self, key: str) -> bytes:
        """Read a blob, promoting it to hot on a cold/loader hit."""
        data = self._hot.get(key)
        if data is not None:
            self.stats.hot_hits += 1
            return data
        compressed = self._cold.get(key)
        if compressed is not None:
            self.stats.cold_hits += 1
            self.stats.bytes_decompressed += len(compressed)
            data = self._codec.decompress(compressed)
            self._cold.remove(key)
            self._hot.put(key, data)
            return data
        if self._loader is None:
            raise StorageError(f"blob {key!r} not resident and no loader set")
        data = self._loader(key)
        self.stats.loads += 1
        self.stats.bytes_loaded += len(data)
        self._hot.put(key, data)
        return data

    def contains_hot(self, key: str) -> bool:
        return key in self._hot

    def contains_cold(self, key: str) -> bool:
        return key in self._cold

    @property
    def hot_used_bytes(self) -> float:
        return self._hot.used

    @property
    def cold_used_bytes(self) -> float:
        return self._cold.used
