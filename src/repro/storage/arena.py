"""The shared-memory chunk arena — decoded columns in one flat buffer.

The paper's engine fans partial aggregations out over thousands of
workers; our :class:`~repro.core.executor.ProcessExecutor` mirrors that
across OS processes. Processes share nothing by default, and pickling a
column store per worker would copy the very arrays the executor exists
to scan. The arena solves this the way Rozenberg's columnar-computation
model suggests (PAPERS.md): materialize the *decoded* columnar state —
element arrays, chunk dictionaries, dictionary value buffers — once
into a page-aligned flat buffer, and hand every reader zero-copy
``np.frombuffer`` views into it.

Layout (format ``PDA1``)::

    preamble: magic 'PDA1' + u32 header_len + u64 total_size  (16 bytes)
    header:   JSON — store options, chunking, per-field buffer table
    data:     page-aligned region of 64-byte-aligned buffers

The buffer table is laid out from the PDS2 vocabulary
(:mod:`repro.storage.serde` metas describe dictionaries; element
encodings keep their PDS2 tags), but payloads are stored *decoded* at
fixed width — raw ``uint8/16/32`` element ids, raw ``uint32`` chunk
dictionaries, raw ``int64/float64`` numeric dictionary values — so a
reader attaches by wrapping offsets, never by parsing varints. Each
field's section starts on a 4096-byte page boundary and every buffer on
a 64-byte boundary (cache-line aligned vector loads; page-granular
residency for the mmap cold store).

Three backings share the format:

- ``shm``  — ``multiprocessing.shared_memory``; attachable by name,
  the transport under ``--executor process``.
- ``mmap`` — a file-backed map; the same bytes double as a cold store
  (:func:`save_arena` / :func:`load_arena_store`): chunks page in on
  access instead of staying resident.
- ``local``— an anonymous in-process buffer for verification
  (``repro fsck`` FSCK011) and tests; it creates no kernel object.

Read-only contract: every array handed out by an attach is a
``np.frombuffer`` view with ``writeable`` cleared. reprolint REP014
statically bans in-place mutation of frombuffer-derived views and the
cleared flag makes any slip a runtime ``ValueError``;
:class:`repro.testing.SanitizingExecutor` additionally fingerprints the
arena bytes around every fan-out, so a cross-process write fails tests
by attribute path.

Lifecycle: creating processes own their segments. ``close()`` releases
the local mapping, ``unlink()`` removes the kernel object (shm only —
an mmap arena is a file the caller keeps). Owners register in a
module-level table that an ``atexit`` hook drains, so no ``shm``
segment survives the interpreter even on crash-y test paths;
:meth:`repro.core.executor.ProcessExecutor.close` releases the arenas
it adopted eagerly.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import json
import mmap
import os
import struct
import tempfile
import uuid
from dataclasses import dataclass, replace
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

from repro.core.datastore import DataStore, FieldStore
from repro.errors import StorageError
from repro.monitoring import counters
from repro.storage.bitset import BitSet
from repro.storage.chunk import ColumnChunk
from repro.storage.dictionary import Dictionary, NumericDictionary
from repro.storage.elements import (
    BitsetElements,
    ConstantElements,
    Elements,
    PackedElements,
)
from repro.storage.serde import (
    decode_dictionary,
    dictionary_meta,
    encode_dictionary,
    options_from_dict,
    options_to_dict,
)

_MAGIC = b"PDA1"
_PREAMBLE = struct.Struct("<4sIQ")  # magic, header_len, total_size

#: Every buffer starts on a cache-line boundary …
BUFFER_ALIGN = 64
#: … and every field section on a page boundary.
SECTION_ALIGN = 4096

#: All shm segments are named with this prefix — leak checks scan for it.
SEGMENT_PREFIX = "repro_arena_"

_PACKED_DTYPES = {1: np.uint8, 2: np.uint16, 4: np.uint32}

_arena_counter = itertools.count()

#: Owner arenas by segment identity, drained by the atexit hook.
_LIVE_ARENAS: dict[str, "ChunkArena"] = {}

#: Per-process attach cache: one DataStore per arena, shared by every
#: task a worker unpickles (virtual-field rematerialization then
#: happens once per worker, not once per task).
_ATTACHED_STORES: dict["ArenaHandle", DataStore] = {}


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def _segment_name() -> str:
    return (
        f"{SEGMENT_PREFIX}{os.getpid()}_{next(_arena_counter)}_"
        f"{uuid.uuid4().hex[:8]}"
    )


def _ignore_tracker_registration(name: str, rtype: str) -> None:
    """Stand-in for ``resource_tracker.register`` during shm attach."""


@dataclass(frozen=True)
class ArenaHandle:
    """A picklable, hashable reference to an attachable arena.

    ``kind`` is ``"shm"`` (attach by segment name) or ``"mmap"``
    (attach by file path). ``local`` arenas are process-private and
    have no handle.
    """

    kind: str
    name: str

    @property
    def shareable(self) -> bool:
        """Whether another process can attach through this handle."""
        return self.kind in ("shm", "mmap")


# -- backings ---------------------------------------------------------------


class _ShmBacking:
    """A POSIX shared-memory segment (attachable by name)."""

    kind = "shm"

    def __init__(self, segment: shared_memory.SharedMemory, owner: bool) -> None:
        self._segment = segment
        self.name = segment.name
        self.owner = owner
        self.closed = False
        self.unlinked = False

    @classmethod
    def create(cls, size: int) -> "_ShmBacking":
        segment = shared_memory.SharedMemory(
            name=_segment_name(), create=True, size=size
        )
        return cls(segment, owner=True)

    @classmethod
    def attach(cls, name: str) -> "_ShmBacking":
        # Python 3.11 registers *attached* segments with the resource
        # tracker as if this process owned them (fixed by track=False
        # in 3.13). Forked workers share the creator's tracker, so the
        # spurious registrations would both strip the creator's
        # crash-cleanup entry on the first worker unregister and spam
        # KeyErrors on later ones; suppress registration entirely for
        # the attach instead.
        original_register = resource_tracker.register
        resource_tracker.register = _ignore_tracker_registration
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            raise StorageError(
                f"shared-memory arena {name!r} does not exist (unlinked?)"
            ) from None
        finally:
            resource_tracker.register = original_register
        return cls(segment, owner=False)

    @property
    def buffer(self) -> memoryview:
        return self._segment.buf

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self._segment.close()
        except BufferError:
            # Live numpy views still reference the mapping; the map is
            # freed when the last view dies (mmap deallocation never
            # raises), and the *name* is what must not leak — unlink()
            # handles that independently. SharedMemory.__del__ would
            # retry this close and surface the BufferError as an
            # unraisable exception, so orphan the map to the GC
            # instead of leaving it on the segment.
            state = self._segment.__dict__
            self._orphaned_map = (state.pop("_mmap", None), state.pop("_buf", None))
            state["_mmap"] = None
            state["_buf"] = None
            fd = state.get("_fd", -1)
            if isinstance(fd, int) and fd >= 0:
                try:
                    os.close(fd)
                except OSError:
                    pass
                state["_fd"] = -1

    def unlink(self) -> None:
        if self.unlinked or not self.owner:
            return
        self.unlinked = True
        try:
            self._segment.unlink()
        except FileNotFoundError:
            pass


class _MmapBacking:
    """A file-backed map — the arena as an on-disk cold store."""

    kind = "mmap"

    def __init__(self, path: str, handle: Any, mapped: mmap.mmap, owner: bool) -> None:
        self.path = path
        self.name = path
        self._handle = handle
        self._mmap = mapped
        self.owner = owner
        self.closed = False

    @classmethod
    def create(cls, path: str, size: int) -> "_MmapBacking":
        handle = open(path, "w+b")
        handle.truncate(size)
        mapped = mmap.mmap(handle.fileno(), size)
        return cls(os.path.abspath(path), handle, mapped, owner=True)

    @classmethod
    def attach(cls, path: str) -> "_MmapBacking":
        try:
            handle = open(path, "rb")
        except OSError as error:
            raise StorageError(f"cannot open arena file {path!r}: {error}") from error
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        return cls(os.path.abspath(path), handle, mapped, owner=False)

    @property
    def buffer(self) -> memoryview:
        return memoryview(self._mmap)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self.owner:
            self._mmap.flush()
        try:
            self._mmap.close()
        except BufferError:
            self.closed = False
            return
        self._handle.close()

    def unlink(self) -> None:
        """No-op: an mmap arena is a file the caller owns."""


class _LocalBacking:
    """An anonymous in-process buffer (verification and tests)."""

    kind = "local"
    name = "<local>"
    owner = True

    def __init__(self, size: int) -> None:
        self._data = bytearray(size)

    @property
    def buffer(self) -> memoryview:
        return memoryview(self._data)

    def close(self) -> None:
        pass

    def unlink(self) -> None:
        pass


# -- layout: build ----------------------------------------------------------


def _dictionary_payload(dictionary: Dictionary) -> tuple[dict[str, Any], bytes]:
    """(header meta, payload bytes) for one global dictionary.

    Numeric dictionaries store their raw sorted value array so the
    attach side wraps it zero-copy; every other kind reuses its PDS2
    payload (string/trie payloads are variable-width byte structures a
    Python reader copies into objects anyway).
    """
    if isinstance(dictionary, NumericDictionary):
        raw = dictionary.raw_values()
        meta = {
            "kind": "numeric-raw",
            "dtype": str(raw.dtype),
            "count": int(raw.size),
            "has_null": dictionary.has_null,
            "optimized": dictionary.optimized,
        }
        return meta, np.ascontiguousarray(raw).tobytes()
    meta = dictionary_meta(dictionary)
    if meta["kind"] not in ("string", "trie"):
        raise StorageError(
            f"arena cannot hold a {meta['kind']!r} dictionary "
            "(only original table fields belong in the arena)"
        )
    return {"kind": "serde", "serde": meta}, encode_dictionary(dictionary)


def _elements_entry(
    elements: Elements, cursor: int
) -> tuple[dict[str, Any], bytes | memoryview | None, int]:
    """(header entry, payload, next cursor) for one elements array."""
    if isinstance(elements, ConstantElements):
        entry = {
            "kind": "constant",
            "n_rows": elements.n_rows,
            "chunk_id": elements.chunk_id,
        }
        return entry, None, cursor
    cursor = _align_up(cursor, BUFFER_ALIGN)
    payload = elements.payload_bytes()
    if isinstance(elements, BitsetElements):
        entry = {
            "kind": "bitset",
            "n_rows": elements.n_rows,
            "offset": cursor,
            "length": len(payload),
        }
    elif isinstance(elements, PackedElements):
        entry = {
            "kind": "packed",
            "n_rows": elements.n_rows,
            "width": elements.width,
            "offset": cursor,
            "length": len(payload),
        }
    else:
        raise StorageError(
            f"arena cannot hold {elements.encoding_name!r} elements"
        )
    return entry, payload, cursor + len(payload)


class ChunkArena:
    """A store's decoded columns in one attachable flat buffer."""

    def __init__(
        self,
        backing: Any,
        header: dict[str, Any],
        data_start: int,
        size: int,
    ) -> None:
        self._backing = backing
        self._header = header
        self._data_start = data_start
        self.size = size
        self.owner_pid = os.getpid() if backing.owner else -1
        self._released = False

    # -- construction ------------------------------------------------------
    @classmethod
    def build(
        cls, store: DataStore, kind: str = "shm", path: str | None = None
    ) -> "ChunkArena":
        """Materialize ``store``'s original fields into a new arena."""
        fields_meta: list[dict[str, Any]] = []
        payloads: list[tuple[int, bytes | memoryview]] = []
        cursor = 0
        for name in sorted(store.fields):
            field = store.fields[name]
            if field.virtual:
                continue
            cursor = _align_up(cursor, SECTION_ALIGN)
            dict_meta, dict_payload = _dictionary_payload(field.dictionary)
            entry: dict[str, Any] = {
                "name": name,
                "dictionary": {
                    "meta": dict_meta,
                    "offset": cursor,
                    "length": len(dict_payload),
                },
            }
            payloads.append((cursor, dict_payload))
            cursor += len(dict_payload)
            chunk_entries: list[dict[str, Any]] = []
            for chunk in field.chunks:
                cursor = _align_up(cursor, BUFFER_ALIGN)
                chunk_dict = np.ascontiguousarray(chunk.chunk_dict, dtype=np.uint32)
                chunk_entry: dict[str, Any] = {
                    "dict_offset": cursor,
                    "dict_count": int(chunk_dict.size),
                }
                payloads.append((cursor, chunk_dict.tobytes()))
                cursor += chunk_dict.nbytes
                element_entry, payload, cursor = _elements_entry(
                    chunk.elements, cursor
                )
                if payload is not None:
                    payloads.append((element_entry["offset"], payload))
                chunk_entry["elements"] = element_entry
                chunk_entries.append(chunk_entry)
            entry["chunks"] = chunk_entries
            fields_meta.append(entry)

        header = {
            "format": "ARENA1",
            "options": options_to_dict(store.options),
            "n_rows": store.n_rows,
            "chunk_row_counts": list(store.chunk_row_counts),
            "fields": fields_meta,
        }
        header_bytes = json.dumps(header).encode("utf-8")
        data_start = _align_up(_PREAMBLE.size + len(header_bytes), SECTION_ALIGN)
        total = data_start + _align_up(cursor, BUFFER_ALIGN)

        if kind == "shm":
            backing: Any = _ShmBacking.create(total)
        elif kind == "mmap":
            if path is None:
                raise StorageError("mmap arena needs a file path")
            backing = _MmapBacking.create(path, total)
        elif kind == "local":
            backing = _LocalBacking(total)
        else:
            raise StorageError(f"unknown arena backing {kind!r}")

        completed = False
        try:
            buffer = backing.buffer
            buffer[: _PREAMBLE.size] = _PREAMBLE.pack(
                _MAGIC, len(header_bytes), total
            )
            buffer[_PREAMBLE.size : _PREAMBLE.size + len(header_bytes)] = (
                header_bytes
            )
            for offset, payload in payloads:
                start = data_start + offset
                buffer[start : start + len(payload)] = payload
            arena = cls(backing, header, data_start, total)
            completed = True
        finally:
            if not completed:
                # A build that dies mid-write must not strand the
                # segment: reclaim it before the handle escapes (the
                # atexit hook only knows fully built arenas).
                backing.unlink()
                backing.close()
        if backing.kind == "shm":
            _LIVE_ARENAS[backing.name] = arena
            _sync_manifest()
        counters.increment("arena.builds")
        counters.increment("arena.bytes", total)
        return arena

    @classmethod
    def attach(cls, handle: ArenaHandle) -> "ChunkArena":
        """Open an existing arena through its handle (read-only use)."""
        if handle.kind == "shm":
            backing: Any = _ShmBacking.attach(handle.name)
        elif handle.kind == "mmap":
            backing = _MmapBacking.attach(handle.name)
        else:
            raise StorageError(f"cannot attach arena kind {handle.kind!r}")
        buffer = backing.buffer
        try:
            magic, header_len, total = _PREAMBLE.unpack_from(buffer, 0)
            if magic != _MAGIC:
                raise StorageError(f"not an arena: magic {bytes(magic)!r}")
            header = json.loads(
                bytes(buffer[_PREAMBLE.size : _PREAMBLE.size + header_len])
            )
        except (struct.error, ValueError, UnicodeDecodeError) as error:
            backing.close()
            raise StorageError(
                f"arena header is corrupt: {type(error).__name__}: {error}"
            ) from error
        data_start = _align_up(_PREAMBLE.size + header_len, SECTION_ALIGN)
        counters.increment("arena.attaches")
        return cls(backing, header, data_start, total)

    # -- identity ----------------------------------------------------------
    @property
    def kind(self) -> str:
        return self._backing.kind

    @property
    def name(self) -> str:
        return self._backing.name

    @property
    def is_owner(self) -> bool:
        return bool(self._backing.owner)

    def handle(self) -> ArenaHandle | None:
        """The attachable reference, or None for local backings."""
        if self._backing.kind in ("shm", "mmap"):
            return ArenaHandle(self._backing.kind, self._backing.name)
        return None

    @property
    def buffer(self) -> memoryview:
        """The raw arena bytes (writable only on the build path)."""
        return self._backing.buffer

    def fingerprint(self) -> str:
        """SHA-1 over the arena bytes — the sanitizer's mutation probe."""
        return hashlib.sha1(bytes(self.buffer[: self.size])).hexdigest()

    def fingerprint_key(self) -> tuple[str, str, str]:
        """(kind, name, content hash) — stable identity for fingerprints."""
        if self._released or getattr(self._backing, "closed", False):
            return (self.kind, self.name, "<released>")
        return (self.kind, self.name, self.fingerprint())

    # -- attach-side reconstruction ---------------------------------------
    def _view(self, dtype: Any, offset: int, count: int) -> np.ndarray:
        view = np.frombuffer(
            self.buffer, dtype=dtype, count=count, offset=self._data_start + offset
        )
        if view.flags.writeable:
            view.flags.writeable = False
        return view

    def _payload(self, offset: int, length: int) -> bytes:
        start = self._data_start + offset
        return bytes(self.buffer[start : start + length])

    def _attach_dictionary(self, entry: dict[str, Any]) -> Dictionary:
        meta = entry["meta"]
        if meta["kind"] == "numeric-raw":
            values = self._view(
                np.dtype(meta["dtype"]), entry["offset"], meta["count"]
            )
            return NumericDictionary(
                values,
                has_null=meta["has_null"],
                optimized=meta["optimized"],
            )
        return decode_dictionary(
            meta["serde"], self._payload(entry["offset"], entry["length"])
        )

    def _attach_elements(self, entry: dict[str, Any]) -> Elements:
        kind = entry["kind"]
        if kind == "constant":
            return ConstantElements(entry["n_rows"], entry["chunk_id"])
        if kind == "bitset":
            payload = self._payload(entry["offset"], entry["length"])
            return BitsetElements(BitSet.from_bytes(payload, entry["n_rows"]))
        if kind == "packed":
            dtype = _PACKED_DTYPES.get(entry["width"])
            if dtype is None:
                raise StorageError(f"bad packed width {entry['width']} in arena")
            ids = self._view(dtype, entry["offset"], entry["n_rows"])
            return PackedElements(ids, entry["width"])
        raise StorageError(f"unknown elements kind {kind!r} in arena")

    def attached_store(self) -> DataStore:
        """A fresh :class:`DataStore` whose arrays view this arena.

        The returned store always starts with the *serial* runtime
        regardless of the options recorded at build time: attached
        stores live inside executor workers (a nested process pool
        would fork the fleet) or behind :func:`load_arena_store`, whose
        callers pick their own runtime via ``configure_runtime``.
        """
        options = options_from_dict(self._header["options"])
        options = replace(options, executor="serial", workers=None)
        fields: dict[str, FieldStore] = {}
        for field_meta in self._header["fields"]:
            name = field_meta["name"]
            dictionary = self._attach_dictionary(field_meta["dictionary"])
            chunks = []
            for chunk_meta in field_meta["chunks"]:
                chunk_dict = self._view(
                    np.uint32,
                    chunk_meta["dict_offset"],
                    chunk_meta["dict_count"],
                )
                elements = self._attach_elements(chunk_meta["elements"])
                chunks.append(ColumnChunk.from_trusted_parts(chunk_dict, elements))
            fields[name] = FieldStore(name, dictionary, chunks)
        store = DataStore(
            options,
            self._header["n_rows"],
            list(self._header["chunk_row_counts"]),
            fields,
        )
        store.adopt_arena(self, self.handle())
        return store

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Release this process's mapping (kernel object untouched)."""
        self._backing.close()

    def unlink(self) -> None:
        """Remove the kernel object (shm owners only; mmap keeps its file)."""
        self._backing.unlink()
        _LIVE_ARENAS.pop(self._backing.name, None)
        if self._backing.kind == "shm" and self._backing.owner:
            _sync_manifest()

    def release(self) -> None:
        """Owner teardown: unlink the segment, then drop the mapping.

        Safe to call on attached (non-owner) arenas — those only drop
        their mapping. Idempotent.
        """
        if self._released:
            return
        self._released = True
        self.unlink()
        self.close()

    def __enter__(self) -> "ChunkArena":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


# -- module-level lifecycle -------------------------------------------------


def _release_live_arenas() -> None:
    """atexit backstop: unlink every shm segment this process owns.

    Forked executor workers inherit the parent's registry; the pid
    check keeps a worker's exit from unlinking segments the parent is
    still serving.
    """
    for arena in list(_LIVE_ARENAS.values()):
        if arena.owner_pid == os.getpid():
            arena.release()


atexit.register(_release_live_arenas)


def live_segment_names() -> list[str]:
    """Names of shm segments this process currently owns (leak checks)."""
    return sorted(
        name
        for name, arena in _LIVE_ARENAS.items()
        if arena.owner_pid == os.getpid()
    )


# -- the janitor: crash-safe segment accounting -----------------------------
#
# atexit and close() cover every orderly exit, but a SIGKILLed owner
# (OOM killer, operator) runs neither, stranding its segments in
# /dev/shm until reboot. The janitor closes that hole: every owner
# process keeps a pidfile-tagged manifest of its live segment names on
# disk, rewritten atomically whenever a segment is created or
# unlinked, and sweep_orphaned_segments() reclaims the segments of any
# manifest whose owner pid no longer exists.

#: Environment override for the manifest directory (tests isolate it).
MANIFEST_DIR_ENV = "REPRO_ARENA_MANIFEST_DIR"


def manifest_dir() -> str:
    """The directory holding per-pid arena manifests (created lazily)."""
    root = os.environ.get(MANIFEST_DIR_ENV) or os.path.join(
        tempfile.gettempdir(), "repro_arena_manifests"
    )
    os.makedirs(root, exist_ok=True)
    return root


def _manifest_path(pid: int) -> str:
    return os.path.join(manifest_dir(), f"arenas_{pid}.json")


def _sync_manifest() -> None:
    """Rewrite this process's manifest to match its live segments.

    Atomic (tmp + rename) so a crash mid-write leaves the previous
    manifest, never a torn one; an empty manifest is removed. Manifest
    I/O failing must never fail a query — it only degrades the
    crash-sweep back to the pre-janitor behaviour.
    """
    pid = os.getpid()
    path = _manifest_path(pid)
    names = live_segment_names()
    try:
        if not names:
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
            return
        scratch = f"{path}.{uuid.uuid4().hex[:8]}.tmp"
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump({"pid": pid, "segments": names}, handle)
        os.replace(scratch, path)
    except OSError:
        counters.increment("arena.manifest_errors")


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a process that still exists."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return True  # be conservative: never sweep a maybe-live owner
    return True


def _unlink_segment_by_name(name: str) -> bool:
    """Unlink one shm segment by name; True when it existed.

    Attaches with resource-tracker registration suppressed (same 3.11
    wart as :meth:`_ShmBacking.attach`) purely to reach ``unlink``.
    """
    original_register = resource_tracker.register
    resource_tracker.register = _ignore_tracker_registration
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    finally:
        resource_tracker.register = original_register
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:
        return False
    return True


def sweep_orphaned_segments() -> list[str]:
    """Reclaim segments whose owner process is gone; returns their names.

    Scans every manifest in :func:`manifest_dir`; a manifest whose pid
    is dead has its listed ``repro_arena_*`` segments unlinked and the
    manifest removed. Live owners (including this process) are left
    alone. Safe to run concurrently: already-gone segments and
    manifests are tolerated.
    """
    reclaimed: list[str] = []
    try:
        entries = os.listdir(manifest_dir())
    except OSError:
        return reclaimed
    for entry in entries:
        if not (entry.startswith("arenas_") and entry.endswith(".json")):
            continue
        try:
            pid = int(entry[len("arenas_") : -len(".json")])
        except ValueError:
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        path = os.path.join(manifest_dir(), entry)
        try:
            with open(path, encoding="utf-8") as handle:
                manifest = json.load(handle)
            segments = list(manifest.get("segments", []))
        except (OSError, ValueError):
            segments = []  # torn/corrupt manifest: still remove it
        for name in segments:
            if not isinstance(name, str) or not name.startswith(
                SEGMENT_PREFIX
            ):
                continue  # never unlink a segment we did not create
            if _unlink_segment_by_name(name):
                reclaimed.append(name)
        try:
            os.unlink(path)
        except OSError:
            pass
    counters.increment("arena.janitor_sweeps")
    if reclaimed:
        counters.increment("arena.segments_reclaimed", len(reclaimed))
    return sorted(reclaimed)


def attach_store(handle: ArenaHandle) -> DataStore:
    """The pickle target for arena-backed stores (cached per process).

    Every :class:`DataStore` whose arena is shareable reduces to
    ``(attach_store, (handle,))``; workers unpickling tasks all land on
    the same attached store, so zero-copy views and rematerialized
    virtual fields are shared across every task a worker runs.
    """
    store = _ATTACHED_STORES.get(handle)
    if store is None:
        store = ChunkArena.attach(handle).attached_store()
        _ATTACHED_STORES[handle] = store
    return store


# -- the cold-store surface -------------------------------------------------


def save_arena(store: DataStore, path: str) -> int:
    """Write ``store`` as an mmap-backed arena file; returns its size."""
    arena = ChunkArena.build(store, kind="mmap", path=path)
    size = arena.size
    arena.close()
    return size


def load_arena_store(path: str) -> DataStore:
    """Open an arena file as a store whose columns page in on demand.

    The mapping is ``ACCESS_READ``: every array is a read-only view
    into file-backed pages, so a store larger than memory answers
    queries with only the touched pages resident (the paper's "load
    dynamically on first access", at page rather than file granularity).
    """
    handle = ArenaHandle("mmap", os.path.abspath(path))
    return attach_store(handle)


# -- verification (FSCK011) -------------------------------------------------


def verify_arena(store: DataStore) -> list[str]:
    """Round-trip ``store`` through a local arena; returns problems.

    Builds an anonymous (non-kernel) arena from the store, attaches it,
    and compares every original field bit-for-bit: dictionary payload
    bytes, chunk-dictionary arrays, element arrays and encodings. Also
    checks the layout contract itself — buffer alignment, bounds, and
    that no two buffers overlap.
    """
    problems: list[str] = []
    arena = ChunkArena.build(store, kind="local")
    try:
        problems.extend(_verify_layout(arena))
        attached = arena.attached_store()
        if attached.n_rows != store.n_rows:
            problems.append(
                f"arena n_rows {attached.n_rows} != store {store.n_rows}"
            )
        if list(attached.chunk_row_counts) != list(store.chunk_row_counts):
            problems.append("arena chunk_row_counts differ from store")
        original = {
            name: field
            for name, field in store.fields.items()
            if not field.virtual
        }
        if sorted(attached.fields) != sorted(original):
            problems.append(
                f"arena fields {sorted(attached.fields)} != "
                f"store originals {sorted(original)}"
            )
            return problems
        for name, field in original.items():
            twin = attached.fields[name]
            if encode_dictionary(field.dictionary) != encode_dictionary(
                twin.dictionary
            ):
                problems.append(f"field {name!r}: dictionary bytes differ")
            for index, (chunk, chunk_twin) in enumerate(
                zip(field.chunks, twin.chunks)
            ):
                if not np.array_equal(chunk.chunk_dict, chunk_twin.chunk_dict):
                    problems.append(
                        f"field {name!r} chunk {index}: chunk-dict differs"
                    )
                if (
                    chunk.elements.encoding_name
                    != chunk_twin.elements.encoding_name
                ):
                    problems.append(
                        f"field {name!r} chunk {index}: encoding "
                        f"{chunk.elements.encoding_name!r} became "
                        f"{chunk_twin.elements.encoding_name!r}"
                    )
                elif not np.array_equal(
                    chunk.elements.as_array(), chunk_twin.elements.as_array()
                ):
                    problems.append(
                        f"field {name!r} chunk {index}: elements differ"
                    )
    finally:
        arena.release()
    return problems


def _verify_layout(arena: ChunkArena) -> list[str]:
    """Alignment / bounds / overlap checks over the arena's buffer table."""
    problems: list[str] = []
    spans: list[tuple[int, int, str]] = []
    for field_meta in arena._header["fields"]:
        name = field_meta["name"]
        entry = field_meta["dictionary"]
        spans.append((entry["offset"], entry["length"], f"{name}.dictionary"))
        if entry["offset"] % SECTION_ALIGN:
            problems.append(f"{name}: section offset not page-aligned")
        for index, chunk_meta in enumerate(field_meta["chunks"]):
            spans.append(
                (
                    chunk_meta["dict_offset"],
                    4 * chunk_meta["dict_count"],
                    f"{name}.chunk[{index}].dict",
                )
            )
            element_meta = chunk_meta["elements"]
            if "offset" in element_meta:
                spans.append(
                    (
                        element_meta["offset"],
                        element_meta["length"],
                        f"{name}.chunk[{index}].elements",
                    )
                )
    data_size = arena.size - arena._data_start
    previous_end = 0
    previous_label = "<start>"
    for offset, length, label in sorted(spans):
        if offset % BUFFER_ALIGN:
            problems.append(f"{label}: offset {offset} not 64-byte aligned")
        if offset < previous_end:
            problems.append(f"{label}: overlaps {previous_label}")
        if offset + length > data_size:
            problems.append(f"{label}: extends past the data region")
        previous_end = offset + length
        previous_label = label
    return problems
