"""Element (chunk-id) encodings — Section 3 "Optimize Encoding of Elements".

The *elements* of a column chunk are the per-row chunk-ids. The basic
data-structures store them as 32-bit integers; the OptCols optimization
picks an encoding by the chunk-dictionary size ``n_distinct``:

============  =======================  =====================
n_distinct    encoding                 payload size
============  =======================  =====================
1             :class:`ConstantElements`  O(1)
2             :class:`BitsetElements`    ceil(n/8) bytes
<= 2**8       :class:`PackedElements`    n bytes
<= 2**16      :class:`PackedElements`    2n bytes
<= 2**32      :class:`PackedElements`    4n bytes
============  =======================  =====================

Every encoding exposes ``as_array()`` (dense uint32 chunk-ids, the form
the group-by inner loop consumes), ``size_bytes()`` (the analytic
payload size the memory experiments report) and ``to_bytes()`` (the
serialized payload the compression experiments feed to the codecs).

``as_array()`` caches the dense array after the first materialization
and single-row ``[row]`` access never materializes it at all, so
callers must treat the returned array as read-only (all in-tree
callers only read it or derive new arrays from it).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import EncodingError
from repro.storage.bitset import BitSet


class Elements:
    """Abstract base for element encodings."""

    encoding_name = "abstract"

    def __len__(self) -> int:
        return self.n_rows

    @property
    def n_rows(self) -> int:
        raise NotImplementedError

    def as_array(self) -> np.ndarray:
        """Dense chunk-ids as a uint32 array of length ``n_rows``."""
        raise NotImplementedError

    def size_bytes(self) -> int:
        """Analytic payload size in bytes."""
        raise NotImplementedError

    def to_bytes(self) -> bytes:
        """Serialized payload (fed to compression codecs)."""
        raise NotImplementedError

    def payload_bytes(self) -> "bytes | memoryview":
        """Raw payload for flat-buffer stores (see :mod:`repro.storage.arena`)."""
        return self.to_bytes()

    def __getitem__(self, row: int) -> int:
        return int(self.as_array()[row])


class ConstantElements(Elements):
    """All rows share one chunk-id; only the row count is stored."""

    encoding_name = "constant"

    def __init__(self, n_rows: int, chunk_id: int = 0) -> None:
        if n_rows < 0:
            raise EncodingError(f"row count must be >= 0, got {n_rows}")
        self._n_rows = n_rows
        self._chunk_id = chunk_id
        self._dense: np.ndarray | None = None

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def chunk_id(self) -> int:
        return self._chunk_id

    def as_array(self) -> np.ndarray:
        if self._dense is None:
            self._dense = np.full(self._n_rows, self._chunk_id, dtype=np.uint32)
        return self._dense

    def size_bytes(self) -> int:
        # O(1): a row count and the single chunk-id.
        return 8

    def to_bytes(self) -> bytes:
        return self._n_rows.to_bytes(4, "little") + self._chunk_id.to_bytes(
            4, "little"
        )

    def __getitem__(self, row: int) -> int:
        if not 0 <= row < self._n_rows:
            raise EncodingError(f"row {row} out of range")
        return self._chunk_id


class BitsetElements(Elements):
    """Two distinct chunk-ids (0/1) stored one bit per row."""

    encoding_name = "bitset"

    def __init__(self, bits: BitSet) -> None:
        self._bits = bits
        self._dense: np.ndarray | None = None

    @classmethod
    def from_ids(cls, ids: np.ndarray) -> "BitsetElements":
        if ids.size and int(ids.max()) > 1:
            raise EncodingError("bitset elements require chunk-ids in {0, 1}")
        return cls(BitSet.from_numpy(ids))

    @property
    def n_rows(self) -> int:
        return len(self._bits)

    def as_array(self) -> np.ndarray:
        if self._dense is None:
            self._dense = self._bits.to_numpy().astype(np.uint32)
        return self._dense

    def size_bytes(self) -> int:
        return self._bits.size_bytes()

    def to_bytes(self) -> bytes:
        return self._bits.to_bytes()

    def __getitem__(self, row: int) -> int:
        return self._bits.get(row)


class PackedElements(Elements):
    """Chunk-ids packed into 1, 2 or 4 bytes each."""

    encoding_name = "packed"
    _DTYPES = {1: np.uint8, 2: np.uint16, 4: np.uint32}

    def __init__(self, ids: np.ndarray, width: int) -> None:
        if width not in self._DTYPES:
            raise EncodingError(f"unsupported packed width {width}")
        self._width = width
        self._ids = np.ascontiguousarray(ids, dtype=self._DTYPES[width])
        self._dense: np.ndarray | None = None

    @property
    def width(self) -> int:
        return self._width

    @property
    def n_rows(self) -> int:
        return int(self._ids.size)

    def as_array(self) -> np.ndarray:
        if self._dense is None:
            self._dense = self._ids.astype(np.uint32, copy=False)
        return self._dense

    def size_bytes(self) -> int:
        return self._ids.size * self._width

    def to_bytes(self) -> bytes:
        return self._ids.tobytes()

    def payload_bytes(self) -> memoryview:
        # Zero-copy: the ids array (kept contiguous by __init__) viewed
        # as bytes, so arena builds write it straight into the buffer.
        return self._ids.data.cast("B")

    def __getitem__(self, row: int) -> int:
        return int(self._ids[row])


def width_for(n_distinct: int) -> int:
    """Packed byte width required for ``n_distinct`` chunk-ids."""
    if n_distinct <= 1 << 8:
        return 1
    if n_distinct <= 1 << 16:
        return 2
    if n_distinct <= 1 << 32:
        return 4
    raise EncodingError(f"{n_distinct} distinct values exceed 32-bit ids")


def encode_elements(
    ids: Sequence[int] | np.ndarray, n_distinct: int, optimized: bool = True
) -> Elements:
    """Encode chunk-ids, choosing the optimal encoding when ``optimized``.

    ``optimized=False`` reproduces the *Basic* data-structures (always
    32-bit integers); ``optimized=True`` reproduces *OptCols*.
    """
    array = np.asarray(ids, dtype=np.uint32)
    if array.size and int(array.max()) >= max(n_distinct, 1):
        raise EncodingError(
            f"chunk-id {int(array.max())} >= dictionary size {n_distinct}"
        )
    if not optimized:
        return PackedElements(array, 4)
    if n_distinct <= 1:
        return ConstantElements(int(array.size), 0)
    if n_distinct == 2:
        return BitsetElements.from_ids(array)
    return PackedElements(array, width_for(n_distinct))
