"""Bloom filters over dictionary contents — Section 5.

"To further reduce the situations where a (sub-)dictionary needs to be
loaded into memory, we additionally keep Bloom-filters for each
dictionary. With these Bloom-filters one can quickly check whether
certain values are present in a dictionary at all."

The filter hashes values with BLAKE2b (deterministic across runs and
processes) and derives the k probe positions by double hashing.
"""

from __future__ import annotations

import hashlib
import math
from collections.abc import Iterable
from typing import Any

from repro.errors import StorageError
from repro.storage.bitset import BitSet


def _hash_pair(value: Any) -> tuple[int, int]:
    """Two independent 64-bit hashes of ``value``."""
    raw = repr(value).encode("utf-8")
    digest = hashlib.blake2b(raw, digest_size=16).digest()
    return (
        int.from_bytes(digest[:8], "little"),
        int.from_bytes(digest[8:], "little"),
    )


class BloomFilter:
    """A classic Bloom filter with double hashing."""

    def __init__(self, n_bits: int, n_hashes: int) -> None:
        if n_bits <= 0 or n_hashes <= 0:
            raise StorageError("bloom filter needs positive bit/hash counts")
        self._bits = BitSet(n_bits)
        self._n_hashes = n_hashes
        self._n_items = 0

    @classmethod
    def for_capacity(cls, n_items: int, fpp: float = 0.01) -> "BloomFilter":
        """Size a filter for ``n_items`` at target false-positive rate."""
        if not 0 < fpp < 1:
            raise StorageError(f"fpp must be in (0, 1), got {fpp}")
        n_items = max(n_items, 1)
        n_bits = max(8, int(-n_items * math.log(fpp) / (math.log(2) ** 2)))
        n_hashes = max(1, round(n_bits / n_items * math.log(2)))
        return cls(n_bits, n_hashes)

    @classmethod
    def build(cls, items: Iterable[Any], fpp: float = 0.01) -> "BloomFilter":
        """Build a filter containing every item of ``items``."""
        materialized = list(items)
        bloom = cls.for_capacity(len(materialized), fpp)
        for item in materialized:
            bloom.add(item)
        return bloom

    def _positions(self, value: Any) -> Iterable[int]:
        h1, h2 = _hash_pair(value)
        n = len(self._bits)
        for i in range(self._n_hashes):
            yield (h1 + i * h2) % n

    def add(self, value: Any) -> None:
        """Insert ``value``."""
        for pos in self._positions(value):
            self._bits.set(pos)
        self._n_items += 1

    def might_contain(self, value: Any) -> bool:
        """False means definitely absent; True means possibly present."""
        return all(self._bits.get(pos) for pos in self._positions(value))

    def __contains__(self, value: Any) -> bool:
        return self.might_contain(value)

    @property
    def n_items(self) -> int:
        """Number of inserted items."""
        return self._n_items

    def size_bytes(self) -> int:
        """Payload size of the bit array."""
        return self._bits.size_bytes()

    def estimated_fpp(self) -> float:
        """Expected false-positive rate at the current fill level."""
        n_bits = len(self._bits)
        fill = 1.0 - math.exp(-self._n_hashes * self._n_items / n_bits)
        return fill**self._n_hashes
