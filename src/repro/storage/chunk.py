"""Per-chunk column storage — the chunk-dictionary + elements pair.

For each chunk and each column the store keeps (Section 2.3):

- the *chunk-dictionary*: the sorted array of global-ids occurring in
  the chunk, mapping chunk-id (index) <-> global-id (value);
- the *elements*: one chunk-id per row, in row order.

Because global-ids are ranks in the sorted global dictionary, the
chunk-dictionary also exposes the chunk's value range (min/max
global-id), which the engine uses for range-restriction skipping.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.errors import StorageError
from repro.storage.elements import Elements, encode_elements


class ColumnChunk:
    """One column's storage within one chunk."""

    __slots__ = ("chunk_dict", "elements")

    def __init__(self, chunk_dict: np.ndarray, elements: Elements) -> None:
        if chunk_dict.ndim != 1:
            raise StorageError("chunk dictionary must be a 1-d array")
        if chunk_dict.size > 1 and not np.all(chunk_dict[:-1] < chunk_dict[1:]):
            raise StorageError("chunk dictionary must be strictly ascending")
        self.chunk_dict = np.ascontiguousarray(chunk_dict, dtype=np.uint32)
        self.elements = elements

    @classmethod
    def from_trusted_parts(
        cls, chunk_dict: np.ndarray, elements: Elements
    ) -> "ColumnChunk":
        """Wrap pre-validated parts without copying or re-checking.

        Arena attaches rebuild every chunk from buffers whose builder
        already validated them; re-running the strictly-ascending scan
        per attach would eat into the zero-copy win, and the uint32
        views must be adopted as-is (read-only). Callers guarantee a
        1-d strictly-ascending uint32 ``chunk_dict``.
        """
        chunk = cls.__new__(cls)
        chunk.chunk_dict = chunk_dict
        chunk.elements = elements
        return chunk

    @classmethod
    def from_global_ids(
        cls, global_ids: np.ndarray, optimized: bool = True
    ) -> "ColumnChunk":
        """Build from the per-row global-ids of this chunk's column.

        ``np.unique`` directly yields the sorted chunk-dictionary and
        the per-row chunk-ids (the inverse indices).
        """
        array = np.asarray(global_ids, dtype=np.uint32)
        chunk_dict, chunk_ids = np.unique(array, return_inverse=True)
        elements = encode_elements(
            chunk_ids.astype(np.uint32), int(chunk_dict.size), optimized=optimized
        )
        return cls(chunk_dict, elements)

    @property
    def n_rows(self) -> int:
        return self.elements.n_rows

    @property
    def n_distinct(self) -> int:
        """Number of distinct values (chunk-dictionary entries)."""
        return int(self.chunk_dict.size)

    def min_global_id(self) -> int:
        """Smallest global-id present (value range lower bound)."""
        if not self.chunk_dict.size:
            raise StorageError("empty chunk dictionary has no min")
        return int(self.chunk_dict[0])

    def max_global_id(self) -> int:
        """Largest global-id present (value range upper bound)."""
        if not self.chunk_dict.size:
            raise StorageError("empty chunk dictionary has no max")
        return int(self.chunk_dict[-1])

    def chunk_id_of(self, global_id: int) -> int | None:
        """Chunk-id for ``global_id``, or None if absent from the chunk."""
        index = int(np.searchsorted(self.chunk_dict, global_id))
        if index < self.chunk_dict.size and self.chunk_dict[index] == global_id:
            return index
        return None

    def contains_global_id(self, global_id: int) -> bool:
        return self.chunk_id_of(global_id) is not None

    def contains_any(self, global_ids: np.ndarray) -> bool:
        """Whether any of ``global_ids`` occurs in this chunk."""
        if not global_ids.size or not self.chunk_dict.size:
            return False
        positions = np.searchsorted(self.chunk_dict, global_ids)
        positions = np.clip(positions, 0, self.chunk_dict.size - 1)
        return bool(np.any(self.chunk_dict[positions] == global_ids))

    def chunk_ids_of(self, global_ids: np.ndarray) -> np.ndarray:
        """Chunk-ids of the given global-ids, dropping absent ones."""
        if not global_ids.size or not self.chunk_dict.size:
            return np.zeros(0, dtype=np.int64)
        positions = np.searchsorted(self.chunk_dict, global_ids)
        positions = np.clip(positions, 0, self.chunk_dict.size - 1)
        present = self.chunk_dict[positions] == global_ids
        return positions[present].astype(np.int64)

    def row_global_ids(self) -> np.ndarray:
        """Per-row global-ids (dereferencing elements via the dict)."""
        return self.chunk_dict[self.elements.as_array()]

    def dict_size_bytes(self) -> int:
        """Analytic size of the chunk-dictionary (4 bytes/entry)."""
        return 4 * int(self.chunk_dict.size)

    def elements_size_bytes(self) -> int:
        return self.elements.size_bytes()

    def size_bytes(self) -> int:
        return self.dict_size_bytes() + self.elements_size_bytes()

    def to_bytes(self) -> bytes:
        """Serialized dict + elements payload (for compression benches).

        The chunk-dictionary is strictly ascending, so it serializes as
        varint deltas — small consecutive gaps shrink to one byte,
        which is what makes the Zippy-stage experiments of Section 3
        behave like the paper's.
        """
        from repro.compress.varint import encode_varint

        out = bytearray(encode_varint(int(self.chunk_dict.size)))
        previous = 0
        for gid in self.chunk_dict:
            out += encode_varint(int(gid) - previous)
            previous = int(gid)
        out += self.elements.to_bytes()
        return bytes(out)


class Chunk:
    """A horizontal slice of the table: one ColumnChunk per field."""

    def __init__(
        self, chunk_index: int, n_rows: int, columns: Mapping[str, ColumnChunk]
    ) -> None:
        for name, column in columns.items():
            if column.n_rows != n_rows:
                raise StorageError(
                    f"column {name!r} has {column.n_rows} rows, chunk has {n_rows}"
                )
        self.chunk_index = chunk_index
        self.n_rows = n_rows
        self.columns = dict(columns)

    def column(self, field: str) -> ColumnChunk:
        try:
            return self.columns[field]
        except KeyError:
            raise StorageError(f"chunk has no column {field!r}") from None

    def add_column(self, field: str, column: ColumnChunk) -> None:
        """Attach a (possibly virtual) column to this chunk."""
        if column.n_rows != self.n_rows:
            raise StorageError(
                f"column {field!r} has {column.n_rows} rows, chunk has {self.n_rows}"
            )
        self.columns[field] = column

    def size_bytes(self, fields: list[str] | None = None) -> int:
        """Total encoded size over ``fields`` (default: all columns)."""
        names = fields if fields is not None else list(self.columns)
        return sum(self.column(name).size_bytes() for name in names)
