"""Sub-dictionaries — Section 5 "Further Optimizing the Global-Dictionaries".

"When only few chunks are active for a query, there is actually no need
to have the entire dictionary in memory. To this end, we split a
dictionary up into sub-dictionaries. One of these representing the most
frequent values, each of the others representing values from several
chunks combined."

:class:`SubDictionarySet` partitions a column's global-ids into:

- a *hot* sub-dictionary holding the globally most frequent values
  (frequency = number of chunks a value occurs in), and
- one sub-dictionary per *chunk group* (``group_size`` consecutive
  chunks), holding the remaining values occurring in that group.

Each sub-dictionary carries a Bloom filter so a value lookup can skip
loading sub-dictionaries that certainly do not contain it. Loads are
counted, letting experiments show the memory-residency win when few
chunks are active.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import DictionaryError
from repro.storage.bloom import BloomFilter
from repro.storage.dictionary import Dictionary

if TYPE_CHECKING:  # annotation-only: core.datastore imports storage modules
    from repro.core.datastore import FieldStore


@dataclass
class SubDictionary:
    """A slice of the global dictionary: id -> value for its members."""

    name: str
    entries: dict[int, object]  # global-id -> value
    bloom: BloomFilter
    chunk_indexes: frozenset[int]
    size_bytes: int
    value_to_id: dict = field(init=False)

    def __post_init__(self) -> None:
        self.value_to_id = {value: gid for gid, value in self.entries.items()}


@dataclass
class SubDictStats:
    """How many sub-dictionary loads queries required / avoided."""

    loads: int = 0
    bloom_skips: int = 0
    group_skips: int = 0
    bytes_loaded: int = 0


class SubDictionarySet:
    """The global dictionary split into hot + per-chunk-group parts."""

    def __init__(
        self,
        dictionary: Dictionary,
        chunk_global_ids: Sequence[np.ndarray],
        hot_fraction: float = 0.1,
        group_size: int = 8,
        bloom_fpp: float = 0.01,
    ) -> None:
        """Split ``dictionary`` given each chunk's occurring global-ids.

        ``chunk_global_ids[i]`` is the chunk-dictionary (sorted
        global-ids) of chunk ``i`` for this column.
        """
        if not 0 <= hot_fraction <= 1:
            raise DictionaryError("hot_fraction must be in [0, 1]")
        if group_size < 1:
            raise DictionaryError("group_size must be >= 1")
        self._stats = SubDictStats()
        self._loaded: set[str] = set()

        n_values = len(dictionary)
        distinct_per_chunk: list[np.ndarray] = []
        for index, gids in enumerate(chunk_global_ids):
            if gids.size and int(gids.max()) >= n_values:
                raise DictionaryError(
                    f"chunk {index} references global-id {int(gids.max())} "
                    f">= dictionary size {n_values}"
                )
            distinct_per_chunk.append(np.unique(np.asarray(gids, dtype=np.int64)))
        # Frequency = number of chunks a value occurs in: one bincount
        # over the concatenated per-chunk distinct ids.
        if distinct_per_chunk:
            frequency = np.bincount(
                np.concatenate(distinct_per_chunk), minlength=n_values
            )
        else:
            frequency = np.zeros(n_values, dtype=np.int64)
        n_hot = int(round(hot_fraction * n_values))
        if n_hot:
            order = np.argsort(-frequency, kind="stable")
            hot_ids = np.sort(order[:n_hot]).astype(np.int64)
        else:
            hot_ids = np.empty(0, dtype=np.int64)

        # One bulk decode of the dictionary instead of a value() walk
        # per sub-dictionary entry.
        value_by_gid = dictionary.values()

        def make(
            name: str, gids: np.ndarray, chunks: frozenset[int]
        ) -> SubDictionary:
            entries = {int(gid): value_by_gid[int(gid)] for gid in gids}
            size = sum(
                len(v.encode("utf-8")) + 8 if isinstance(v, str) else 12
                for v in entries.values()
            )
            return SubDictionary(
                name=name,
                entries=entries,
                bloom=BloomFilter.build(entries.values(), fpp=bloom_fpp),
                chunk_indexes=chunks,
                size_bytes=size,
            )

        all_chunks = frozenset(range(len(chunk_global_ids)))
        self._hot = make("hot", hot_ids, all_chunks)
        self._groups: list[SubDictionary] = []
        for start in range(0, len(chunk_global_ids), group_size):
            stop = min(start + group_size, len(chunk_global_ids))
            member = distinct_per_chunk[start:stop]
            merged = (
                np.unique(np.concatenate(member))
                if member
                else np.empty(0, dtype=np.int64)
            )
            remaining = np.setdiff1d(merged, hot_ids, assume_unique=True)
            self._groups.append(
                make(
                    f"group-{start // group_size}",
                    remaining,
                    frozenset(range(start, stop)),
                )
            )

    @classmethod
    def from_field(
        cls,
        field: "FieldStore",
        hot_fraction: float = 0.1,
        group_size: int = 8,
        bloom_fpp: float = 0.01,
    ) -> "SubDictionarySet":
        """Split a datastore field's global dictionary by its chunks.

        ``field`` is a :class:`repro.core.datastore.FieldStore`; its
        chunk-dictionaries provide the per-chunk occurring global-ids.
        """
        return cls(
            field.dictionary,
            [chunk.chunk_dict for chunk in field.chunks],
            hot_fraction=hot_fraction,
            group_size=group_size,
            bloom_fpp=bloom_fpp,
        )

    @property
    def stats(self) -> SubDictStats:
        return self._stats

    @property
    def n_subdicts(self) -> int:
        return 1 + len(self._groups)

    def total_size_bytes(self) -> int:
        return self._hot.size_bytes + sum(g.size_bytes for g in self._groups)

    def resident_size_bytes(self) -> int:
        """Bytes of sub-dictionaries that queries actually loaded."""
        total = 0
        for sub in [self._hot, *self._groups]:
            if sub.name in self._loaded:
                total += sub.size_bytes
        return total

    def _load(self, sub: SubDictionary) -> None:
        if sub.name not in self._loaded:
            self._loaded.add(sub.name)
            self._stats.loads += 1
            self._stats.bytes_loaded += sub.size_bytes

    def evict_all(self) -> None:
        """Drop every loaded sub-dictionary (e.g. between query sessions)."""
        self._loaded.clear()

    def lookup_global_id(
        self, value: object, active_chunks: set[int] | None = None
    ) -> int | None:
        """Find the global-id of ``value``, loading as little as possible.

        Only sub-dictionaries whose chunk groups intersect
        ``active_chunks`` (all chunks if None) are considered, and of
        those only the ones whose Bloom filter matches are loaded.
        """
        candidates = [self._hot, *self._groups]
        for sub in candidates:
            if active_chunks is not None and not (
                sub.chunk_indexes & active_chunks
            ):
                self._stats.group_skips += 1
                continue
            if not sub.bloom.might_contain(value):
                self._stats.bloom_skips += 1
                continue
            self._load(sub)
            gid = sub.value_to_id.get(value)
            if gid is not None:
                return gid
        return None

    def lookup_value(self, global_id: int) -> object:
        """Value for ``global_id`` (loads the covering sub-dictionary)."""
        for sub in [self._hot, *self._groups]:
            if global_id in sub.entries:
                self._load(sub)
                return sub.entries[global_id]
        raise DictionaryError(f"global-id {global_id} not in any sub-dictionary")
