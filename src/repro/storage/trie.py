"""The nibble-trie global dictionary — Section 3 "Optimize Global-Dictionaries".

Strings are stored in a trie whose inner nodes represent 4-bit parts of
the UTF-8 bytes (high nibble first), "as opposed to the more standard
choice of characters". The whole trie is serialized into one
"handcrafted encoding stored in a large byte array"; lookups walk that
array directly, iterating over at most 16 children per node, exactly as
the paper describes.

Two properties make this compact and navigable:

- *path compression*: maximal single-child chains are collapsed into a
  per-node ``skip`` nibble sequence (packed two per byte), so unique
  suffixes cost their raw bytes while shared prefixes are stored once —
  this is where the paper's 67 MB -> 3.4 MB ``table_name`` reduction
  comes from;
- a nibble-order depth-first walk enumerates strings in byte-
  lexicographic (== code-point) order, so global-ids fall out of the
  walk: the id of a string is its pre-order terminal index. Both lookup
  directions work without auxiliary structures.

Node wire layout (recursive)::

    node  := flags(1) [varint(n_skip_nibbles) packed_nibbles]
             mask(2, little) varint(subtree_terminal_count) child*
    child := varint(len(node_bytes)) node

``flags``: bit 0 = terminal (a string ends after this node's skip),
bit 1 = node has a skip sequence. ``mask`` bit ``i`` marks a child edge
for nibble ``i``.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.compress.varint import decode_varint, encode_varint
from repro.errors import DictionaryError
from repro.storage.dictionary import Dictionary

_TERMINAL = 0x01
_HAS_SKIP = 0x02


class _BuildNode:
    """Transient trie node used only during construction."""

    __slots__ = ("children", "terminal", "count", "skip")

    def __init__(self) -> None:
        self.children: dict[int, _BuildNode] = {}
        self.terminal = False
        self.count = 0
        self.skip: list[int] = []


def _nibbles(value: str) -> list[int]:
    """The UTF-8 nibble sequence of ``value`` (high nibble first)."""
    out: list[int] = []
    for byte in value.encode("utf-8"):
        out.append(byte >> 4)
        out.append(byte & 0x0F)
    return out


def _pack_nibbles(nibbles: Sequence[int]) -> bytes:
    """Pack nibbles two per byte (high first), zero-padding the tail."""
    out = bytearray()
    for i in range(0, len(nibbles), 2):
        high = nibbles[i]
        low = nibbles[i + 1] if i + 1 < len(nibbles) else 0
        out.append((high << 4) | low)
    return bytes(out)


def _unpack_nibbles(data: bytes, count: int) -> list[int]:
    out: list[int] = []
    for byte in data:
        out.append(byte >> 4)
        out.append(byte & 0x0F)
    return out[:count]


def _build(values: Sequence[str]) -> _BuildNode:
    root = _BuildNode()
    for value in values:
        node = root
        for nibble in _nibbles(value):
            child = node.children.get(nibble)
            if child is None:
                child = _BuildNode()
                node.children[nibble] = child
            node = child
        if node.terminal:
            raise DictionaryError(f"duplicate dictionary value {value!r}")
        node.terminal = True
    _compress(root)
    _finish(root)
    return root


def _compress(node: _BuildNode) -> None:
    """Collapse single-child non-terminal chains into skip sequences."""
    for nibble, child in list(node.children.items()):
        # Walk the maximal chain below this edge.
        skip: list[int] = []
        current = child
        while (
            not current.terminal
            and len(current.children) == 1
            and not current.skip
        ):
            (next_nibble, next_child), = current.children.items()
            skip.append(next_nibble)
            current = next_child
        if skip:
            current.skip = skip
            node.children[nibble] = current
        _compress(current)


def _finish(node: _BuildNode) -> int:
    count = 1 if node.terminal else 0
    for child in node.children.values():
        count += _finish(child)
    node.count = count
    return count


def _serialize(node: _BuildNode, out: bytearray) -> None:
    flags = (_TERMINAL if node.terminal else 0) | (
        _HAS_SKIP if node.skip else 0
    )
    out.append(flags)
    if node.skip:
        out += encode_varint(len(node.skip))
        out += _pack_nibbles(node.skip)
    mask = 0
    for nibble in node.children:
        mask |= 1 << nibble
    out += mask.to_bytes(2, "little")
    out += encode_varint(node.count)
    for nibble in sorted(node.children):
        child_bytes = bytearray()
        _serialize(node.children[nibble], child_bytes)
        out += encode_varint(len(child_bytes))
        out += child_bytes


class TrieDictionary(Dictionary):
    """String dictionary backed by a serialized, path-compressed nibble trie."""

    kind = "trie"

    def __init__(self, buffer: bytes, n_values: int, has_null: bool = False) -> None:
        super().__init__(has_null)
        self._buffer = buffer
        self._count = n_values

    @classmethod
    def from_sorted(
        cls, values: Sequence[str], has_null: bool = False
    ) -> "TrieDictionary":
        """Build from strictly sorted distinct strings."""
        if any(values[i] >= values[i + 1] for i in range(len(values) - 1)):
            raise DictionaryError("trie dictionary requires strictly sorted input")
        out = bytearray()
        _serialize(_build(values), out)
        return cls(bytes(out), len(values), has_null=has_null)

    @classmethod
    def from_values(
        cls, values: Sequence[Any], has_null: bool | None = None
    ) -> "TrieDictionary":
        """Build from arbitrary (unsorted, possibly null) values."""
        distinct = set(values)
        null_seen = None in distinct
        distinct.discard(None)
        return cls.from_sorted(
            sorted(distinct),
            has_null=null_seen if has_null is None else has_null,
        )

    # -- node parsing ----------------------------------------------------
    def _node(self, pos: int) -> tuple[bool, list[int], int, int, int]:
        """Parse a node; returns (terminal, skip, mask, count, body_pos)."""
        buf = self._buffer
        flags = buf[pos]
        pos += 1
        skip: list[int] = []
        if flags & _HAS_SKIP:
            n_skip, pos = decode_varint(buf, pos)
            n_bytes = (n_skip + 1) // 2
            skip = _unpack_nibbles(buf[pos : pos + n_bytes], n_skip)
            pos += n_bytes
        mask = int.from_bytes(buf[pos : pos + 2], "little")
        pos += 2
        count, pos = decode_varint(buf, pos)
        return bool(flags & _TERMINAL), skip, mask, count, pos

    def _children(self, mask: int, body: int):
        """Yield (nibble, node_pos, node_len) for each child, in order."""
        pos = body
        for nibble in range(16):
            if mask & (1 << nibble):
                length, node_pos = decode_varint(self._buffer, pos)
                yield nibble, node_pos, length
                pos = node_pos + length

    def _child_count(self, node_pos: int) -> int:
        """Subtree terminal count of the node at ``node_pos`` (header peek)."""
        buf = self._buffer
        flags = buf[node_pos]
        pos = node_pos + 1
        if flags & _HAS_SKIP:
            n_skip, pos = decode_varint(buf, pos)
            pos += (n_skip + 1) // 2
        count, __ = decode_varint(buf, pos + 2)
        return count

    # -- Dictionary interface ---------------------------------------------
    @property
    def _n_non_null(self) -> int:
        return self._count

    def _value_at(self, index: int) -> str:
        if not 0 <= index < self._count:
            raise DictionaryError(f"trie rank {index} out of range")
        nibbles: list[int] = []
        pos = 0
        remaining = index
        while True:
            terminal, skip, mask, __, body = self._node(pos)
            nibbles.extend(skip)
            if terminal:
                if remaining == 0:
                    break
                remaining -= 1
            descended = False
            for nibble, node_pos, __ in self._children(mask, body):
                count = self._child_count(node_pos)
                if remaining < count:
                    nibbles.append(nibble)
                    pos = node_pos
                    descended = True
                    break
                remaining -= count
            if not descended:
                raise DictionaryError("corrupt trie: rank walk fell off")
        raw = bytes(
            (nibbles[i] << 4) | nibbles[i + 1] for i in range(0, len(nibbles), 2)
        )
        return raw.decode("utf-8")

    def _rank_of(self, value: Any) -> int | None:
        if not isinstance(value, str):
            return None
        target = _nibbles(value)
        rank = 0
        pos = 0
        consumed = 0
        # The root never has a skip; loop invariant: ``pos`` is a node
        # whose skip has not yet been matched against the target.
        while True:
            terminal, skip, mask, __, body = self._node(pos)
            if skip:
                if target[consumed : consumed + len(skip)] != skip:
                    return None
                consumed += len(skip)
            if consumed == len(target):
                return rank if terminal else None
            if terminal:
                rank += 1
            wanted = target[consumed]
            if not mask & (1 << wanted):
                return None
            for nibble, node_pos, __ in self._children(mask, body):
                if nibble == wanted:
                    pos = node_pos
                    break
                rank += self._child_count(node_pos)
            consumed += 1

    def _rank_lower_bound(self, value: Any) -> int:
        """Count stored strings strictly smaller than ``value``.

        Walks like :meth:`_rank_of` but on any divergence adds the
        terminal counts of the subtrees that sort before the target.
        UTF-8 byte (== nibble) order equals code-point order, so the
        walk implements string comparison exactly.
        """
        if not isinstance(value, str):
            raise DictionaryError(
                f"cannot order-compare trie dictionary with {type(value).__name__}"
            )
        target = _nibbles(value)
        rank = 0
        pos = 0
        consumed = 0
        while True:
            terminal, skip, mask, count, body = self._node(pos)
            if skip:
                remaining = target[consumed : consumed + len(skip)]
                for i, nibble in enumerate(remaining):
                    if skip[i] < nibble:
                        # Whole subtree sorts before the target.
                        return rank + count
                    if skip[i] > nibble:
                        return rank
                if len(remaining) < len(skip):
                    # Target ends inside the skip: target < subtree.
                    return rank
                consumed += len(skip)
            if consumed == len(target):
                # Strings equal to the target are not strictly smaller.
                return rank
            if terminal:
                rank += 1  # the string ending here is a strict prefix
            wanted = target[consumed]
            descended = False
            for nibble, node_pos, __ in self._children(mask, body):
                if nibble < wanted:
                    rank += self._child_count(node_pos)
                elif nibble == wanted:
                    pos = node_pos
                    consumed += 1
                    descended = True
                    break
                else:
                    break
            if not descended:
                return rank

    def _payload_size(self) -> int:
        return len(self._buffer)

    def to_bytes(self) -> bytes:
        return self._buffer
