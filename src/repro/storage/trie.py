"""The nibble-trie global dictionary — Section 3 "Optimize Global-Dictionaries".

Strings are stored in a trie whose inner nodes represent 4-bit parts of
the UTF-8 bytes (high nibble first), "as opposed to the more standard
choice of characters". The whole trie is serialized into one
"handcrafted encoding stored in a large byte array"; lookups walk that
array directly, iterating over at most 16 children per node, exactly as
the paper describes.

Two properties make this compact and navigable:

- *path compression*: maximal single-child chains are collapsed into a
  per-node ``skip`` nibble sequence (packed two per byte), so unique
  suffixes cost their raw bytes while shared prefixes are stored once —
  this is where the paper's 67 MB -> 3.4 MB ``table_name`` reduction
  comes from;
- a nibble-order depth-first walk enumerates strings in byte-
  lexicographic (== code-point) order, so global-ids fall out of the
  walk: the id of a string is its pre-order terminal index. Both lookup
  directions work without auxiliary structures.

Node wire layout (recursive)::

    node  := flags(1) [varint(n_skip_nibbles) packed_nibbles]
             mask(2, little) varint(subtree_terminal_count) child*
    child := varint(len(node_bytes)) node

``flags``: bit 0 = terminal (a string ends after this node's skip),
bit 1 = node has a skip sequence. ``mask`` bit ``i`` marks a child edge
for nibble ``i``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from repro.compress.varint import decode_varint, encode_varint
from repro.errors import DictionaryError
from repro.storage.dictionary import _BULK_LOOKUP_MIN, _bulk_ranks, Dictionary

_TERMINAL = 0x01
_HAS_SKIP = 0x02


class _BuildNode:
    """Transient trie node used only during construction."""

    __slots__ = ("children", "terminal", "count", "skip")

    def __init__(self) -> None:
        self.children: dict[int, _BuildNode] = {}
        self.terminal = False
        self.count = 0
        self.skip: list[int] = []


def _nibbles(value: str) -> list[int]:
    """The UTF-8 nibble sequence of ``value`` (high nibble first)."""
    out: list[int] = []
    for byte in value.encode("utf-8"):
        out.append(byte >> 4)
        out.append(byte & 0x0F)
    return out


def _pack_nibbles(nibbles: Sequence[int]) -> bytes:
    """Pack nibbles two per byte (high first), zero-padding the tail."""
    out = bytearray()
    for i in range(0, len(nibbles), 2):
        high = nibbles[i]
        low = nibbles[i + 1] if i + 1 < len(nibbles) else 0
        out.append((high << 4) | low)
    return bytes(out)


def _unpack_nibbles(data: bytes, count: int) -> list[int]:
    out: list[int] = []
    for byte in data:
        out.append(byte >> 4)
        out.append(byte & 0x0F)
    return out[:count]


def _build(values: Sequence[str]) -> _BuildNode:
    root = _BuildNode()
    for value in values:
        node = root
        for nibble in _nibbles(value):
            child = node.children.get(nibble)
            if child is None:
                child = _BuildNode()
                node.children[nibble] = child
            node = child
        if node.terminal:
            raise DictionaryError(f"duplicate dictionary value {value!r}")
        node.terminal = True
    _compress(root)
    _finish(root)
    return root


def _compress(node: _BuildNode) -> None:
    """Collapse single-child non-terminal chains into skip sequences."""
    for nibble, child in list(node.children.items()):
        # Walk the maximal chain below this edge.
        skip: list[int] = []
        current = child
        while (
            not current.terminal
            and len(current.children) == 1
            and not current.skip
        ):
            (next_nibble, next_child), = current.children.items()
            skip.append(next_nibble)
            current = next_child
        if skip:
            current.skip = skip
            node.children[nibble] = current
        _compress(current)


def _finish(node: _BuildNode) -> int:
    count = 1 if node.terminal else 0
    for child in node.children.values():
        count += _finish(child)
    node.count = count
    return count


def reference_trie_bytes(values: Sequence[str]) -> bytes:
    """Serialize via the original per-string insert builder.

    Kept as the equivalence oracle for the bulk constructor: property
    tests assert :func:`_bulk_trie_bytes` matches this byte-for-byte.
    """
    out = bytearray()
    _serialize(_build(values), out)
    return bytes(out)


def _nibble_views(
    values: Sequence[str],
) -> tuple[list[bytes], list[bytes], list[bytes]]:
    """Per-string nibble sequences plus both packed phase views.

    Returns ``(seqs, even, odd)``: ``seqs[i]`` is string i's nibble
    sequence one nibble per byte; ``even[i]`` is its UTF-8 encoding
    (packing the nibbles from any even offset is pure slicing of it);
    ``odd[i]`` packs the same nibbles shifted by one (so packing from
    any odd offset is pure slicing too). All three come from single
    vectorized passes over the concatenated encodings instead of
    per-character Python loops.
    """
    encoded = [value.encode("utf-8") for value in values]
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8)
    nibbles = np.empty(blob.size * 2 + 2, dtype=np.uint8)
    nibbles[0:-2:2] = blob >> 4
    nibbles[1:-2:2] = blob & 0x0F
    nibbles[-2:] = 0
    packed = nibbles[:-2].tobytes()
    shifted = ((nibbles[1:-1:2] << 4) | nibbles[2::2]).tobytes() + b"\x00"
    seqs: list[bytes] = []
    odd: list[bytes] = []
    pos = 0
    for item in encoded:
        size = len(item)
        seqs.append(packed[2 * pos : 2 * (pos + size)])
        odd.append(shifted[pos : pos + size + 1])
        pos += size
    return seqs, encoded, odd


def _nibble_sequences(values: Sequence[str]) -> list[bytes]:
    """Nibble sequences (one nibble per byte) for a batch of strings."""
    return _nibble_views(values)[0]


#: Above this padded-matrix size the LCP precompute falls back to a
#: per-pair Python scan (one pathologically long string would otherwise
#: allocate rows x longest-string bytes).
_MAX_LCP_MATRIX_BYTES = 1 << 26


def _adjacent_lcp(seqs: list[bytes]) -> list[int]:
    """``lcp[i]`` = nibbles shared by ``seqs[i-1]`` and ``seqs[i]``.

    (``lcp[0]`` is a placeholder 0.) Computed with one vectorized pass
    over a zero-padded matrix: a sentinel column (16, not a nibble) at
    each sequence's end makes prefix pairs diverge there, so the first
    mismatch column is exactly the pair's common prefix length.
    """
    n = len(seqs)
    if n < 2:
        return [0] * n
    longest = max(map(len, seqs))
    if n * (longest + 1) <= _MAX_LCP_MATRIX_BYTES:
        # One fixed-width 'S' array: numpy packs the rows in a single C
        # pass; the appended sentinel (16, not a nibble) stops prefix
        # pairs at the shorter sequence's end, so the first mismatch
        # column is the exact nibble LCP. ('S' pads with 0x00, a valid
        # nibble — hence the explicit sentinel.)
        arr = np.array([s + b"\x10" for s in seqs])
        width = arr.dtype.itemsize
        mat = arr.view(np.uint8).reshape(n, width)
        lcp = np.argmax(mat[:-1] != mat[1:], axis=1)
        return [0, *lcp.tolist()]
    out = [0]
    for prev, cur in zip(seqs, seqs[1:]):
        bound = min(len(prev), len(cur))
        k = 0
        while k < bound and prev[k] == cur[k]:
            k += 1
        out.append(k)
    return out


def _bulk_trie_bytes(values: Sequence[str]) -> bytes:
    """Serialize the trie for strictly sorted distinct strings in one pass.

    Works on the sorted nibble sequences directly: for the group of
    strings sharing a prefix, the path-compressed skip is the longest
    common extension of the first and last members (sorted order means
    no intermediate member can diverge earlier), and the node is
    terminal exactly when the first member ends there. Child runs are
    looked up, not scanned: position ``i`` starts a new nibble run of
    the (unique) node whose prefix length equals ``lcp[i]``, so the
    boundaries of a node spanning ``[lo, hi)`` with prefix ``end`` are
    the precomputed ``lcp == end`` positions inside ``(lo, hi)``. This
    produces the same bytes as insert+compress+serialize without
    building per-nibble node objects or rescanning groups per level.
    """
    if not values:
        return reference_trie_bytes(values)
    seqs, even_views, odd_views = _nibble_views(values)
    by_lcp: dict[int, list[int]] = {}
    for pos, prefix_len in enumerate(_adjacent_lcp(seqs)):
        if pos:
            by_lcp.setdefault(prefix_len, []).append(pos)

    def packed_skip(index: int, depth: int, end: int) -> bytes:
        """``_pack_nibbles(seqs[index][depth:end])`` by pure slicing."""
        size = end - depth
        n_bytes = (size + 1) >> 1
        if depth & 1:
            start = (depth - 1) >> 1
            chunk = odd_views[index][start : start + n_bytes]
        else:
            start = depth >> 1
            chunk = even_views[index][start : start + n_bytes]
        if size & 1:
            return chunk[:-1] + bytes([chunk[-1] & 0xF0])
        return chunk

    def emit(lo: int, hi: int, depth: int, is_root: bool) -> bytearray:
        first = seqs[lo]
        if is_root:
            end = depth
        elif hi - lo == 1:
            # Single member: the skip runs to the string's end and the
            # node is a terminal leaf — no probing, no children.
            end = len(first)
            if end > depth:
                skip = end - depth
                out = bytearray([_TERMINAL | _HAS_SKIP])
                if skip < 0x80:
                    out.append(skip)
                else:
                    out += encode_varint(skip)
                out += packed_skip(lo, depth, end)
            else:
                out = bytearray([_TERMINAL])
            out += b"\x00\x00\x01"  # empty child mask, count 1
            return out
        else:
            end = depth
            limit = len(first)
            last = seqs[hi - 1]
            while end < limit and first[end] == last[end]:
                end += 1
        terminal = len(first) == end
        out = bytearray()
        flags = (_TERMINAL if terminal else 0) | (
            _HAS_SKIP if end > depth else 0
        )
        out.append(flags)
        if end > depth:
            skip = end - depth
            if skip < 0x80:
                out.append(skip)
            else:
                out += encode_varint(skip)
            out += packed_skip(lo, depth, end)
        positions = by_lcp.get(end)
        if positions:
            a = bisect_right(positions, lo)
            starts = positions[a : bisect_left(positions, hi, a)]
        else:
            starts = []
        if not terminal:
            starts = [lo, *starts]
        mask = 0
        for start in starts:
            mask |= 1 << seqs[start][end]
        out += mask.to_bytes(2, "little")
        out += encode_varint(hi - lo)
        for child_lo, child_hi in zip(starts, [*starts[1:], hi]):
            child_bytes = emit(child_lo, child_hi, end + 1, False)
            child_size = len(child_bytes)
            if child_size < 0x80:
                out.append(child_size)
            else:
                out += encode_varint(child_size)
            out += child_bytes
        return out

    return bytes(emit(0, len(seqs), 0, True))


def _serialize(node: _BuildNode, out: bytearray) -> None:
    flags = (_TERMINAL if node.terminal else 0) | (
        _HAS_SKIP if node.skip else 0
    )
    out.append(flags)
    if node.skip:
        out += encode_varint(len(node.skip))
        out += _pack_nibbles(node.skip)
    mask = 0
    for nibble in node.children:
        mask |= 1 << nibble
    out += mask.to_bytes(2, "little")
    out += encode_varint(node.count)
    for nibble in sorted(node.children):
        child_bytes = bytearray()
        _serialize(node.children[nibble], child_bytes)
        out += encode_varint(len(child_bytes))
        out += child_bytes


class TrieDictionary(Dictionary):
    """String dictionary backed by a serialized, path-compressed nibble trie."""

    kind = "trie"

    def __init__(self, buffer: bytes, n_values: int, has_null: bool = False) -> None:
        super().__init__(has_null)
        self._buffer = buffer
        self._count = n_values
        self._all_values: list[str] | None = None
        self._sorted_cache: np.ndarray | None = None

    @classmethod
    def from_sorted(
        cls, values: Sequence[str], has_null: bool = False
    ) -> "TrieDictionary":
        """Build from strictly sorted distinct strings."""
        if any(a >= b for a, b in zip(values, values[1:])):
            raise DictionaryError("trie dictionary requires strictly sorted input")
        return cls(_bulk_trie_bytes(values), len(values), has_null=has_null)

    @classmethod
    def from_values(
        cls, values: Sequence[Any], has_null: bool | None = None
    ) -> "TrieDictionary":
        """Build from arbitrary (unsorted, possibly null) values."""
        distinct = set(values)
        null_seen = None in distinct
        distinct.discard(None)
        return cls.from_sorted(
            sorted(distinct),
            has_null=null_seen if has_null is None else has_null,
        )

    # -- node parsing ----------------------------------------------------
    def _node(self, pos: int) -> tuple[bool, list[int], int, int, int]:
        """Parse a node; returns (terminal, skip, mask, count, body_pos)."""
        buf = self._buffer
        flags = buf[pos]
        pos += 1
        skip: list[int] = []
        if flags & _HAS_SKIP:
            n_skip, pos = decode_varint(buf, pos)
            n_bytes = (n_skip + 1) // 2
            skip = _unpack_nibbles(buf[pos : pos + n_bytes], n_skip)
            pos += n_bytes
        mask = int.from_bytes(buf[pos : pos + 2], "little")
        pos += 2
        count, pos = decode_varint(buf, pos)
        return bool(flags & _TERMINAL), skip, mask, count, pos

    def _children(self, mask: int, body: int):
        """Yield (nibble, node_pos, node_len) for each child, in order."""
        pos = body
        for nibble in range(16):
            if mask & (1 << nibble):
                length, node_pos = decode_varint(self._buffer, pos)
                yield nibble, node_pos, length
                pos = node_pos + length

    def _child_count(self, node_pos: int) -> int:
        """Subtree terminal count of the node at ``node_pos`` (header peek)."""
        buf = self._buffer
        flags = buf[node_pos]
        pos = node_pos + 1
        if flags & _HAS_SKIP:
            n_skip, pos = decode_varint(buf, pos)
            pos += (n_skip + 1) // 2
        count, __ = decode_varint(buf, pos + 2)
        return count

    # -- Dictionary interface ---------------------------------------------
    @property
    def _n_non_null(self) -> int:
        return self._count

    def _decode_all(self) -> list[str]:
        """Every stored string in rank order from one pre-order buffer walk.

        Decoding the whole trie once and caching the list turns repeated
        rank lookups (``values()``, bulk ``global_ids``) from per-value
        root-to-leaf walks into plain list/array indexing.
        """
        if self._all_values is None:
            terminal_paths: list[bytes] = []
            path = bytearray()
            # Explicit stack instead of recursion: compressed tries can
            # be deeper than the interpreter's recursion limit allows.
            stack: list[tuple[int, int, int]] = [(0, 0, -1)]
            while stack:
                pos, base_len, edge = stack.pop()
                del path[base_len:]
                if edge >= 0:
                    path.append(edge)
                terminal, skip, mask, __, body = self._node(pos)
                path.extend(skip)
                if terminal:
                    terminal_paths.append(bytes(path))
                prefix_len = len(path)
                for nibble, node_pos, __ in reversed(
                    list(self._children(mask, body))
                ):
                    stack.append((node_pos, prefix_len, nibble))
            if len(terminal_paths) != self._count:
                raise DictionaryError(
                    f"corrupt trie: decoded {len(terminal_paths)} values,"
                    f" expected {self._count}"
                )
            if any(len(path_bytes) & 1 for path_bytes in terminal_paths):
                raise DictionaryError("corrupt trie: odd-length nibble path")
            # Repack every terminal's nibbles into UTF-8 bytes in one
            # vectorized pass instead of a per-nibble loop per string.
            nibbles = np.frombuffer(b"".join(terminal_paths), dtype=np.uint8)
            packed = ((nibbles[0::2] << 4) | nibbles[1::2]).tobytes()
            out: list[str] = []
            offset = 0
            for path_bytes in terminal_paths:
                size = len(path_bytes) // 2
                out.append(packed[offset : offset + size].decode("utf-8"))
                offset += size
            self._all_values = out
        return self._all_values

    def values(self) -> list[Any]:
        decoded = self._decode_all()
        if self._has_null:
            return [None, *decoded]
        return list(decoded)

    def global_ids(self, values: Iterable[Any]) -> list[int | None]:
        query = list(values)
        if len(query) < _BULK_LOOKUP_MIN or self._count == 0:
            return [self.global_id(value) for value in query]
        if self._sorted_cache is None:
            cache = np.empty(self._count, dtype=object)
            cache[:] = self._decode_all()
            self._sorted_cache = cache
        return _bulk_ranks(self._sorted_cache, query, str, self._has_null)

    def _value_at(self, index: int) -> str:
        if not 0 <= index < self._count:
            raise DictionaryError(f"trie rank {index} out of range")
        if self._all_values is not None:
            return self._all_values[index]
        nibbles: list[int] = []
        pos = 0
        remaining = index
        while True:
            terminal, skip, mask, __, body = self._node(pos)
            nibbles.extend(skip)
            if terminal:
                if remaining == 0:
                    break
                remaining -= 1
            descended = False
            for nibble, node_pos, __ in self._children(mask, body):
                count = self._child_count(node_pos)
                if remaining < count:
                    nibbles.append(nibble)
                    pos = node_pos
                    descended = True
                    break
                remaining -= count
            if not descended:
                raise DictionaryError("corrupt trie: rank walk fell off")
        raw = bytes(
            (nibbles[i] << 4) | nibbles[i + 1] for i in range(0, len(nibbles), 2)
        )
        return raw.decode("utf-8")

    def _rank_of(self, value: Any) -> int | None:
        if not isinstance(value, str):
            return None
        target = _nibbles(value)
        rank = 0
        pos = 0
        consumed = 0
        # The root never has a skip; loop invariant: ``pos`` is a node
        # whose skip has not yet been matched against the target.
        while True:
            terminal, skip, mask, __, body = self._node(pos)
            if skip:
                if target[consumed : consumed + len(skip)] != skip:
                    return None
                consumed += len(skip)
            if consumed == len(target):
                return rank if terminal else None
            if terminal:
                rank += 1
            wanted = target[consumed]
            if not mask & (1 << wanted):
                return None
            for nibble, node_pos, __ in self._children(mask, body):
                if nibble == wanted:
                    pos = node_pos
                    break
                rank += self._child_count(node_pos)
            consumed += 1

    def _rank_lower_bound(self, value: Any) -> int:
        """Count stored strings strictly smaller than ``value``.

        Walks like :meth:`_rank_of` but on any divergence adds the
        terminal counts of the subtrees that sort before the target.
        UTF-8 byte (== nibble) order equals code-point order, so the
        walk implements string comparison exactly.
        """
        if not isinstance(value, str):
            raise DictionaryError(
                f"cannot order-compare trie dictionary with {type(value).__name__}"
            )
        target = _nibbles(value)
        rank = 0
        pos = 0
        consumed = 0
        while True:
            terminal, skip, mask, count, body = self._node(pos)
            if skip:
                remaining = target[consumed : consumed + len(skip)]
                for i, nibble in enumerate(remaining):
                    if skip[i] < nibble:
                        # Whole subtree sorts before the target.
                        return rank + count
                    if skip[i] > nibble:
                        return rank
                if len(remaining) < len(skip):
                    # Target ends inside the skip: target < subtree.
                    return rank
                consumed += len(skip)
            if consumed == len(target):
                # Strings equal to the target are not strictly smaller.
                return rank
            if terminal:
                rank += 1  # the string ending here is a strict prefix
            wanted = target[consumed]
            descended = False
            for nibble, node_pos, __ in self._children(mask, body):
                if nibble < wanted:
                    rank += self._child_count(node_pos)
                elif nibble == wanted:
                    pos = node_pos
                    consumed += 1
                    descended = True
                    break
                else:
                    break
            if not descended:
                return rank

    def _payload_size(self) -> int:
        return len(self._buffer)

    def to_bytes(self) -> bytes:
        return self._buffer
