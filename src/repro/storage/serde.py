"""Persisting a DataStore to disk and loading it back.

The paper's production system keeps data in memory but loads it from
disk on first access ("the data is loaded dynamically to a machine the
first time it receives a query for it"). This module provides that disk
representation: a single self-describing file holding every original
field's global dictionary and per-chunk (chunk-dictionary, elements)
pairs, exactly as encoded in memory — the encodings are "ready to use
without any preprocessing", so loading is a structural parse, not a
re-import.

Virtual fields are intentionally not persisted: they re-materialize
lazily from the originals (Section 5's "computed once on first
access"), and their canonical-SQL keys are environment-independent.

File layout (format 2)::

    magic 'PDS2'
    crc32(everything after this word)  # 4 bytes little-endian
    varint(header_len) header-JSON     # options, schema, per-field meta
    per field, in header order, one *section*:
        varint(dict_payload_len) dict_payload
        per chunk:
            chunk-dict: varint(n) then n delta varints
            elements:   tag(1) varint(n_rows) varint(payload_len) payload

When the encoding advisor chose a codec for a field (its header meta
carries ``"codec"``), that field's section is instead stored as
``varint(compressed_len) compressed_section`` where
``compressed_section`` is the section above run through the named
registry codec; the meta also records the advisor's ``codec_choice``
(predicted vs. actual ratio, sample size, scoring mode) for
``repro describe`` and FSCK012. Fields without a recorded codec are
byte-identical to files written before the advisor existed.

The checksum makes corruption detection exact: any bit flip or
truncation after the magic word fails the CRC before parsing begins,
so :func:`load_store` raises :class:`~repro.errors.StorageError`
instead of returning silently wrong data. Format-1 files (magic
``PDS1``, no checksum) still load. Every parse failure — bad magic,
checksum mismatch, truncated payloads, malformed headers — surfaces as
``StorageError`` so callers (and ``repro fsck``) can rely on one
exception family.

The per-piece codecs (:func:`encode_chunk_dict`,
:func:`encode_elements`, :func:`encode_dictionary` and their decode
twins) are public: :mod:`repro.analysis.fsck` uses them to round-trip
every chunk of a live store when verifying the invariant catalog.
"""

from __future__ import annotations

import json
import zlib

import numpy as np

from repro.compress.registry import compress, decompress
from repro.compress.varint import (
    decode_varint,
    decode_varint_stream,
    encode_varint,
    encode_varint_array,
)
from repro.core.datastore import DataStore, DataStoreOptions, FieldStore
from repro.errors import CompressionError, StorageError
from repro.storage.bitset import BitSet
from repro.storage.chunk import ColumnChunk
from repro.storage.dictionary import (
    Dictionary,
    NumericDictionary,
    SortedStringDictionary,
)
from repro.storage.elements import (
    BitsetElements,
    ConstantElements,
    Elements,
    PackedElements,
)
from repro.storage.trie import TrieDictionary

_MAGIC = b"PDS2"
_MAGIC_V1 = b"PDS1"

_ELEMENT_TAGS = {"constant": 0, "bitset": 1, "packed": 2}
_TAG_TO_NAME = {tag: name for name, tag in _ELEMENT_TAGS.items()}


# -- element payloads -----------------------------------------------------------


def encode_elements(elements: Elements) -> bytes:
    """Serialize one elements array (tag + row count + payload)."""
    name = elements.encoding_name
    out = bytearray([_ELEMENT_TAGS[name]])
    out += encode_varint(elements.n_rows)
    if isinstance(elements, PackedElements):
        out.append(elements.width)
        payload = elements.to_bytes()
    elif isinstance(elements, ConstantElements):
        out.append(0)
        payload = encode_varint(elements.chunk_id)
    else:
        out.append(0)
        payload = elements.to_bytes()
    out += encode_varint(len(payload))
    out += payload
    return bytes(out)


def decode_elements(data: bytes, pos: int) -> tuple[Elements, int]:
    """Parse one elements array; returns it and the next read position."""
    tag = data[pos]
    pos += 1
    n_rows, pos = decode_varint(data, pos)
    width = data[pos]
    pos += 1
    payload_len, pos = decode_varint(data, pos)
    if pos + payload_len > len(data):
        raise StorageError(
            f"elements payload truncated: need {payload_len} bytes, "
            f"{len(data) - pos} left"
        )
    payload = bytes(data[pos : pos + payload_len])
    pos += payload_len
    name = _TAG_TO_NAME.get(tag)
    if name == "constant":
        chunk_id, __ = decode_varint(payload, 0)
        return ConstantElements(n_rows, chunk_id), pos
    if name == "bitset":
        return BitsetElements(BitSet.from_bytes(payload, n_rows)), pos
    if name == "packed":
        dtype = {1: np.uint8, 2: np.uint16, 4: np.uint32}.get(width)
        if dtype is None:
            raise StorageError(f"bad packed width {width} in store file")
        ids = np.frombuffer(payload, dtype=dtype)
        if ids.size != n_rows:
            raise StorageError(
                f"elements payload holds {ids.size} rows, header says {n_rows}"
            )
        return PackedElements(ids, width), pos
    raise StorageError(f"unknown elements tag {tag} in store file")


# -- chunk dictionaries -----------------------------------------------------------


def encode_chunk_dict(chunk_dict: np.ndarray) -> bytes:
    """Serialize a chunk-dictionary as delta varints.

    One bulk pass: ``np.diff`` for the deltas, then the vectorized
    varint encoder — byte-identical to encoding each delta with
    :func:`encode_varint` (which also means unsorted input still raises
    :class:`~repro.errors.CompressionError` on the negative delta).
    """
    head = encode_varint(int(chunk_dict.size))
    if not chunk_dict.size:
        return head
    deltas = np.diff(chunk_dict.astype(np.int64, copy=False), prepend=0)
    return head + encode_varint_array(deltas)


def decode_chunk_dict(data: bytes, pos: int) -> tuple[np.ndarray, int]:
    """Parse a chunk-dictionary; returns it and the next read position."""
    count, pos = decode_varint(data, pos)
    if not count:
        return np.empty(0, dtype=np.uint32), pos
    # Bound the kernel's terminator scan to this dictionary's bytes
    # (a varint is at most 10 bytes) — the store body continues after.
    window = memoryview(data)[pos : pos + 10 * count]
    deltas, consumed = decode_varint_stream(window, count, 0)
    pos += consumed
    if int(deltas.max()) > 0xFFFFFFFF:
        raise StorageError("chunk-dict delta beyond uint32 range")
    # deltas <= 2**32 and count <= len(data), so the uint64 sum is exact.
    gids = np.cumsum(deltas)
    if int(gids[-1]) > 0xFFFFFFFF:
        raise StorageError("chunk-dict global-id beyond uint32 range")
    return gids.astype(np.uint32), pos


# -- global dictionaries ------------------------------------------------------------


def dictionary_meta(dictionary: Dictionary) -> dict:
    """Header metadata needed to decode ``dictionary``'s payload."""
    meta = {"kind": dictionary.kind, "has_null": dictionary.has_null}
    if isinstance(dictionary, NumericDictionary):
        meta["n_values"] = dictionary._n_non_null
        meta["is_int"] = dictionary._is_int
        meta["optimized"] = dictionary._optimized
    elif isinstance(dictionary, TrieDictionary):
        meta["n_values"] = dictionary._n_non_null
    return meta


def encode_dictionary(dictionary: Dictionary) -> bytes:
    """Serialize a global dictionary's payload."""
    return dictionary.to_bytes()


def decode_dictionary(meta: dict, payload: bytes) -> Dictionary:
    """Rebuild a global dictionary from header meta + payload bytes."""
    kind = meta["kind"]
    has_null = meta["has_null"]
    if kind == "string":
        values = []
        pos = 0
        while pos < len(payload):
            length = int.from_bytes(payload[pos : pos + 4], "little")
            pos += 4
            if pos + length > len(payload):
                raise StorageError("string dictionary payload truncated")
            values.append(payload[pos : pos + length].decode("utf-8"))
            pos += length
        return SortedStringDictionary(values, has_null=has_null)
    if kind == "trie":
        return TrieDictionary(payload, meta["n_values"], has_null=has_null)
    if kind == "numeric":
        n = meta["n_values"]
        if meta.get("optimized") and n:
            base = int.from_bytes(payload[:8], "little", signed=True)
            deltas = np.frombuffer(payload[8:], dtype=_width_dtype(payload, n))
            values = deltas.astype(np.int64) + base
            return NumericDictionary(values, has_null=has_null, optimized=True)
        dtype = np.int64 if meta.get("is_int", True) else np.float64
        values = np.frombuffer(payload, dtype=dtype)
        if values.size != n:
            raise StorageError(
                f"numeric dictionary holds {values.size}, header says {n}"
            )
        return NumericDictionary(
            values.copy(), has_null=has_null, optimized=False
        )
    raise StorageError(f"cannot load dictionary kind {kind!r}")


def _width_dtype(payload: bytes, n: int) -> type:
    width = (len(payload) - 8) // max(n, 1)
    dtype = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}.get(width)
    if dtype is None:
        raise StorageError(f"bad packed numeric width {width}")
    return dtype


# -- checksums ---------------------------------------------------------------------


def crc32_tag(body: bytes) -> bytes:
    """The PDS2 whole-body checksum: CRC32 as 4 little-endian bytes.

    Public because corruption detection is not only a file concern —
    :mod:`repro.distributed.faults` seals simulated sub-query responses
    with the same tag so a corrupted response fails verification before
    its partial is merged.
    """
    return zlib.crc32(body).to_bytes(4, "little")


def verify_crc32_tag(tag: bytes, body: bytes) -> bool:
    """True when ``body`` hashes to the 4-byte ``tag`` (PDS2 layout)."""
    return crc32_tag(body) == tag


# -- whole store ------------------------------------------------------------------------


def options_to_dict(options: DataStoreOptions) -> dict:
    """``DataStoreOptions`` as the JSON header mapping all formats share.

    Public because the chunk arena (:mod:`repro.storage.arena`) embeds
    the same options block in its own header; one codec keeps the two
    formats from drifting.
    """
    return {
        "table_name": options.table_name,
        "partition_fields": options.partition_fields,
        "max_chunk_rows": options.max_chunk_rows,
        "reorder_rows": options.reorder_rows,
        "optimized_columns": options.optimized_columns,
        "optimized_dicts": options.optimized_dicts,
        "cache_chunk_results": options.cache_chunk_results,
        "executor": options.executor,
        "workers": options.workers,
        "max_workers": options.max_workers,
        "cache_policy": options.cache_policy,
        "cache_capacity_bytes": options.cache_capacity_bytes,
        "task_deadline_seconds": options.task_deadline_seconds,
        "task_max_retries": options.task_max_retries,
        "task_backoff_base_seconds": options.task_backoff_base_seconds,
        "task_backoff_multiplier": options.task_backoff_multiplier,
        "watchdog_interval_seconds": options.watchdog_interval_seconds,
        "degrade": options.degrade,
        "codec": options.codec,
        "advisor_sample_rows": options.advisor_sample_rows,
        "advisor_seed": options.advisor_seed,
        "advisor_size_weight": options.advisor_size_weight,
        "advisor_speed_weight": options.advisor_speed_weight,
        "advisor_mode": options.advisor_mode,
    }


def options_from_dict(raw_options: dict) -> DataStoreOptions:
    """Inverse of :func:`options_to_dict`, tolerant of older headers."""
    partition = raw_options["partition_fields"]
    return DataStoreOptions(
        table_name=raw_options["table_name"],
        partition_fields=tuple(partition) if partition else None,
        max_chunk_rows=raw_options["max_chunk_rows"],
        reorder_rows=raw_options["reorder_rows"],
        optimized_columns=raw_options["optimized_columns"],
        optimized_dicts=raw_options["optimized_dicts"],
        cache_chunk_results=raw_options["cache_chunk_results"],
        # Runtime knobs: absent in files written before they existed.
        executor=raw_options.get("executor", "serial"),
        workers=raw_options.get("workers"),
        max_workers=raw_options.get("max_workers"),
        cache_policy=raw_options.get("cache_policy", "lru"),
        cache_capacity_bytes=raw_options.get(
            "cache_capacity_bytes", 64 * 1024 * 1024
        ),
        task_deadline_seconds=raw_options.get("task_deadline_seconds", 30.0),
        task_max_retries=raw_options.get("task_max_retries", 2),
        task_backoff_base_seconds=raw_options.get(
            "task_backoff_base_seconds", 0.05
        ),
        task_backoff_multiplier=raw_options.get(
            "task_backoff_multiplier", 2.0
        ),
        watchdog_interval_seconds=raw_options.get(
            "watchdog_interval_seconds", 0.1
        ),
        degrade=raw_options.get("degrade", True),
        # Advisor knobs: absent in files written before PR 9.
        codec=raw_options.get("codec"),
        advisor_sample_rows=raw_options.get("advisor_sample_rows", 4096),
        advisor_seed=raw_options.get("advisor_seed", 2012),
        advisor_size_weight=raw_options.get("advisor_size_weight", 1.0),
        advisor_speed_weight=raw_options.get("advisor_speed_weight", 0.15),
        advisor_mode=raw_options.get("advisor_mode", "stats"),
    )


def encode_field_section(field: FieldStore) -> bytes:
    """One field's complete body section (dictionary + all chunks).

    This is the unit the encoding advisor samples, the unit the
    per-field codec compresses, and — for codec-less fields — exactly
    the bytes :func:`save_store` has always written.
    """
    dict_payload = encode_dictionary(field.dictionary)
    section = bytearray(encode_varint(len(dict_payload)))
    section += dict_payload
    for chunk in field.chunks:
        section += encode_chunk_dict(chunk.chunk_dict)
        section += encode_elements(chunk.elements)
    return bytes(section)


def save_store(store: DataStore, path: str) -> int:
    """Write all original fields of ``store`` to ``path``.

    Returns the file size in bytes.
    """
    field_names = [
        name for name, field in store.fields.items() if not field.virtual
    ]
    field_metas = []
    sections = []
    for name in field_names:
        field = store.field(name)
        meta = {
            "name": name,
            "dictionary": dictionary_meta(field.dictionary),
        }
        section = encode_field_section(field)
        if field.codec is not None:
            compressed = compress(field.codec, section)
            meta["codec"] = field.codec
            choice = dict(field.codec_choice or {})
            choice.pop("scores", None)  # too bulky for a file header
            choice["actual_ratio"] = (
                len(section) / len(compressed) if compressed else 0.0
            )
            meta["codec_choice"] = choice
            section = encode_varint(len(compressed)) + compressed
        field_metas.append(meta)
        sections.append(section)
    header = {
        "options": options_to_dict(store.options),
        "n_rows": store.n_rows,
        "chunk_row_counts": store.chunk_row_counts,
        "fields": field_metas,
    }
    body = bytearray()
    header_bytes = json.dumps(header).encode("utf-8")
    body += encode_varint(len(header_bytes))
    body += header_bytes
    for section in sections:
        body += section
    blob = bytearray(_MAGIC)
    blob += crc32_tag(bytes(body))
    blob += body
    with open(path, "wb") as handle:
        handle.write(bytes(blob))
    return len(blob)


def load_store(path: str) -> DataStore:
    """Load a store written by :func:`save_store`.

    Raises :class:`~repro.errors.StorageError` on any corruption: bad
    magic, checksum mismatch, truncation, or malformed payloads.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    magic = data[:4]
    if magic == _MAGIC:
        if len(data) < 8:
            raise StorageError("store file truncated before checksum")
        if not verify_crc32_tag(data[4:8], data[8:]):
            expected_crc = int.from_bytes(data[4:8], "little")
            actual_crc = zlib.crc32(data[8:])
            raise StorageError(
                f"store file checksum mismatch: header says "
                f"{expected_crc:#010x}, contents hash to {actual_crc:#010x} "
                "— the file is corrupt or truncated"
            )
        pos = 8
    elif magic == _MAGIC_V1:
        pos = 4  # legacy format: no checksum to verify
    else:
        raise StorageError(f"not a datastore file: magic {magic!r}")
    try:
        return _parse_store_body(data, pos)
    except (
        IndexError,
        ValueError,
        KeyError,
        UnicodeDecodeError,
        CompressionError,
    ) as error:
        raise StorageError(
            f"store file is structurally corrupt: {type(error).__name__}: "
            f"{error}"
        ) from error


def _parse_store_body(data: bytes, pos: int) -> DataStore:
    header_len, pos = decode_varint(data, pos)
    if pos + header_len > len(data):
        raise StorageError("store header truncated")
    header = json.loads(data[pos : pos + header_len].decode("utf-8"))
    pos += header_len

    options = options_from_dict(header["options"])
    chunk_row_counts = list(header["chunk_row_counts"])

    fields: dict[str, FieldStore] = {}
    for field_meta in header["fields"]:
        name = field_meta["name"]
        codec_name = field_meta.get("codec")
        if codec_name is None:
            field, pos = _parse_field_section(
                data, pos, field_meta, chunk_row_counts
            )
        else:
            blob_len, pos = decode_varint(data, pos)
            if pos + blob_len > len(data):
                raise StorageError(
                    f"field {name!r}: compressed section truncated"
                )
            section = decompress(codec_name, bytes(data[pos : pos + blob_len]))
            pos += blob_len
            field, end = _parse_field_section(
                section, 0, field_meta, chunk_row_counts
            )
            if end != len(section):
                raise StorageError(
                    f"field {name!r}: {len(section) - end} stray byte(s) "
                    "after the decompressed section"
                )
            field.codec = codec_name
            field.codec_choice = field_meta.get("codec_choice")
        fields[name] = field
    return DataStore(options, header["n_rows"], chunk_row_counts, fields)


def _parse_field_section(
    data: bytes, pos: int, field_meta: dict, chunk_row_counts: list[int]
) -> tuple[FieldStore, int]:
    """Parse one field's section starting at ``pos``."""
    name = field_meta["name"]
    dict_len, pos = decode_varint(data, pos)
    if pos + dict_len > len(data):
        raise StorageError(f"field {name!r}: dictionary payload truncated")
    dictionary = decode_dictionary(
        field_meta["dictionary"], bytes(data[pos : pos + dict_len])
    )
    pos += dict_len
    chunks = []
    for expected_rows in chunk_row_counts:
        chunk_dict, pos = decode_chunk_dict(data, pos)
        elements, pos = decode_elements(data, pos)
        if elements.n_rows != expected_rows:
            raise StorageError(
                f"field {name!r}: chunk has {elements.n_rows} rows, "
                f"store header says {expected_rows}"
            )
        chunks.append(ColumnChunk(chunk_dict, elements))
    return FieldStore(name, dictionary, chunks), pos
