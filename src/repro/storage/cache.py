"""Cache eviction policies — Section 5 "Improved Cache Heuristics".

The paper replaces plain LRU (which one large scan can wipe out) with a
policy "similar to the adaptive-replacement-cache presented in [22] and
the 2Q algorithm presented in [19]". All three are implemented here
behind one interface so the ablation bench can compare them:

- :class:`LruCache` -- the baseline everyone knows.
- :class:`TwoQCache` -- Johnson & Shasha's 2Q: a FIFO probation queue
  (A1in), a ghost list of recently evicted keys (A1out), and a main LRU
  (Am) that only admits keys seen again after probation.
- :class:`ArcCache` -- Megiddo & Modha's ARC: recency (T1) and
  frequency (T2) lists with ghost lists (B1/B2) steering an adaptive
  target split ``p``.

Capacity is measured in abstract *weight* units (entries by default,
bytes if callers pass sizes), since the store caches variable-sized
chunk results.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.errors import StorageError


@dataclass
class CacheStats:
    """Hit/miss/eviction counters shared by all policies."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """Common interface: ``get``/``put`` with weighted capacity."""

    name = "abstract"

    def __init__(self, capacity: float) -> None:
        if capacity <= 0:
            raise StorageError(f"cache capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()

    def get(self, key: Hashable) -> Any | None:
        raise NotImplementedError

    def put(self, key: Hashable, value: Any, weight: float = 1.0) -> None:
        raise NotImplementedError

    def __contains__(self, key: Hashable) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def clear(self) -> None:
        """Drop every resident entry (and any ghost bookkeeping).

        Invalidation, not eviction: hit/miss/eviction statistics are
        preserved so callers can still report lifetime totals.
        """
        raise NotImplementedError

    @property
    def used(self) -> float:
        """Total weight currently resident."""
        raise NotImplementedError


@dataclass
class _Entry:
    value: Any
    weight: float = 1.0


class LruCache(Cache):
    """Least-recently-used eviction."""

    name = "lru"

    def __init__(self, capacity: float) -> None:
        super().__init__(capacity)
        self._entries: OrderedDict[Hashable, _Entry] = OrderedDict()
        self._used = 0.0

    def get(self, key: Hashable) -> Any | None:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.value

    def put(self, key: Hashable, value: Any, weight: float = 1.0) -> None:
        if key in self._entries:
            self._used -= self._entries[key].weight
            del self._entries[key]
        self._entries[key] = _Entry(value, weight)
        self._used += weight
        self._evict()

    def _evict(self) -> None:
        while self._used > self.capacity and len(self._entries) > 1:
            __, entry = self._entries.popitem(last=False)
            self._used -= entry.weight
            self.stats.evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0.0

    @property
    def used(self) -> float:
        return self._used


class TwoQCache(Cache):
    """The 2Q policy: FIFO probation + ghost list + main LRU.

    A first access lands in A1in (FIFO). Evicted A1in keys are
    remembered (key only) in A1out. A hit on an A1out ghost promotes the
    key into the main LRU Am — so one-time scans flow through A1in and
    never displace the hot set in Am.
    """

    name = "2q"

    def __init__(
        self,
        capacity: float,
        in_fraction: float = 0.25,
        ghost_fraction: float = 0.5,
    ) -> None:
        super().__init__(capacity)
        if not 0 < in_fraction < 1:
            raise StorageError("in_fraction must be in (0, 1)")
        self._in_capacity = capacity * in_fraction
        self._ghost_capacity = max(1, int(capacity * ghost_fraction))
        self._a1in: OrderedDict[Hashable, _Entry] = OrderedDict()
        self._a1out: OrderedDict[Hashable, None] = OrderedDict()
        self._am: OrderedDict[Hashable, _Entry] = OrderedDict()
        self._in_used = 0.0
        self._am_used = 0.0

    def get(self, key: Hashable) -> Any | None:
        entry = self._am.get(key)
        if entry is not None:
            self._am.move_to_end(key)
            self.stats.hits += 1
            return entry.value
        entry = self._a1in.get(key)
        if entry is not None:
            # 2Q leaves A1in order untouched on hit (it is a FIFO).
            self.stats.hits += 1
            return entry.value
        self.stats.misses += 1
        return None

    def put(self, key: Hashable, value: Any, weight: float = 1.0) -> None:
        if key in self._am:
            self._am_used -= self._am[key].weight
            self._am[key] = _Entry(value, weight)
            self._am.move_to_end(key)
            self._am_used += weight
        elif key in self._a1out:
            # Seen before and aged out of probation: hot, admit to Am.
            del self._a1out[key]
            self._am[key] = _Entry(value, weight)
            self._am_used += weight
        elif key in self._a1in:
            self._in_used -= self._a1in[key].weight
            self._a1in[key] = _Entry(value, weight)
            self._in_used += weight
        else:
            self._a1in[key] = _Entry(value, weight)
            self._in_used += weight
        self._evict()

    def _evict(self) -> None:
        while self._in_used > self._in_capacity and len(self._a1in) > 1:
            key, entry = self._a1in.popitem(last=False)
            self._in_used -= entry.weight
            self._a1out[key] = None
            self.stats.evictions += 1
            while len(self._a1out) > self._ghost_capacity:
                self._a1out.popitem(last=False)
        while self._in_used + self._am_used > self.capacity and len(self._am) >= 1:
            __, entry = self._am.popitem(last=False)
            self._am_used -= entry.weight
            self.stats.evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        return key in self._am or key in self._a1in

    def __len__(self) -> int:
        return len(self._am) + len(self._a1in)

    def clear(self) -> None:
        self._a1in.clear()
        self._a1out.clear()
        self._am.clear()
        self._in_used = 0.0
        self._am_used = 0.0

    @property
    def used(self) -> float:
        return self._in_used + self._am_used


class ArcCache(Cache):
    """Adaptive Replacement Cache with weighted entries.

    T1 holds keys seen once recently, T2 keys seen at least twice; B1/B2
    are their ghost lists. A hit in B1 grows the recency target ``p``, a
    hit in B2 shrinks it, so the split adapts to the workload — the
    behaviour the paper wants when large one-off scans mix with a hot
    working set.
    """

    name = "arc"

    def __init__(self, capacity: float) -> None:
        super().__init__(capacity)
        self._t1: OrderedDict[Hashable, _Entry] = OrderedDict()
        self._t2: OrderedDict[Hashable, _Entry] = OrderedDict()
        self._b1: OrderedDict[Hashable, None] = OrderedDict()
        self._b2: OrderedDict[Hashable, None] = OrderedDict()
        self._p = 0.0
        self._t1_used = 0.0
        self._t2_used = 0.0

    def get(self, key: Hashable) -> Any | None:
        entry = self._t1.pop(key, None)
        if entry is not None:
            # Second access: promote from recency to frequency.
            self._t1_used -= entry.weight
            self._t2[key] = entry
            self._t2_used += entry.weight
            self.stats.hits += 1
            return entry.value
        entry = self._t2.get(key)
        if entry is not None:
            self._t2.move_to_end(key)
            self.stats.hits += 1
            return entry.value
        self.stats.misses += 1
        return None

    def put(self, key: Hashable, value: Any, weight: float = 1.0) -> None:
        if key in self._t1:
            self._t1_used -= self._t1.pop(key).weight
            self._t2[key] = _Entry(value, weight)
            self._t2_used += weight
        elif key in self._t2:
            self._t2_used -= self._t2[key].weight
            self._t2[key] = _Entry(value, weight)
            self._t2.move_to_end(key)
            self._t2_used += weight
        elif key in self._b1:
            # Ghost hit on the recency side: favour recency.
            delta = max(1.0, len(self._b2) / max(len(self._b1), 1))
            self._p = min(self.capacity, self._p + delta)
            del self._b1[key]
            self._t2[key] = _Entry(value, weight)
            self._t2_used += weight
        elif key in self._b2:
            delta = max(1.0, len(self._b1) / max(len(self._b2), 1))
            self._p = max(0.0, self._p - delta)
            del self._b2[key]
            self._t2[key] = _Entry(value, weight)
            self._t2_used += weight
        else:
            self._t1[key] = _Entry(value, weight)
            self._t1_used += weight
        self._evict()

    def _evict(self) -> None:
        ghost_cap = max(1, int(self.capacity))
        while self._t1_used + self._t2_used > self.capacity and (
            len(self._t1) + len(self._t2) > 1
        ):
            evict_t1 = self._t1 and (self._t1_used > self._p or not self._t2)
            if evict_t1:
                key, entry = self._t1.popitem(last=False)
                self._t1_used -= entry.weight
                self._b1[key] = None
            else:
                key, entry = self._t2.popitem(last=False)
                self._t2_used -= entry.weight
                self._b2[key] = None
            self.stats.evictions += 1
        while len(self._b1) > ghost_cap:
            self._b1.popitem(last=False)
        while len(self._b2) > ghost_cap:
            self._b2.popitem(last=False)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._t1 or key in self._t2

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    def clear(self) -> None:
        self._t1.clear()
        self._t2.clear()
        self._b1.clear()
        self._b2.clear()
        self._p = 0.0
        self._t1_used = 0.0
        self._t2_used = 0.0

    @property
    def used(self) -> float:
        return self._t1_used + self._t2_used

    @property
    def recency_target(self) -> float:
        """Current adaptive target size for the recency side (T1)."""
        return self._p


_POLICIES = {cls.name: cls for cls in (LruCache, TwoQCache, ArcCache)}


def policy_names() -> list[str]:
    """The registered eviction policy names, for CLI choices."""
    return sorted(_POLICIES)


def make_cache(policy: str, capacity: float) -> Cache:
    """Build a cache by policy name ('lru', '2q', 'arc')."""
    try:
        return _POLICIES[policy](capacity)
    except KeyError:
        raise StorageError(
            f"unknown cache policy {policy!r}; choose from {sorted(_POLICIES)}"
        ) from None
