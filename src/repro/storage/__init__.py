"""Storage data-structures of the PowerDrill column-store.

This package implements Section 2.3's basic layout and all of the
Section 3/5 optimizations:

- :mod:`repro.storage.dictionary` -- global dictionaries (sorted-array
  strings, packed numerics) with rank/value lookups.
- :mod:`repro.storage.trie` -- the 4-bit-nibble trie dictionary encoded
  into one flat byte array.
- :mod:`repro.storage.elements` -- element (chunk-id) encodings:
  constant, bitset, and 1/2/4-byte packed arrays.
- :mod:`repro.storage.chunk` -- per-chunk column storage: the
  chunk-dictionary plus elements, and whole-chunk assembly.
- :mod:`repro.storage.bloom` -- Bloom filters guarding dictionary loads.
- :mod:`repro.storage.subdict` -- sub-dictionaries (hot values + chunk
  groups) so only relevant dictionary parts need to be resident.
- :mod:`repro.storage.cache` -- LRU, 2Q and ARC eviction policies.
- :mod:`repro.storage.layers` -- the two-layer (uncompressed / Zippy-
  compressed) in-memory hybrid store.
"""

from repro.storage.bitset import BitSet
from repro.storage.bloom import BloomFilter
from repro.storage.cache import ArcCache, CacheStats, LruCache, TwoQCache
from repro.storage.chunk import Chunk, ColumnChunk
from repro.storage.dictionary import (
    Dictionary,
    NumericDictionary,
    SortedStringDictionary,
    build_dictionary,
)
from repro.storage.elements import (
    BitsetElements,
    ConstantElements,
    Elements,
    PackedElements,
    encode_elements,
)
from repro.storage.layers import HybridLayerStore
from repro.storage.subdict import SubDictionarySet
from repro.storage.trie import TrieDictionary

__all__ = [
    "ArcCache",
    "BitSet",
    "BitsetElements",
    "BloomFilter",
    "CacheStats",
    "Chunk",
    "ColumnChunk",
    "ConstantElements",
    "Dictionary",
    "Elements",
    "HybridLayerStore",
    "LruCache",
    "NumericDictionary",
    "PackedElements",
    "SortedStringDictionary",
    "SubDictionarySet",
    "TrieDictionary",
    "TwoQCache",
    "build_dictionary",
    "encode_elements",
]
