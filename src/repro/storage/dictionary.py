"""Global dictionaries — Section 2.3's value <-> global-id mapping.

A global dictionary holds all distinct values of one column, sorted, and
maps them to dense integer *global-ids* (their ranks) and back. NULL,
when present, always sorts first and takes global-id 0, so ids of
non-null values remain ranks within the sorted value list.

Implementations:

- :class:`SortedStringDictionary` -- the "canonical" sorted array of
  strings; rank lookup by binary search (Section 2.3).
- :class:`NumericDictionary` -- sorted numeric values; in *optimized*
  mode integer payloads are offset+bit-packed to the minimal byte width.
- :class:`repro.storage.trie.TrieDictionary` -- the Section 3 nibble
  trie (built via :func:`build_dictionary` with ``optimized=True``).
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from repro.errors import DictionaryError

#: Byte cost charged per value for the offset array of string payloads.
_OFFSET_BYTES = 4

#: Below this many queries the per-value path wins over batch setup.
_BULK_LOOKUP_MIN = 8


def _bulk_ranks(
    sorted_values: np.ndarray,
    queries: list[Any],
    accepted: type | tuple[type, ...],
    has_null: bool,
) -> list[int | None]:
    """Batched global-id lookup over a sorted object array.

    One ``np.searchsorted`` over every query of an accepted type, then
    an elementwise equality check to separate hits from misses. Queries
    of other types miss (None), and None maps to global-id 0 exactly
    when the dictionary holds NULL — mirroring ``Dictionary.global_id``.
    """
    out: list[int | None] = [None] * len(queries)
    comparable: list[int] = []
    for i, value in enumerate(queries):
        if value is None:
            if has_null:
                out[i] = 0
        elif isinstance(value, accepted) and not isinstance(value, bool):
            comparable.append(i)
    if not comparable or not sorted_values.size:
        return out
    offset = 1 if has_null else 0
    probe = np.empty(len(comparable), dtype=object)
    probe[:] = [queries[i] for i in comparable]
    positions = np.searchsorted(sorted_values, probe)
    clipped = np.minimum(positions, sorted_values.size - 1)
    hits = (sorted_values[clipped] == probe) & (positions < sorted_values.size)
    for k, i in enumerate(comparable):
        if hits[k]:
            out[i] = int(positions[k]) + offset
    return out


class Dictionary:
    """Base class: null-aware global-id <-> value mapping."""

    kind = "abstract"

    def __init__(self, has_null: bool) -> None:
        self._has_null = has_null

    # -- abstract payload interface ------------------------------------
    @property
    def _n_non_null(self) -> int:
        raise NotImplementedError

    def _value_at(self, index: int) -> Any:
        raise NotImplementedError

    def _rank_of(self, value: Any) -> int | None:
        raise NotImplementedError

    def _payload_size(self) -> int:
        raise NotImplementedError

    # -- public API ------------------------------------------------------
    @property
    def has_null(self) -> bool:
        """Whether NULL is a member (always global-id 0 when present)."""
        return self._has_null

    def __len__(self) -> int:
        return self._n_non_null + (1 if self._has_null else 0)

    @property
    def n_values(self) -> int:
        return len(self)

    def value(self, global_id: int) -> Any:
        """The value with rank ``global_id``."""
        if not 0 <= global_id < len(self):
            raise DictionaryError(
                f"global-id {global_id} out of range [0, {len(self)})"
            )
        if self._has_null:
            if global_id == 0:
                return None
            return self._value_at(global_id - 1)
        return self._value_at(global_id)

    def global_id(self, value: Any) -> int | None:
        """Rank of ``value``, or None if absent."""
        if value is None:
            return 0 if self._has_null else None
        rank = self._rank_of(value)
        if rank is None:
            return None
        return rank + (1 if self._has_null else 0)

    def __contains__(self, value: Any) -> bool:
        return self.global_id(value) is not None

    def values(self) -> list[Any]:
        """All values in global-id (sorted) order."""
        return [self.value(gid) for gid in range(len(self))]

    def global_ids(self, values: Iterable[Any]) -> list[int | None]:
        """Rank of each value (None for misses), preserving input order."""
        return [self.global_id(v) for v in values]

    def size_bytes(self) -> int:
        """Analytic encoded size of the dictionary payload."""
        return self._payload_size() + (1 if self._has_null else 0)

    def to_bytes(self) -> bytes:
        """Serialized payload for compression experiments."""
        raise NotImplementedError

    # -- order/rank queries ------------------------------------------------
    def _rank_lower_bound(self, value: Any) -> int:
        """Number of non-null values strictly smaller than ``value``.

        Subclasses with sorted payloads override this with binary
        search / trie walks; the base implementation scans.
        """
        count = 0
        for index in range(self._n_non_null):
            if self._value_at(index) < value:
                count += 1
            else:
                break
        return count

    def gid_range(self, op: str, value: Any) -> tuple[int, int]:
        """Half-open global-id interval matching ``<op> value``.

        Because global-ids are ranks, every range predicate maps to one
        id interval over the non-null ids. NULL never matches a
        comparison, so the interval starts at the first non-null id.
        """
        offset = 1 if self._has_null else 0
        lower = self._rank_lower_bound(value)
        present = self._rank_of(value) is not None
        if op == "<":
            return offset, offset + lower
        if op == "<=":
            return offset, offset + lower + (1 if present else 0)
        if op == ">":
            return offset + lower + (1 if present else 0), len(self)
        if op == ">=":
            return offset + lower, len(self)
        raise DictionaryError(f"gid_range does not handle operator {op!r}")


class SortedStringDictionary(Dictionary):
    """Sorted array of strings; binary search for rank lookups."""

    kind = "string"

    def __init__(self, values: Sequence[str], has_null: bool = False) -> None:
        super().__init__(has_null)
        self._values = list(values)
        self._sorted_cache: np.ndarray | None = None
        if any(not isinstance(v, str) for v in self._values):
            raise DictionaryError("string dictionary requires str values")
        if any(
            self._values[i] >= self._values[i + 1]
            for i in range(len(self._values) - 1)
        ):
            raise DictionaryError("dictionary values must be strictly sorted")

    @property
    def _n_non_null(self) -> int:
        return len(self._values)

    def values(self) -> list[Any]:
        if self._has_null:
            return [None, *self._values]
        return list(self._values)

    def global_ids(self, values: Iterable[Any]) -> list[int | None]:
        query = list(values)
        if len(query) < _BULK_LOOKUP_MIN:
            return [self.global_id(value) for value in query]
        if self._sorted_cache is None:
            cache = np.empty(len(self._values), dtype=object)
            cache[:] = self._values
            self._sorted_cache = cache
        return _bulk_ranks(self._sorted_cache, query, str, self._has_null)

    def _value_at(self, index: int) -> str:
        return self._values[index]

    def _rank_of(self, value: Any) -> int | None:
        if not isinstance(value, str):
            return None
        index = bisect.bisect_left(self._values, value)
        if index < len(self._values) and self._values[index] == value:
            return index
        return None

    def _rank_lower_bound(self, value: Any) -> int:
        if not isinstance(value, str):
            raise DictionaryError(
                f"cannot order-compare str dictionary with {type(value).__name__}"
            )
        return bisect.bisect_left(self._values, value)

    def _payload_size(self) -> int:
        return sum(len(v.encode("utf-8")) for v in self._values) + (
            _OFFSET_BYTES * len(self._values)
        )

    def to_bytes(self) -> bytes:
        out = bytearray()
        for value in self._values:
            raw = value.encode("utf-8")
            out += len(raw).to_bytes(4, "little")
            out += raw
        return bytes(out)


class NumericDictionary(Dictionary):
    """Sorted numeric values (int64 or float64).

    In *optimized* mode integer payloads are stored offset from their
    minimum at the smallest sufficient byte width, so a dictionary of
    values clustered in a narrow range costs ~1-2 bytes per entry
    instead of 8.
    """

    kind = "numeric"

    def __init__(
        self,
        values: np.ndarray,
        has_null: bool = False,
        optimized: bool = False,
    ) -> None:
        super().__init__(has_null)
        if values.ndim != 1:
            raise DictionaryError("numeric dictionary requires a 1-d array")
        if values.size > 1 and not np.all(values[:-1] < values[1:]):
            raise DictionaryError("dictionary values must be strictly sorted")
        self._values = values
        self._is_int = np.issubdtype(values.dtype, np.integer)
        self._optimized = optimized and self._is_int

    @property
    def optimized(self) -> bool:
        """Whether integer payloads offset-pack in ``to_bytes``."""
        return self._optimized

    def raw_values(self) -> np.ndarray:
        """The sorted value array itself (callers must treat as read-only).

        Flat-buffer stores (:mod:`repro.storage.arena`) persist this
        array verbatim so attaches can wrap it zero-copy; a rebuilt
        dictionary round-trips ``optimized`` separately, keeping
        ``to_bytes`` byte-identical across the trip.
        """
        return self._values

    @property
    def _n_non_null(self) -> int:
        return int(self._values.size)

    def _value_at(self, index: int) -> Any:
        value = self._values[index]
        return int(value) if self._is_int else float(value)

    def _rank_of(self, value: Any) -> int | None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        index = int(np.searchsorted(self._values, value))
        if index < self._values.size and self._values[index] == value:
            return index
        return None

    def values(self) -> list[Any]:
        non_null = self._values.tolist()
        if self._has_null:
            return [None, *non_null]
        return non_null

    def global_ids(self, values: Iterable[Any]) -> list[int | None]:
        query = list(values)
        if len(query) < _BULK_LOOKUP_MIN or not self._values.size:
            return [self.global_id(value) for value in query]
        out: list[int | None] = [None] * len(query)
        offset = 1 if self._has_null else 0
        # Ints and floats are batched separately so each batch keeps the
        # exact dtype-promotion behaviour of the scalar searchsorted.
        batches: dict[type, tuple[list[int], list[Any]]] = {
            int: ([], []),
            float: ([], []),
        }
        for i, value in enumerate(query):
            if value is None:
                if self._has_null:
                    out[i] = 0
            elif not isinstance(value, bool) and isinstance(value, (int, float)):
                positions, probe = batches[int if isinstance(value, int) else float]
                positions.append(i)
                probe.append(value)
        for dtype, (positions, probe) in (
            (np.int64, batches[int]),
            (np.float64, batches[float]),
        ):
            if not positions:
                continue
            try:
                probe_array = np.asarray(probe, dtype=dtype)
            except OverflowError:
                # Ints outside int64: defer to the scalar path per value.
                for i in positions:
                    out[i] = self.global_id(query[i])
                continue
            found = np.searchsorted(self._values, probe_array)
            clipped = np.minimum(found, self._values.size - 1)
            hits = (self._values[clipped] == probe_array) & (
                found < self._values.size
            )
            for k, i in enumerate(positions):
                if hits[k]:
                    out[i] = int(found[k]) + offset
        return out

    def _rank_lower_bound(self, value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise DictionaryError(
                f"cannot order-compare numeric dictionary with "
                f"{type(value).__name__}"
            )
        return int(np.searchsorted(self._values, value, side="left"))

    def _int_width(self) -> int:
        if not self._values.size:
            return 1
        span = int(self._values[-1]) - int(self._values[0])
        for width in (1, 2, 4, 8):
            if span < 1 << (8 * width):
                return width
        return 8

    def _payload_size(self) -> int:
        if not self._optimized:
            return 8 * int(self._values.size)
        # Offset encoding: 8-byte base + packed deltas.
        return 8 + self._int_width() * int(self._values.size)

    def to_bytes(self) -> bytes:
        if self._optimized and self._values.size:
            base = int(self._values[0])
            width = self._int_width()
            deltas = (self._values.astype(np.int64) - base).astype(np.uint64)
            dtype = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}[width]
            return base.to_bytes(8, "little", signed=True) + deltas.astype(
                dtype
            ).tobytes()
        return np.ascontiguousarray(self._values).tobytes()

    def min_value(self) -> Any:
        """Smallest non-null value (None for an empty dictionary)."""
        return self._value_at(0) if self._values.size else None

    def max_value(self) -> Any:
        """Largest non-null value (None for an empty dictionary)."""
        return self._value_at(self._values.size - 1) if self._values.size else None


def _null_safe_key(value: Any):
    """Sort key placing None first, usable inside tuples too."""
    if isinstance(value, tuple):
        return tuple(_null_safe_key(v) for v in value)
    return (value is not None, value)


class SortedTupleDictionary(Dictionary):
    """Dictionary over tuples — the combined multi-group-by column.

    The paper (footnote 5) combines multiple group-by fields into one
    materialized "virtual" column; its values are tuples of the member
    fields' values. Tuples sort with NULL-first semantics per element.
    """

    kind = "tuple"

    def __init__(self, values: Sequence[tuple], has_null: bool = False) -> None:
        super().__init__(has_null)
        self._values = list(values)
        self._keys = [_null_safe_key(v) for v in self._values]
        self._sorted_cache: np.ndarray | None = None
        if any(
            self._keys[i] >= self._keys[i + 1]
            for i in range(len(self._keys) - 1)
        ):
            raise DictionaryError("tuple dictionary must be strictly sorted")

    @property
    def _n_non_null(self) -> int:
        return len(self._values)

    def values(self) -> list[Any]:
        if self._has_null:
            return [None, *self._values]
        return list(self._values)

    def global_ids(self, values: Iterable[Any]) -> list[int | None]:
        query = list(values)
        if len(query) < _BULK_LOOKUP_MIN or not self._keys:
            return [self.global_id(value) for value in query]
        if self._sorted_cache is None:
            cache = np.empty(len(self._keys), dtype=object)
            cache[:] = self._keys
            self._sorted_cache = cache
        keyed = [
            _null_safe_key(value) if isinstance(value, tuple) else value
            for value in query
        ]
        # Key equality is equivalent to value equality (the null-safe
        # key wrapping is injective), so ranks over keys are ranks over
        # values.
        return _bulk_ranks(self._sorted_cache, keyed, tuple, self._has_null)

    def _value_at(self, index: int) -> tuple:
        return self._values[index]

    def _rank_of(self, value: Any) -> int | None:
        if not isinstance(value, tuple):
            return None
        key = _null_safe_key(value)
        index = bisect.bisect_left(self._keys, key)
        if index < len(self._keys) and self._values[index] == value:
            return index
        return None

    def _rank_lower_bound(self, value: Any) -> int:
        return bisect.bisect_left(self._keys, _null_safe_key(value))

    def _payload_size(self) -> int:
        total = 0
        for value in self._values:
            for member in value:
                if isinstance(member, str):
                    total += len(member.encode("utf-8")) + _OFFSET_BYTES
                else:
                    total += 8
        return total

    def to_bytes(self) -> bytes:
        out = bytearray()
        for value in self._values:
            raw = repr(value).encode("utf-8")
            out += len(raw).to_bytes(4, "little")
            out += raw
        return bytes(out)


def _sorted_distinct(values: Iterable[Any]) -> tuple[list[Any], bool]:
    """Distinct non-null values in sorted order, plus a null flag."""
    distinct = set(values)
    has_null = None in distinct
    distinct.discard(None)
    if not distinct:
        return [], has_null
    kinds = {type(v) for v in distinct}
    if kinds <= {int, float} or kinds <= {bool}:
        return sorted(distinct), has_null
    if kinds == {str}:
        return sorted(distinct), has_null
    raise DictionaryError(
        f"column mixes incompatible types: {sorted(k.__name__ for k in kinds)}"
    )


def build_dictionary(values: Iterable[Any], optimized: bool = False) -> Dictionary:
    """Build the right dictionary for a column of raw values.

    ``optimized=False`` yields the "canonical" encodings of Section 2.3
    (sorted string array / plain 8-byte numerics). ``optimized=True``
    yields the Section 3 *OptDicts* encodings: the nibble trie for
    strings and offset-packed numerics.
    """
    distinct, has_null = _sorted_distinct(values)
    if distinct and isinstance(distinct[0], str):
        if optimized:
            from repro.storage.trie import TrieDictionary

            return TrieDictionary.from_sorted(distinct, has_null=has_null)
        return SortedStringDictionary(distinct, has_null=has_null)
    if distinct and any(isinstance(v, float) for v in distinct):
        array = np.asarray(distinct, dtype=np.float64)
    else:
        array = np.asarray(distinct, dtype=np.int64)
    return NumericDictionary(array, has_null=has_null, optimized=optimized)
