"""CSV: the row-wise text baseline of Table 1.

The whole file must be read and parsed for every query regardless of
which columns it touches, so ``memory_bytes`` reports the full file
size — "for CSV and record-io the entire data size is reported, since
these are row-wise formats".

NULL is encoded as the unquoted marker ``\\N`` (the MySQL dump
convention); a literal string ``\\N`` is escaped as ``\\\\N``.
"""

from __future__ import annotations

import csv
import os
from collections.abc import Iterator

from repro.core.table import DataType, Schema, Table
from repro.errors import TableError
from repro.formats.backend import Backend
from repro.sql.ast_nodes import Query

_NULL = "\\N"
_ESCAPED_NULL = "\\\\N"


def write_csv(table: Table, path: str) -> int:
    """Write ``table`` to ``path``; returns the file size in bytes."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.field_names)
        for row in table.iter_rows():
            writer.writerow([_encode_value(value) for value in row])
    return os.path.getsize(path)


def _encode_value(value) -> str:
    if value is None:
        return _NULL
    if isinstance(value, str):
        return _ESCAPED_NULL if value == _NULL else value
    return repr(value)


def _decode_value(raw: str, dtype: DataType):
    if raw == _NULL:
        return None
    if dtype is DataType.STRING:
        return _NULL if raw == _ESCAPED_NULL else raw
    if dtype is DataType.INT:
        return int(raw)
    return float(raw)


def read_csv(path: str, schema: Schema) -> Table:
    """Load a CSV file written by :func:`write_csv` into a Table."""
    backend = CsvBackend(path, schema)
    return Table.from_rows(backend.scan_rows(None), schema)


class CsvBackend(Backend):
    """Full-scan SQL over a CSV file."""

    name = "csv"

    def __init__(self, path: str, schema: Schema, table_name: str = "data") -> None:
        super().__init__(table_name)
        self._path = path
        self._schema = schema
        self._n_rows: int | None = None

    @property
    def schema(self) -> Schema:
        return self._schema

    def scan_rows(self, query: Query | None) -> Iterator[tuple]:
        dtypes = [self._schema.dtype(name) for name in self._schema.field_names]
        with open(self._path, newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header != self._schema.field_names:
                raise TableError(
                    f"CSV header {header} does not match schema "
                    f"{self._schema.field_names}"
                )
            count = 0
            for record in reader:
                count += 1
                yield tuple(
                    _decode_value(raw, dtype)
                    for raw, dtype in zip(record, dtypes)
                )
            self._n_rows = count

    def memory_bytes(self, query: Query) -> int:
        return os.path.getsize(self._path)

    def rows_total(self) -> int:
        if self._n_rows is None:
            self._n_rows = sum(1 for __ in self.scan_rows(None))
        return self._n_rows
