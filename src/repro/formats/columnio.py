"""column-io: the Dremel-stand-in columnar streaming backend.

Dremel's key properties relative to the paper's store are: (a) data is
laid out per column, so a query only reads the columns it references,
(b) columns are generically compressed, and (c) every query is a full
scan that must decode the data before use — there are no ready-to-use
in-memory dictionaries and no partitioning to skip chunks.

File layout::

    magic 'CIO1'
    varint(header_len) header-JSON
    column blocks (concatenated)

Each column is split into blocks of ``block_rows`` rows. A block stores
a NULL bitmap followed by the non-null values (varint-length strings /
zigzag varint ints / raw 8-byte doubles), compressed with a registry
codec. The header records per-column block offsets so a scan touches
only the referenced columns — ``memory_bytes`` reports exactly those
columns' compressed bytes, which is how the paper accounts Dremel's
memory in Table 1.

Header versions: version-1 files record one file-wide ``codec``;
version-2 files (written by this module since PR 9) record a codec
*per column*, so ``codec="auto"`` can let the encoding advisor
(:mod:`repro.compress.advisor`) pick a different pipeline for each
column — the chosen name plus the advisor's ``codec_choice`` record
land in that column's header entry. Version-1 files still load.

INT and FLOAT block bodies are encoded and decoded with the bulk
varint/zigzag kernels of :mod:`repro.compress.varint` (PR 5) — one
vectorized pass per block instead of one ``decode_zigzag`` call per
cell; STRING blocks keep the scalar walk because each value's length
prefix feeds the next read position. Codec activity is visible via
:meth:`ColumnIoBackend.codec_stats`, which reports *this backend's*
decode traffic (per-instance stats, not the process-wide registry
counters — two open files never alias each other's numbers).
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Iterator

import numpy as np

from repro.compress.advisor import (
    AdvisorConfig,
    choose_codec,
    profile_values,
    sample_window,
)
from repro.compress.registry import CompressionStats, get_codec
from repro.compress.varint import (
    decode_varint,
    decode_zigzag_stream,
    encode_varint,
    encode_zigzag,
    encode_zigzag_array,
)
from repro.core.table import DataType, Schema, Table
from repro.errors import TableError
from repro.formats.backend import Backend
from repro.sql.ast_nodes import Query, referenced_fields
from repro.storage.bitset import BitSet

_MAGIC = b"CIO1"
_DEFAULT_BLOCK_ROWS = 8192


def _encode_block(values: list, dtype: DataType) -> bytes:
    n = len(values)
    bitmap = BitSet(n)
    non_null = []
    for index, value in enumerate(values):
        if value is None:
            continue
        bitmap.set(index)
        non_null.append(value)
    head = encode_varint(n) + bitmap.to_bytes()
    if dtype is DataType.INT:
        try:
            arr = np.asarray([int(v) for v in non_null], dtype=np.int64)
        except OverflowError:
            # Ints beyond int64: the scalar encoder handles any width.
            body = bytearray()
            for value in non_null:
                body += encode_zigzag(int(value))
            return head + bytes(body)
        return head + encode_zigzag_array(arr)
    if dtype is not DataType.STRING:
        packed = np.asarray([float(v) for v in non_null], dtype="<f8")
        return head + packed.tobytes()
    body = bytearray()
    for value in non_null:
        raw = value.encode("utf-8")
        body += encode_varint(len(raw))
        body += raw
    return head + bytes(body)


def _decode_block(data: bytes, dtype: DataType) -> list:
    n, pos = decode_varint(data, 0)
    bitmap_bytes = (n + 7) // 8
    bitmap = BitSet.from_bytes(data[pos : pos + bitmap_bytes], n)
    pos += bitmap_bytes
    present = bitmap.to_numpy().view(bool)  # 0/1 uint8 -> boolean mask
    count = int(np.count_nonzero(present))
    slots = np.full(n, None, dtype=object)
    if dtype is DataType.INT:
        decoded, pos = decode_zigzag_stream(data, count, pos)
        # Assign via list so slots hold Python ints, not np.int64.
        slots[present] = decoded.tolist()
        return slots.tolist()
    if dtype is not DataType.STRING:
        packed = np.frombuffer(data, dtype="<f8", count=count, offset=pos)
        slots[present] = packed.tolist()
        return slots.tolist()
    values: list = [None] * n
    for index in np.flatnonzero(present).tolist():
        size, pos = decode_varint(data, pos)
        values[index] = data[pos : pos + size].decode("utf-8")
        pos += size
    return values


def write_columnio(
    table: Table,
    path: str,
    codec: str = "zippy",
    block_rows: int = _DEFAULT_BLOCK_ROWS,
    advisor_config: AdvisorConfig | None = None,
) -> int:
    """Write ``table`` to ``path``; returns the file size in bytes.

    ``codec`` is either a registry codec name (applied to every
    column) or ``"auto"``, which runs the encoding advisor per column
    and records each choice in the version-2 header.
    """
    config = advisor_config if advisor_config is not None else AdvisorConfig()
    if codec != "auto":
        get_codec(codec)  # fail on unknown names before writing anything
    columns_meta = []
    blob = bytearray()
    for name in table.field_names:
        column = table.column(name)
        raw_blocks = []
        for start in range(0, max(table.n_rows, 1), block_rows):
            values = column.values[start : start + block_rows]
            if not values and table.n_rows:
                break
            raw_blocks.append(_encode_block(values, column.dtype))
        choice_meta = None
        if codec == "auto":
            profile = profile_values(column.values, config)
            sample = sample_window(b"".join(raw_blocks), config)
            choice = choose_codec(sample, config, profile=profile)
            column_codec = choice.codec
            choice_meta = choice.as_dict()
            choice_meta.pop("scores", None)  # too bulky for a file header
        else:
            column_codec = codec
        compressor = get_codec(column_codec)
        blocks = []
        raw_total = 0
        compressed_total = 0
        for raw in raw_blocks:
            compressed = compressor.compress(raw)
            blocks.append({"offset": len(blob), "size": len(compressed)})
            blob += compressed
            raw_total += len(raw)
            compressed_total += len(compressed)
        meta = {
            "name": name,
            "dtype": column.dtype.value,
            "codec": column_codec,
            "blocks": blocks,
        }
        if choice_meta is not None:
            choice_meta["actual_ratio"] = (
                raw_total / compressed_total if compressed_total else 0.0
            )
            meta["codec_choice"] = choice_meta
        columns_meta.append(meta)
    header = json.dumps(
        {
            "version": 2,
            "n_rows": table.n_rows,
            "block_rows": block_rows,
            "columns": columns_meta,
        }
    ).encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(encode_varint(len(header)))
        handle.write(header)
        handle.write(bytes(blob))
    return os.path.getsize(path)


def read_columnio(path: str) -> Table:
    """Load a column-io file back into a Table."""
    backend = ColumnIoBackend(path)
    schema = backend.schema
    columns = {
        name: backend.read_column(name) for name in schema.field_names
    }
    return Table.from_columns(columns, schema=schema)


class ColumnIoBackend(Backend):
    """Full-scan SQL over a column-io file, reading only used columns."""

    name = "column-io"

    def __init__(self, path: str, table_name: str = "data") -> None:
        super().__init__(table_name)
        self._path = path
        with open(path, "rb") as handle:
            magic = handle.read(4)
            if magic != _MAGIC:
                raise TableError(f"not a column-io file: magic {magic!r}")
            prefix = handle.read(10)
            header_len, header_start = decode_varint(prefix, 0)
            handle.seek(4 + header_start)
            header = json.loads(handle.read(header_len).decode("utf-8"))
            self._data_start = 4 + header_start + header_len
        self._n_rows = header["n_rows"]
        version = header.get("version", 1)
        if version == 1:
            # Legacy layout: one file-wide codec for every column.
            shared_codec = header["codec"]
            for column_meta in header["columns"]:
                column_meta.setdefault("codec", shared_codec)
        elif version != 2:
            raise TableError(
                f"unsupported column-io header version {version} in {path}"
            )
        self._columns = {c["name"]: c for c in header["columns"]}
        self._order = [c["name"] for c in header["columns"]]
        self._codecs = {
            name: get_codec(meta["codec"])
            for name, meta in self._columns.items()
        }
        # Per-instance decode accounting: two open backends must never
        # alias each other's numbers, so the registry's process-wide
        # stats are not exposed here (satellite fix, PR 9).
        self._local_stats: dict[str, CompressionStats] = {}

    @property
    def schema(self) -> Schema:
        return Schema(
            [
                (name, DataType(self._columns[name]["dtype"]))
                for name in self._order
            ]
        )

    # -- column access -------------------------------------------------------
    def read_column(self, name: str) -> list:
        """Decode one full column (all blocks)."""
        try:
            meta = self._columns[name]
        except KeyError:
            raise TableError(f"no column {name!r} in {self._path}") from None
        dtype = DataType(meta["dtype"])
        codec = self._codecs[name]
        local = self._local_stats.setdefault(
            codec.name, CompressionStats(name=codec.name)
        )
        values: list = []
        with open(self._path, "rb") as handle:
            for block in meta["blocks"]:
                handle.seek(self._data_start + block["offset"])
                compressed = handle.read(block["size"])
                started = time.perf_counter()
                raw = codec.decompress(compressed)
                local.decode_seconds += time.perf_counter() - started
                local.decode_calls += 1
                local.decode_bytes_in += len(compressed)
                local.decode_bytes_out += len(raw)
                values.extend(_decode_block(raw, dtype))
        return values

    def column_compressed_bytes(self, name: str) -> int:
        """Compressed on-disk footprint of one column."""
        return sum(block["size"] for block in self._columns[name]["blocks"])

    def column_codec(self, name: str) -> str:
        """The codec name this file's header records for ``name``."""
        try:
            return self._columns[name]["codec"]
        except KeyError:
            raise TableError(f"no column {name!r} in {self._path}") from None

    def column_codec_choice(self, name: str) -> dict | None:
        """The advisor's recorded choice for ``name`` (None if absent)."""
        return self._columns.get(name, {}).get("codec_choice")

    def codec_stats(self) -> dict[str, CompressionStats]:
        """Codec name -> decode stats for *this backend's* reads only.

        Per-instance accounting: the process-wide registry stats keep
        aggregating across files, but these numbers cover exactly the
        blocks this backend decompressed.
        """
        return dict(self._local_stats)

    def _referenced_columns(self, query: Query | None) -> list[str]:
        if query is None:
            return list(self._order)
        names: set[str] = set()
        for item in query.select:
            # referenced_fields walks into aggregate arguments too.
            names |= referenced_fields(item.expr)
        if query.where is not None:
            names |= referenced_fields(query.where)
        for expr in query.group_by:
            names |= referenced_fields(expr)
        if query.having is not None:
            names |= referenced_fields(query.having)
        for item in query.order_by:
            names |= referenced_fields(item.expr)
        return [name for name in self._order if name in names]

    # -- Backend contract --------------------------------------------------------
    def scan_rows(self, query: Query | None) -> Iterator[tuple]:
        referenced = self._referenced_columns(query)
        decoded = {name: self.read_column(name) for name in referenced}
        for row_index in range(self._n_rows):
            yield tuple(
                decoded[name][row_index] if name in decoded else None
                for name in self._order
            )

    def memory_bytes(self, query: Query) -> int:
        return sum(
            self.column_compressed_bytes(name)
            for name in self._referenced_columns(query)
        )

    def rows_total(self) -> int:
        return self._n_rows
