"""The shared full-scan row executor.

Every baseline backend evaluates queries by streaming rows through this
module: WHERE via the reference expression evaluator, grouping via a
hash table keyed by group-value tuples (the "more generic
implementation" the paper contrasts with its counts-array loop), and
aggregation via the mergeable states of :mod:`repro.core.aggregation`.
The tail (HAVING / ORDER BY / LIMIT) is the shared
:func:`repro.core.result.finalize`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any

from repro.core.aggregation import AggState, make_state
from repro.core.expr_eval import evaluate, truthy
from repro.core.plan import (
    is_aggregation_query,
    plan_group_query,
    resolve_group_aliases,
)
from repro.core.result import finalize
from repro.core.table import Schema, Table
from repro.errors import BindError
from repro.sql.ast_nodes import Query, Star


def execute_on_rows(
    query: Query,
    schema: Schema,
    rows: Iterable[tuple],
) -> Table:
    """Run ``query`` over row tuples matching ``schema`` order."""
    query = resolve_group_aliases(query)
    names = schema.field_names
    index_of = {name: i for i, name in enumerate(names)}

    def getter(row: tuple):
        def get_value(name: str) -> Any:
            try:
                return row[index_of[name]]
            except KeyError:
                raise BindError(f"unknown field {name!r}") from None

        return get_value

    matching: Iterator[tuple]
    if query.where is not None:
        where = query.where
        matching = (
            row for row in rows if truthy(evaluate(where, getter(row)))
        )
    else:
        matching = iter(rows)

    if is_aggregation_query(query):
        out_rows = _execute_grouped(query, matching, getter)
    else:
        out_rows = [
            {
                item.output_name(): evaluate(item.expr, getter(row))
                for item in query.select
            }
            for row in matching
        ]
    return finalize(out_rows, query)


def _execute_grouped(query: Query, rows: Iterator[tuple], getter):
    plan = plan_group_query(query)
    groups: dict[tuple, list[AggState]] = {}
    group_keys: dict[tuple, tuple] = {}

    def new_states() -> list[AggState]:
        return [make_state(agg) for agg in plan.aggregates]

    if not plan.grouped:
        # Global aggregation always yields exactly one group, even
        # over zero input rows (SQL semantics).
        groups[()] = new_states()
        group_keys[()] = ()

    for row in rows:
        get_value = getter(row)
        if plan.grouped:
            values = tuple(
                evaluate(expr, get_value) for expr in plan.group_exprs
            )
            # NULL-safe hash key: one NULL group, like the dictionaries.
            key = tuple((v is not None, v) for v in values)
        else:
            values = ()
            key = ()
        states = groups.get(key)
        if states is None:
            states = new_states()
            groups[key] = states
            group_keys[key] = values
        for agg, state in zip(plan.aggregates, states):
            if isinstance(agg.arg, Star):
                state.add(1)  # COUNT(*): counts every row
            else:
                state.add(evaluate(agg.arg, get_value))

    out_rows: list[dict[str, Any]] = []
    for key, states in groups.items():
        values = group_keys[key]
        env: dict[str, Any] = {}
        for i, value in enumerate(values):
            env[f"__group_{i}"] = value
        for j, state in enumerate(states):
            env[f"__agg_{j}"] = state.result()
        out_rows.append(
            {
                name: evaluate(expr, env.__getitem__)
                for name, expr in plan.items
            }
        )
    return out_rows
