"""The common backend interface.

A backend owns a dataset in some storage format and answers SQL
queries over it. :class:`Backend` fixes the contract the experiments
rely on: ``execute`` returns a :class:`~repro.core.result.QueryResult`
whose ``stats.memory_bytes`` reports what the backend had to hold in
memory for the query — the quantity Table 1 compares.
"""

from __future__ import annotations

import time
from collections.abc import Iterator

from repro.core.result import QueryResult, ScanStats
from repro.core.table import Schema, Table
from repro.formats.rowexec import execute_on_rows
from repro.errors import ExecutionError
from repro.sql.ast_nodes import Query
from repro.sql.parser import parse_query


class Backend:
    """Base class for full-scan row/column backends."""

    #: short name used in benchmark output tables
    name = "abstract"

    def __init__(self, table_name: str = "data") -> None:
        self.table_name = table_name

    # -- subclass contract ---------------------------------------------------
    @property
    def schema(self) -> Schema:
        raise NotImplementedError

    def scan_rows(self, query: Query) -> Iterator[tuple]:
        """Iterate row tuples in schema order (a full scan)."""
        raise NotImplementedError

    def memory_bytes(self, query: Query) -> int:
        """Bytes this backend must materialize/stream for ``query``."""
        raise NotImplementedError

    def rows_total(self) -> int:
        raise NotImplementedError

    # -- shared execution -----------------------------------------------------
    def execute(self, query: Query | str) -> QueryResult:
        """Full-scan execution via the shared row executor."""
        started = time.perf_counter()
        parsed = parse_query(query) if isinstance(query, str) else query
        if parsed.table != self.table_name:
            raise ExecutionError(
                f"query targets table {parsed.table!r}, backend holds "
                f"{self.table_name!r}"
            )
        table = execute_on_rows(parsed, self.schema, self.scan_rows(parsed))
        elapsed = time.perf_counter() - started
        n_rows = self.rows_total()
        n_fields = len(self.schema)
        stats = ScanStats(
            rows_total=n_rows,
            rows_scanned=n_rows,
            chunks_total=1,
            chunks_scanned=1,
            cells_scanned=n_rows * n_fields,
            memory_bytes=self.memory_bytes(parsed),
        )
        return QueryResult(table=table, stats=stats, elapsed_seconds=elapsed)
