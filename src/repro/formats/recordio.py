"""record-io: a binary row format on the protocol-buffer wire encoding.

The paper's second row-wise baseline is "record-io (binary format based
on protocol buffers)". This module implements that wire format from
scratch:

- each record is length-prefixed (varint) and contains one tagged
  entry per non-NULL field;
- a tag is ``(field_number << 3) | wire_type`` with the real protobuf
  wire types: 0 = varint (ints, zigzag-encoded), 1 = 64-bit (doubles),
  2 = length-delimited (UTF-8 strings);
- NULL fields are simply absent from the record.

Like CSV it is a row format: every query streams and decodes all
records, and ``memory_bytes`` reports the full file size.
"""

from __future__ import annotations

import os
import struct
from collections.abc import Iterator

import numpy as np

from repro.compress.varint import (
    decode_varint,
    decode_zigzag,
    encode_varint,
    encode_varint_array,
    encode_zigzag,
    varint_lengths,
)
from repro.core.table import DataType, Schema, Table
from repro.errors import TableError
from repro.formats.backend import Backend
from repro.sql.ast_nodes import Query

_WIRE_VARINT = 0
_WIRE_FIXED64 = 1
_WIRE_BYTES = 2


def _encode_record(row: tuple, dtypes: list[DataType]) -> bytes:
    body = bytearray()
    for field_number, (value, dtype) in enumerate(zip(row, dtypes), start=1):
        if value is None:
            continue
        if dtype is DataType.STRING:
            raw = value.encode("utf-8")
            body += encode_varint((field_number << 3) | _WIRE_BYTES)
            body += encode_varint(len(raw))
            body += raw
        elif dtype is DataType.INT:
            body += encode_varint((field_number << 3) | _WIRE_VARINT)
            body += encode_zigzag(int(value))
        else:
            body += encode_varint((field_number << 3) | _WIRE_FIXED64)
            body += struct.pack("<d", float(value))
    return bytes(encode_varint(len(body))) + bytes(body)


def _column_pieces(values: list, dtype: DataType, field_number: int) -> list[bytes]:
    """Per-row encoded (tag + payload) pieces for one column.

    NULL rows map to ``b""``. Numeric payloads are produced by the bulk
    varint kernels — one vectorized pass per column, then per-row
    slicing of the blob — and are byte-identical to the per-value
    scalar encoders.
    """
    if dtype is DataType.INT:
        tag = bytes(encode_varint((field_number << 3) | _WIRE_VARINT))
        non_null = [int(v) for v in values if v is not None]
        try:
            arr = np.asarray(non_null, dtype=np.int64)
        except OverflowError:
            # Ints beyond int64: the scalar encoder handles any width.
            return [
                b"" if v is None else tag + encode_zigzag(int(v))
                for v in values
            ]
        zigzag = ((arr << np.int64(1)) ^ (arr >> np.int64(63))).view(np.uint64)
        blob = encode_varint_array(zigzag)
        bounds = np.zeros(arr.size + 1, dtype=np.int64)
        np.cumsum(varint_lengths(zigzag), out=bounds[1:])
        offsets = iter(bounds.tolist())
        end = next(offsets)
        pieces = []
        for v in values:
            if v is None:
                pieces.append(b"")
            else:
                start, end = end, next(offsets)
                pieces.append(tag + blob[start:end])
        return pieces
    if dtype is not DataType.STRING:
        tag = bytes(encode_varint((field_number << 3) | _WIRE_FIXED64))
        packed = np.asarray(
            [float(v) for v in values if v is not None], dtype="<f8"
        ).tobytes()
        pieces = []
        end = 0
        for v in values:
            if v is None:
                pieces.append(b"")
            else:
                start, end = end, end + 8
                pieces.append(tag + packed[start:end])
        return pieces
    tag = bytes(encode_varint((field_number << 3) | _WIRE_BYTES))
    pieces = []
    for v in values:
        if v is None:
            pieces.append(b"")
        else:
            raw = v.encode("utf-8")
            pieces.append(tag + encode_varint(len(raw)) + raw)
    return pieces


def write_recordio(table: Table, path: str) -> int:
    """Write ``table`` to ``path``; returns the file size in bytes.

    Rows are byte-identical to encoding each with
    :func:`_encode_record`, but the numeric payloads of every column
    are produced in one bulk-kernel pass (see :func:`_column_pieces`),
    as are the record length prefixes.
    """
    columns = [
        _column_pieces(
            table.column(name).values, table.column(name).dtype, number
        )
        for number, name in enumerate(table.field_names, start=1)
    ]
    if columns:
        bodies = [b"".join(row_pieces) for row_pieces in zip(*columns)]
    else:
        bodies = [b""] * table.n_rows
    lengths = np.fromiter(
        map(len, bodies), dtype=np.int64, count=len(bodies)
    )
    prefix_blob = encode_varint_array(lengths)
    bounds = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(varint_lengths(lengths), out=bounds[1:])
    starts = bounds.tolist()
    with open(path, "wb") as handle:
        handle.write(
            b"".join(
                prefix_blob[starts[i] : starts[i + 1]] + body
                for i, body in enumerate(bodies)
            )
        )
    return os.path.getsize(path)


def read_recordio(path: str, schema: Schema) -> Table:
    """Load a record-io file written by :func:`write_recordio`."""
    backend = RecordIoBackend(path, schema)
    return Table.from_rows(backend.scan_rows(None), schema)


class RecordIoBackend(Backend):
    """Full-scan SQL over a record-io file."""

    name = "record-io"

    def __init__(self, path: str, schema: Schema, table_name: str = "data") -> None:
        super().__init__(table_name)
        self._path = path
        self._schema = schema
        self._n_rows: int | None = None

    @property
    def schema(self) -> Schema:
        return self._schema

    def scan_rows(self, query: Query | None) -> Iterator[tuple]:
        names = self._schema.field_names
        n_fields = len(names)
        with open(self._path, "rb") as handle:
            data = handle.read()
        pos = 0
        total = len(data)
        count = 0
        while pos < total:
            length, pos = decode_varint(data, pos)
            end = pos + length
            if end > total:
                raise TableError("truncated record-io record")
            values: list = [None] * n_fields
            while pos < end:
                tag, pos = decode_varint(data, pos)
                field_number = tag >> 3
                wire_type = tag & 0b111
                if not 1 <= field_number <= n_fields:
                    raise TableError(
                        f"record-io field number {field_number} out of range"
                    )
                if wire_type == _WIRE_VARINT:
                    value, pos = decode_zigzag(data, pos)
                elif wire_type == _WIRE_FIXED64:
                    (value,) = struct.unpack_from("<d", data, pos)
                    pos += 8
                elif wire_type == _WIRE_BYTES:
                    size, pos = decode_varint(data, pos)
                    value = data[pos : pos + size].decode("utf-8")
                    pos += size
                else:
                    raise TableError(f"unknown wire type {wire_type}")
                values[field_number - 1] = value
            count += 1
            yield tuple(values)
        self._n_rows = count

    def memory_bytes(self, query: Query) -> int:
        return os.path.getsize(self._path)

    def rows_total(self) -> int:
        if self._n_rows is None:
            self._n_rows = sum(1 for __ in self.scan_rows(None))
        return self._n_rows
