"""record-io: a binary row format on the protocol-buffer wire encoding.

The paper's second row-wise baseline is "record-io (binary format based
on protocol buffers)". This module implements that wire format from
scratch:

- each record is length-prefixed (varint) and contains one tagged
  entry per non-NULL field;
- a tag is ``(field_number << 3) | wire_type`` with the real protobuf
  wire types: 0 = varint (ints, zigzag-encoded), 1 = 64-bit (doubles),
  2 = length-delimited (UTF-8 strings);
- NULL fields are simply absent from the record.

Like CSV it is a row format: every query streams and decodes all
records, and ``memory_bytes`` reports the full file size.
"""

from __future__ import annotations

import os
import struct
from collections.abc import Iterator

from repro.compress.varint import (
    decode_varint,
    decode_zigzag,
    encode_varint,
    encode_zigzag,
)
from repro.core.table import DataType, Schema, Table
from repro.errors import TableError
from repro.formats.backend import Backend
from repro.sql.ast_nodes import Query

_WIRE_VARINT = 0
_WIRE_FIXED64 = 1
_WIRE_BYTES = 2


def _encode_record(row: tuple, dtypes: list[DataType]) -> bytes:
    body = bytearray()
    for field_number, (value, dtype) in enumerate(zip(row, dtypes), start=1):
        if value is None:
            continue
        if dtype is DataType.STRING:
            raw = value.encode("utf-8")
            body += encode_varint((field_number << 3) | _WIRE_BYTES)
            body += encode_varint(len(raw))
            body += raw
        elif dtype is DataType.INT:
            body += encode_varint((field_number << 3) | _WIRE_VARINT)
            body += encode_zigzag(int(value))
        else:
            body += encode_varint((field_number << 3) | _WIRE_FIXED64)
            body += struct.pack("<d", float(value))
    return bytes(encode_varint(len(body))) + bytes(body)


def write_recordio(table: Table, path: str) -> int:
    """Write ``table`` to ``path``; returns the file size in bytes."""
    dtypes = [table.column(name).dtype for name in table.field_names]
    with open(path, "wb") as handle:
        for row in table.iter_rows():
            handle.write(_encode_record(row, dtypes))
    return os.path.getsize(path)


def read_recordio(path: str, schema: Schema) -> Table:
    """Load a record-io file written by :func:`write_recordio`."""
    backend = RecordIoBackend(path, schema)
    return Table.from_rows(backend.scan_rows(None), schema)


class RecordIoBackend(Backend):
    """Full-scan SQL over a record-io file."""

    name = "record-io"

    def __init__(self, path: str, schema: Schema, table_name: str = "data") -> None:
        super().__init__(table_name)
        self._path = path
        self._schema = schema
        self._n_rows: int | None = None

    @property
    def schema(self) -> Schema:
        return self._schema

    def scan_rows(self, query: Query | None) -> Iterator[tuple]:
        names = self._schema.field_names
        n_fields = len(names)
        with open(self._path, "rb") as handle:
            data = handle.read()
        pos = 0
        total = len(data)
        count = 0
        while pos < total:
            length, pos = decode_varint(data, pos)
            end = pos + length
            if end > total:
                raise TableError("truncated record-io record")
            values: list = [None] * n_fields
            while pos < end:
                tag, pos = decode_varint(data, pos)
                field_number = tag >> 3
                wire_type = tag & 0b111
                if not 1 <= field_number <= n_fields:
                    raise TableError(
                        f"record-io field number {field_number} out of range"
                    )
                if wire_type == _WIRE_VARINT:
                    value, pos = decode_zigzag(data, pos)
                elif wire_type == _WIRE_FIXED64:
                    (value,) = struct.unpack_from("<d", data, pos)
                    pos += 8
                elif wire_type == _WIRE_BYTES:
                    size, pos = decode_varint(data, pos)
                    value = data[pos : pos + size].decode("utf-8")
                    pos += size
                else:
                    raise TableError(f"unknown wire type {wire_type}")
                values[field_number - 1] = value
            count += 1
            yield tuple(values)
        self._n_rows = count

    def memory_bytes(self, query: Query) -> int:
        return os.path.getsize(self._path)

    def rows_total(self) -> int:
        if self._n_rows is None:
            self._n_rows = sum(1 for __ in self.scan_rows(None))
        return self._n_rows
