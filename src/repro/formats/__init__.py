"""Baseline storage formats and full-scan backends.

These are the comparison systems of the paper's Table 1 experiments:

- :mod:`repro.formats.csv_backend` -- CSV, row-wise text.
- :mod:`repro.formats.recordio` -- "record-io", a binary row format
  using the protocol-buffer wire encoding (varints, tagged fields).
- :mod:`repro.formats.columnio` -- "column-io", the Dremel-stand-in:
  per-column compressed blocks, reads only referenced columns, but
  always full-scans and must decode before use.

All backends execute the same SQL dialect by full scans through the
shared row executor (:mod:`repro.formats.rowexec`), guaranteeing
identical results to the column-store.
"""

from repro.formats.backend import Backend
from repro.formats.columnio import ColumnIoBackend, read_columnio, write_columnio
from repro.formats.csv_backend import CsvBackend, read_csv, write_csv
from repro.formats.recordio import RecordIoBackend, read_recordio, write_recordio

__all__ = [
    "Backend",
    "ColumnIoBackend",
    "CsvBackend",
    "RecordIoBackend",
    "read_columnio",
    "read_csv",
    "read_recordio",
    "write_columnio",
    "write_csv",
    "write_recordio",
]
