"""Core of the reproduction: the PowerDrill datastore and query engine.

- :mod:`repro.core.table` -- the in-memory relational table used as the
  import source and as the result representation.
- :mod:`repro.core.datastore` -- :class:`~repro.core.datastore.DataStore`,
  the paper's column-store: import (reorder, partition, double-dictionary
  encode), virtual fields, and query execution with chunk skipping.
- :mod:`repro.core.engine` -- restriction analysis, per-chunk evaluation
  (the ``counts[elements[row]]++`` inner loop), and aggregation merging.
"""

from repro.core.table import Column, DataType, Schema, Table

__all__ = [
    "Column",
    "DataStore",
    "DataStoreOptions",
    "DataType",
    "ScanStats",
    "Schema",
    "Table",
]


def __getattr__(name: str) -> object:
    # DataStore lives in a heavier module; import it lazily so the
    # lightweight table types don't drag in the whole engine.
    if name in ("DataStore", "DataStoreOptions", "ScanStats"):
        from repro.core import datastore

        return getattr(datastore, name)
    # The module __getattr__ protocol requires AttributeError for unknown
    # names; anything else breaks hasattr() on the package.
    raise AttributeError(  # reprolint: disable=REP001 -- __getattr__ protocol
        f"module {__name__!r} has no attribute {name!r}"
    )
