"""Restriction analysis: chunk skipping and row masks — Sections 2.4 / 5.

The engine gives the operators ``AND, OR, NOT, IN, NOT IN, =, !=`` (plus
range comparisons, which the sorted-rank property makes equally cheap)
special support when deciding which chunks and rows are active:

1. The WHERE tree is normalized into a tree of *leaf predicates*, each
   over a single (original or materialized virtual) field compared
   against literals. Arbitrary sub-expressions are first materialized
   as virtual fields (Section 5 "Complex Expressions"), so this
   normalization is total.
2. Each leaf is turned into two boolean vectors over the field's global
   dictionary: ``t`` (value satisfies the predicate) and ``n``
   (predicate is NULL for this value) — a Kleene truth table indexed by
   global-id. Restricted to a chunk's chunk-dictionary these are
   *exact* per-distinct-value outcomes.
3. Per chunk, each node reports a conservative outcome summary
   (may-be-true / may-be-false / may-be-null, definitely-all-true /
   definitely-all-false), composed bottom-up. "No row may be true"
   -> the chunk is **skipped** without touching its elements; "every
   row definitely true" -> the chunk is **fully active** (its result is
   cacheable). Otherwise an exact per-row mask is computed by gathering
   the leaf vectors through the elements arrays and composing Kleene
   logic at row level.

Skipping is sound: the summary algebra only ever over-approximates the
set of possible row outcomes, so a skipped chunk provably contains no
matching row. The row-mask path is exact, and the decision is refined
with it (a PARTIAL candidate whose mask turns out empty is skipped).
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import UnsupportedQueryError
from repro.sql.ast_nodes import (
    BinaryOp,
    Expr,
    InList,
    Literal,
    UnaryOp,
)
from repro.storage.chunk import ColumnChunk
from repro.storage.dictionary import Dictionary

_CMP_OPS = ("=", "!=", "<", "<=", ">", ">=")
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


class ChunkStatus(enum.Enum):
    """Per-chunk outcome of restriction analysis."""

    SKIP = "skip"  # no row matches
    FULL = "full"  # every row matches (result cacheable)
    PARTIAL = "partial"  # some rows match; a row mask is needed


@dataclass
class ChunkDecision:
    status: ChunkStatus
    row_mask: np.ndarray | None = None  # bool per row, PARTIAL only


@dataclass(frozen=True)
class _Summary:
    """Conservative per-chunk outcome summary of a predicate node.

    ``may_*`` are supersets of the possible row outcomes; ``all_true``
    / ``all_false`` are underapproximations of "every row has this
    outcome". The invariants keep SKIP and FULL decisions sound.
    """

    may_true: bool
    may_false: bool
    may_null: bool
    all_true: bool
    all_false: bool


class _Node:
    """A compiled predicate node."""

    def summary(self, chunk_index: int) -> _Summary:
        raise NotImplementedError

    def row_vectors(
        self, chunk_index: int, element_arrays
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact per-row (t, n) Kleene vectors for one chunk."""
        raise NotImplementedError


class _Leaf(_Node):
    """A predicate over one field, precomputed as global (t, n) masks."""

    def __init__(
        self,
        field: str,
        t_mask: np.ndarray,
        n_mask: np.ndarray,
        column_chunks: list[ColumnChunk],
    ) -> None:
        self.field = field
        self._t = t_mask
        self._n = n_mask
        self._column_chunks = column_chunks

    def _dict_vectors(self, chunk_index: int) -> tuple[np.ndarray, np.ndarray]:
        chunk_dict = self._column_chunks[chunk_index].chunk_dict
        return self._t[chunk_dict], self._n[chunk_dict]

    def summary(self, chunk_index: int) -> _Summary:
        t, n = self._dict_vectors(chunk_index)
        false = ~t & ~n
        return _Summary(
            may_true=bool(t.any()),
            may_false=bool(false.any()),
            may_null=bool(n.any()),
            all_true=bool(t.all()),
            all_false=bool(false.all()),
        )

    def row_vectors(self, chunk_index, element_arrays):
        t, n = self._dict_vectors(chunk_index)
        elements = element_arrays(self.field, chunk_index)
        return t[elements], n[elements]


class _And(_Node):
    def __init__(self, left: _Node, right: _Node) -> None:
        self.left = left
        self.right = right

    def summary(self, chunk_index: int) -> _Summary:
        a = self.left.summary(chunk_index)
        b = self.right.summary(chunk_index)
        return _Summary(
            may_true=a.may_true and b.may_true,
            may_false=a.may_false or b.may_false,
            may_null=a.may_null or b.may_null,
            all_true=a.all_true and b.all_true,
            all_false=a.all_false or b.all_false,
        )

    def row_vectors(self, chunk_index, element_arrays):
        t1, n1 = self.left.row_vectors(chunk_index, element_arrays)
        t2, n2 = self.right.row_vectors(chunk_index, element_arrays)
        false = (~t1 & ~n1) | (~t2 & ~n2)
        true = t1 & t2
        return true, ~false & ~true


class _Or(_Node):
    def __init__(self, left: _Node, right: _Node) -> None:
        self.left = left
        self.right = right

    def summary(self, chunk_index: int) -> _Summary:
        a = self.left.summary(chunk_index)
        b = self.right.summary(chunk_index)
        return _Summary(
            may_true=a.may_true or b.may_true,
            may_false=a.may_false and b.may_false,
            may_null=a.may_null or b.may_null,
            all_true=a.all_true or b.all_true,
            all_false=a.all_false and b.all_false,
        )

    def row_vectors(self, chunk_index, element_arrays):
        t1, n1 = self.left.row_vectors(chunk_index, element_arrays)
        t2, n2 = self.right.row_vectors(chunk_index, element_arrays)
        true = t1 | t2
        return true, ~true & (n1 | n2)


class _Not(_Node):
    def __init__(self, operand: _Node) -> None:
        self.operand = operand

    def summary(self, chunk_index: int) -> _Summary:
        s = self.operand.summary(chunk_index)
        return _Summary(
            may_true=s.may_false,
            may_false=s.may_true,
            may_null=s.may_null,
            all_true=s.all_false,
            all_false=s.all_true,
        )

    def row_vectors(self, chunk_index, element_arrays):
        t, n = self.operand.row_vectors(chunk_index, element_arrays)
        return ~t & ~n, n


class Restriction:
    """A compiled WHERE clause, ready for per-chunk decisions."""

    def __init__(
        self,
        root: _Node | None,
        element_arrays: Callable[[str, int], np.ndarray],
    ) -> None:
        self._root = root
        self._element_arrays = element_arrays

    @property
    def unrestricted(self) -> bool:
        return self._root is None

    def decide(self, chunk_index: int) -> ChunkDecision:
        """Skip / full / partial decision (with row mask) for one chunk."""
        if self._root is None:
            return ChunkDecision(ChunkStatus.FULL)
        summary = self._root.summary(chunk_index)
        if not summary.may_true:
            return ChunkDecision(ChunkStatus.SKIP)
        if summary.all_true:
            return ChunkDecision(ChunkStatus.FULL)
        row_mask, __ = self._root.row_vectors(chunk_index, self._element_arrays)
        if not row_mask.any():
            return ChunkDecision(ChunkStatus.SKIP)
        if row_mask.all():
            return ChunkDecision(ChunkStatus.FULL)
        return ChunkDecision(ChunkStatus.PARTIAL, row_mask)


# -- leaf mask construction ---------------------------------------------------


def _lookup_gid(dictionary: Dictionary, value: Any) -> int | None:
    gid = dictionary.global_id(value)
    if gid is None and isinstance(value, int) and not isinstance(value, bool):
        # Integer literals should match float dictionary entries.
        gid = dictionary.global_id(float(value))
    return gid


def _leaf_masks_in(
    dictionary: Dictionary, values: tuple[Any, ...], negated: bool
) -> tuple[np.ndarray, np.ndarray]:
    """(t, n) global masks for ``field [NOT] IN (values)``."""
    n_values = len(dictionary)
    t = np.zeros(n_values, dtype=bool)
    n = np.zeros(n_values, dtype=bool)
    null_listed = any(v is None for v in values)
    listed = [v for v in values if v is not None]
    # One batched dictionary probe for the whole IN list; the int ->
    # float retry mirrors _lookup_gid.
    for value, gid in zip(listed, dictionary.global_ids(listed)):
        if gid is None and isinstance(value, int) and not isinstance(value, bool):
            gid = dictionary.global_id(float(value))
        if gid is not None:
            t[gid] = True
    if dictionary.has_null:
        if null_listed:
            t[0] = True  # the IS NULL rewrite: NULL matches exactly
            n[0] = False
        else:
            t[0] = False
            n[0] = True  # plain IN on NULL input is NULL
    if negated:
        return ~t & ~n, n
    return t, n


def _leaf_masks_cmp(
    dictionary: Dictionary, op: str, literal: Any
) -> tuple[np.ndarray, np.ndarray]:
    """(t, n) global masks for ``field <op> literal``."""
    n_values = len(dictionary)
    t = np.zeros(n_values, dtype=bool)
    n = np.zeros(n_values, dtype=bool)
    if dictionary.has_null:
        n[0] = True  # comparisons with NULL are NULL
    if literal is None:
        n[:] = True
        return t, n
    if op in ("=", "!="):
        gid = _lookup_gid(dictionary, literal)
        if op == "=":
            if gid is not None:
                t[gid] = True
        else:
            offset = 1 if dictionary.has_null else 0
            t[offset:] = True
            if gid is not None:
                t[gid] = False
        return t, n
    lo, hi = dictionary.gid_range(op, literal)
    t[lo:hi] = True
    if dictionary.has_null:
        t[0] = False
    return t, n


def _leaf_masks_truthy(dictionary: Dictionary) -> tuple[np.ndarray, np.ndarray]:
    """(t, n) masks for using a (numeric) field directly as a condition."""
    n_values = len(dictionary)
    t = np.zeros(n_values, dtype=bool)
    n = np.zeros(n_values, dtype=bool)
    for gid, value in enumerate(dictionary.values()):
        if value is None:
            n[gid] = True
        elif isinstance(value, str):
            raise UnsupportedQueryError(
                "a string-valued expression cannot be used as a condition"
            )
        else:
            t[gid] = bool(value != 0)
    return t, n


# -- compilation ---------------------------------------------------------------


def compile_restriction(
    where: Expr | None,
    ensure_field: Callable[[Expr], str],
    dictionary_of: Callable[[str], Dictionary],
    column_chunks_of: Callable[[str], list[ColumnChunk]],
    element_arrays: Callable[[str, int], np.ndarray],
) -> Restriction:
    """Compile a WHERE expression into a :class:`Restriction`.

    ``ensure_field`` materializes an arbitrary scalar expression as a
    (virtual) field and returns its name — the hook into the
    datastore's virtual-field machinery. ``element_arrays`` returns the
    dense chunk-id array of (field, chunk).
    """
    if where is None:
        return Restriction(None, element_arrays)
    root = _compile(where, ensure_field, dictionary_of, column_chunks_of)
    return Restriction(root, element_arrays)


def _compile(
    expr: Expr,
    ensure_field: Callable[[Expr], str],
    dictionary_of: Callable[[str], Dictionary],
    column_chunks_of: Callable[[str], list[ColumnChunk]],
) -> _Node:
    def recurse(node: Expr) -> _Node:
        return _compile(node, ensure_field, dictionary_of, column_chunks_of)

    def leaf_for(field: str, masks: tuple[np.ndarray, np.ndarray]) -> _Leaf:
        return _Leaf(field, masks[0], masks[1], column_chunks_of(field))

    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _And(recurse(expr.left), recurse(expr.right))
    if isinstance(expr, BinaryOp) and expr.op == "OR":
        return _Or(recurse(expr.left), recurse(expr.right))
    if isinstance(expr, UnaryOp) and expr.op == "NOT":
        return _Not(recurse(expr.operand))

    if isinstance(expr, InList):
        field = ensure_field(expr.operand)
        return leaf_for(
            field, _leaf_masks_in(dictionary_of(field), expr.values, expr.negated)
        )

    if isinstance(expr, BinaryOp) and expr.op in _CMP_OPS:
        left_lit = isinstance(expr.left, Literal)
        right_lit = isinstance(expr.right, Literal)
        if right_lit and not left_lit:
            operand, op, literal = expr.left, expr.op, expr.right.value
        elif left_lit and not right_lit:
            operand, op, literal = expr.right, _FLIP[expr.op], expr.left.value
        else:
            # constant=constant or field-vs-field comparison:
            # materialize the whole predicate and test truthiness.
            field = ensure_field(expr)
            return leaf_for(field, _leaf_masks_truthy(dictionary_of(field)))
        field = ensure_field(operand)
        return leaf_for(
            field, _leaf_masks_cmp(dictionary_of(field), op, literal)
        )

    # Anything else used as a condition (bare function call, bare
    # field, arithmetic): materialize it and test truthiness.
    field = ensure_field(expr)
    return leaf_for(field, _leaf_masks_truthy(dictionary_of(field)))
