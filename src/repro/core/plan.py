"""Select-list planning shared by the column-store and row backends.

A grouped query's select items are rewritten over two kinds of
placeholder columns:

- ``__group_<i>`` — the value of the i-th GROUP BY expression,
- ``__agg_<j>`` — the value of the j-th distinct aggregate.

Every backend computes those per group (each in its own way) and then
evaluates the same rewritten expressions — so expressions *around*
aggregates (``SUM(x) / COUNT(*)``) behave identically everywhere.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Any, Iterator

from repro.errors import UnsupportedQueryError
from repro.sql.ast_nodes import (
    Aggregate,
    BinaryOp,
    Expr,
    FieldRef,
    FuncCall,
    InList,
    Query,
    Star,
    UnaryOp,
    walk,
)


@dataclass(frozen=True)
class GroupPlan:
    """The planned shape of a grouped (or globally aggregated) query."""

    group_exprs: tuple[Expr, ...]
    aggregates: tuple[Aggregate, ...]
    #: (output column name, expression over __group_i / __agg_j)
    items: tuple[tuple[str, Expr], ...]

    @property
    def grouped(self) -> bool:
        return bool(self.group_exprs)


def is_aggregation_query(query: Query) -> bool:
    """Whether the query takes the grouped path (vs plain projection)."""
    if query.group_by:
        return True
    return any(
        isinstance(node, Aggregate)
        for item in query.select
        for node in walk(item.expr)
    )


def plan_group_query(query: Query) -> GroupPlan:
    """Rewrite the select list over group/aggregate placeholders.

    Raises :class:`UnsupportedQueryError` when a select item references
    a column that is neither grouped by nor inside an aggregate.
    """
    group_sqls = {expr.sql(): i for i, expr in enumerate(query.group_by)}
    agg_order: list[Aggregate] = []
    agg_index: dict[str, int] = {}

    def rewrite(node: Expr) -> Expr:
        rendered = node.sql()
        if rendered in group_sqls:
            return FieldRef(f"__group_{group_sqls[rendered]}")
        if isinstance(node, Aggregate):
            if rendered not in agg_index:
                agg_index[rendered] = len(agg_order)
                agg_order.append(node)
            return FieldRef(f"__agg_{agg_index[rendered]}")
        if isinstance(node, FuncCall):
            return FuncCall(node.name, tuple(rewrite(a) for a in node.args))
        if isinstance(node, BinaryOp):
            return BinaryOp(node.op, rewrite(node.left), rewrite(node.right))
        if isinstance(node, UnaryOp):
            return UnaryOp(node.op, rewrite(node.operand))
        if isinstance(node, InList):
            return InList(rewrite(node.operand), node.values, node.negated)
        if isinstance(node, FieldRef):
            raise UnsupportedQueryError(
                f"field {node.name!r} is selected but not grouped by"
            )
        if isinstance(node, Star):
            raise UnsupportedQueryError("'*' is only valid inside COUNT(*)")
        return node

    items = tuple(
        (item.output_name(), rewrite(item.expr)) for item in query.select
    )
    return GroupPlan(
        group_exprs=tuple(query.group_by),
        aggregates=tuple(agg_order),
        items=items,
    )


def resolve_group_aliases(query: Query) -> Query:
    """Replace select-alias references in GROUP BY with their expressions.

    Supports the paper's Query 2 style: ``SELECT date(timestamp) AS
    date ... GROUP BY date``.
    """
    if not query.group_by:
        return query
    aliases = {
        item.alias: item.expr for item in query.select if item.alias is not None
    }
    changed = False
    new_group = []
    for expr in query.group_by:
        if isinstance(expr, FieldRef) and expr.name in aliases:
            new_group.append(aliases[expr.name])
            changed = True
        else:
            new_group.append(expr)
    if not changed:
        return query
    return Query(
        select=query.select,
        table=query.table,
        where=query.where,
        group_by=tuple(new_group),
        having=query.having,
        order_by=query.order_by,
        limit=query.limit,
    )


# -- canonicalization and fingerprints -----------------------------------------
#
# The serving layer's semantic result cache keys on *canonical* query
# plans so that semantically identical queries share one cache entry.
# Only transformations that provably preserve results are applied:
#
# - nested AND/OR chains are flattened, deduplicated, and sorted by
#   canonical SQL (both connectives are commutative, associative and
#   idempotent under SQL's three-valued logic, and the restriction
#   compiler's conjunction summary is symmetric);
# - IN lists are sorted with a type-tagged key and deduplicated
#   (membership is order- and multiplicity-insensitive);
# - GROUP BY aliases are resolved (``resolve_group_aliases``), exactly
#   as the engine itself does before execution.
#
# Select items, GROUP BY order, HAVING, ORDER BY and LIMIT are left
# untouched: their order is load-bearing (output columns, composite
# group layout, tie-breaks), so reordering them could change results.


def _literal_order_key(value: Any) -> tuple[bool, str, str]:
    """A deterministic total order over heterogeneous literal values."""
    return (value is not None, value.__class__.__name__, repr(value))


def _flatten_connective(op: str, expr: Expr) -> Iterator[Expr]:
    if isinstance(expr, BinaryOp) and expr.op == op:
        yield from _flatten_connective(op, expr.left)
        yield from _flatten_connective(op, expr.right)
    else:
        yield expr


def canonical_expr(expr: Expr) -> Expr:
    """Rewrite ``expr`` into its canonical, semantics-preserving form."""
    if isinstance(expr, BinaryOp) and expr.op in ("AND", "OR"):
        parts = [
            canonical_expr(part)
            for part in _flatten_connective(expr.op, expr)
        ]
        unique: dict[str, Expr] = {}
        for part in parts:
            unique.setdefault(part.sql(), part)
        ordered = [unique[rendered] for rendered in sorted(unique)]
        folded = ordered[0]
        for nxt in ordered[1:]:
            folded = BinaryOp(expr.op, folded, nxt)
        return folded
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op, canonical_expr(expr.left), canonical_expr(expr.right)
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, canonical_expr(expr.operand))
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name, tuple(canonical_expr(arg) for arg in expr.args)
        )
    if isinstance(expr, InList):
        unique_values: dict[tuple[bool, str, str], Any] = {}
        for value in expr.values:
            unique_values.setdefault(_literal_order_key(value), value)
        ordered_values = tuple(
            unique_values[key] for key in sorted(unique_values)
        )
        return InList(
            canonical_expr(expr.operand), ordered_values, expr.negated
        )
    if isinstance(expr, Aggregate):
        return Aggregate(
            expr.name,
            canonical_expr(expr.arg),
            expr.distinct,
            expr.approximate,
            expr.m,
        )
    return expr


def canonical_query(query: Query) -> Query:
    """The canonical form of ``query`` used for semantic cache keying.

    Executing the canonical query is bit-identical to executing the
    original: only the WHERE clause is rewritten (commutative /
    idempotent transformations), and GROUP BY aliases are resolved the
    same way :meth:`DataStore.execute` resolves them.
    """
    resolved = resolve_group_aliases(query)
    if resolved.where is None:
        return resolved
    return replace(resolved, where=canonical_expr(resolved.where))


def where_conjuncts(query: Query) -> tuple[str, ...]:
    """The canonical WHERE, split into its sorted top-level conjuncts.

    A drill-down refinement's conjunct set is a superset of its
    parent's — the subset relation over these tuples is what the
    serving cache's subsumption reuse keys on. Queries without a WHERE
    return the empty tuple (the unrestricted footprint).
    """
    canonical = canonical_query(query)
    if canonical.where is None:
        return ()
    return tuple(
        sorted(
            part.sql()
            for part in _flatten_connective("AND", canonical.where)
        )
    )


def query_fingerprint(query: Query) -> str:
    """A stable content hash of the canonical query plan."""
    rendered = canonical_query(query).sql()
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()
