"""Select-list planning shared by the column-store and row backends.

A grouped query's select items are rewritten over two kinds of
placeholder columns:

- ``__group_<i>`` — the value of the i-th GROUP BY expression,
- ``__agg_<j>`` — the value of the j-th distinct aggregate.

Every backend computes those per group (each in its own way) and then
evaluates the same rewritten expressions — so expressions *around*
aggregates (``SUM(x) / COUNT(*)``) behave identically everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnsupportedQueryError
from repro.sql.ast_nodes import (
    Aggregate,
    BinaryOp,
    Expr,
    FieldRef,
    FuncCall,
    InList,
    Query,
    Star,
    UnaryOp,
    walk,
)


@dataclass(frozen=True)
class GroupPlan:
    """The planned shape of a grouped (or globally aggregated) query."""

    group_exprs: tuple[Expr, ...]
    aggregates: tuple[Aggregate, ...]
    #: (output column name, expression over __group_i / __agg_j)
    items: tuple[tuple[str, Expr], ...]

    @property
    def grouped(self) -> bool:
        return bool(self.group_exprs)


def is_aggregation_query(query: Query) -> bool:
    """Whether the query takes the grouped path (vs plain projection)."""
    if query.group_by:
        return True
    return any(
        isinstance(node, Aggregate)
        for item in query.select
        for node in walk(item.expr)
    )


def plan_group_query(query: Query) -> GroupPlan:
    """Rewrite the select list over group/aggregate placeholders.

    Raises :class:`UnsupportedQueryError` when a select item references
    a column that is neither grouped by nor inside an aggregate.
    """
    group_sqls = {expr.sql(): i for i, expr in enumerate(query.group_by)}
    agg_order: list[Aggregate] = []
    agg_index: dict[str, int] = {}

    def rewrite(node: Expr) -> Expr:
        rendered = node.sql()
        if rendered in group_sqls:
            return FieldRef(f"__group_{group_sqls[rendered]}")
        if isinstance(node, Aggregate):
            if rendered not in agg_index:
                agg_index[rendered] = len(agg_order)
                agg_order.append(node)
            return FieldRef(f"__agg_{agg_index[rendered]}")
        if isinstance(node, FuncCall):
            return FuncCall(node.name, tuple(rewrite(a) for a in node.args))
        if isinstance(node, BinaryOp):
            return BinaryOp(node.op, rewrite(node.left), rewrite(node.right))
        if isinstance(node, UnaryOp):
            return UnaryOp(node.op, rewrite(node.operand))
        if isinstance(node, InList):
            return InList(rewrite(node.operand), node.values, node.negated)
        if isinstance(node, FieldRef):
            raise UnsupportedQueryError(
                f"field {node.name!r} is selected but not grouped by"
            )
        if isinstance(node, Star):
            raise UnsupportedQueryError("'*' is only valid inside COUNT(*)")
        return node

    items = tuple(
        (item.output_name(), rewrite(item.expr)) for item in query.select
    )
    return GroupPlan(
        group_exprs=tuple(query.group_by),
        aggregates=tuple(agg_order),
        items=items,
    )


def resolve_group_aliases(query: Query) -> Query:
    """Replace select-alias references in GROUP BY with their expressions.

    Supports the paper's Query 2 style: ``SELECT date(timestamp) AS
    date ... GROUP BY date``.
    """
    if not query.group_by:
        return query
    aliases = {
        item.alias: item.expr for item in query.select if item.alias is not None
    }
    changed = False
    new_group = []
    for expr in query.group_by:
        if isinstance(expr, FieldRef) and expr.name in aliases:
            new_group.append(aliases[expr.name])
            changed = True
        else:
            new_group.append(expr)
    if not changed:
        return query
    return Query(
        select=query.select,
        table=query.table,
        where=query.where,
        group_by=tuple(new_group),
        having=query.having,
        order_by=query.order_by,
        limit=query.limit,
    )
