"""Row-wise expression evaluation with SQL NULL semantics.

This evaluator is the *semantic reference* for the whole repository:
the row-store baseline backends use it directly for every row, and the
column-store uses it to materialize virtual fields (once per distinct
input combination). Keeping one implementation guarantees that all
backends agree on every query — the cross-backend equality property
the test suite checks.

Semantics notes (documented divergences are deliberate and shared):

- three-valued logic: comparisons/arithmetic with NULL yield NULL;
  ``AND``/``OR`` follow Kleene logic; WHERE keeps rows whose predicate
  is truthy (NULL is not).
- ``x IN (a, b)`` is NULL when x is NULL — unless NULL is itself listed,
  which only the parser's ``IS [NOT] NULL`` rewrite produces; then the
  list matches NULL exactly.
- division by zero yields NULL (kept total so property tests can run
  arbitrary generated expressions).
- comparisons between strings and numbers raise
  :class:`~repro.errors.ExecutionError` — mixing them is a type error,
  not data.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.errors import ExecutionError, UnsupportedQueryError
from repro.sql.ast_nodes import (
    Aggregate,
    BinaryOp,
    Expr,
    FieldRef,
    FuncCall,
    InList,
    Literal,
    Star,
    UnaryOp,
)
from repro.sql.functions import apply_scalar

_NUMERIC = (int, float)


def _check_comparable(left: Any, right: Any) -> None:
    left_is_str = isinstance(left, str)
    right_is_str = isinstance(right, str)
    if left_is_str != right_is_str:
        raise ExecutionError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        )


def _compare(op: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    _check_comparable(left, right)
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExecutionError(f"unknown comparison operator {op!r}")


def _arith(op: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    if not isinstance(left, _NUMERIC) or not isinstance(right, _NUMERIC):
        raise ExecutionError(
            f"arithmetic needs numbers, got {type(left).__name__} "
            f"and {type(right).__name__}"
        )
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None
        result = left / right
        return result
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


def _logic_and(left: Any, right: Any) -> Any:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return bool(left) and bool(right)


def _logic_or(left: Any, right: Any) -> Any:
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return bool(left) or bool(right)


def _truthy(value: Any) -> Any:
    """Map a raw value into three-valued logic for AND/OR/NOT/WHERE."""
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, _NUMERIC):
        return value != 0
    raise ExecutionError(
        f"cannot use {type(value).__name__} value as a condition"
    )


def evaluate(expr: Expr, get_value: Callable[[str], Any]) -> Any:
    """Evaluate ``expr`` for one row; fields resolve via ``get_value``."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, FieldRef):
        return get_value(expr.name)
    if isinstance(expr, FuncCall):
        args = [evaluate(arg, get_value) for arg in expr.args]
        return apply_scalar(expr.name, args)
    if isinstance(expr, UnaryOp):
        operand = evaluate(expr.operand, get_value)
        if expr.op == "NOT":
            truth = _truthy(operand)
            return None if truth is None else not truth
        if operand is None:
            return None
        if not isinstance(operand, _NUMERIC):
            raise ExecutionError(
                f"unary minus needs a number, got {type(operand).__name__}"
            )
        return -operand
    if isinstance(expr, BinaryOp):
        if expr.op == "AND":
            return _logic_and(
                _truthy(evaluate(expr.left, get_value)),
                _truthy(evaluate(expr.right, get_value)),
            )
        if expr.op == "OR":
            return _logic_or(
                _truthy(evaluate(expr.left, get_value)),
                _truthy(evaluate(expr.right, get_value)),
            )
        left = evaluate(expr.left, get_value)
        right = evaluate(expr.right, get_value)
        if expr.op in ("=", "!=", "<", "<=", ">", ">="):
            return _compare(expr.op, left, right)
        return _arith(expr.op, left, right)
    if isinstance(expr, InList):
        operand = evaluate(expr.operand, get_value)
        null_listed = any(v is None for v in expr.values)
        if operand is None:
            # Plain IN is NULL on NULL input; the IS NULL rewrite
            # (NULL in the list) matches it exactly.
            if null_listed:
                return not expr.negated
            return None
        matched = any(
            v is not None and _in_member_equal(operand, v) for v in expr.values
        )
        return matched != expr.negated
    if isinstance(expr, Star):
        raise UnsupportedQueryError("'*' is only valid inside COUNT(*)")
    if isinstance(expr, Aggregate):
        raise UnsupportedQueryError(
            "aggregate used where a scalar expression is required"
        )
    raise ExecutionError(f"cannot evaluate expression node {expr!r}")


def _in_member_equal(operand: Any, member: Any) -> bool:
    if isinstance(operand, str) != isinstance(member, str):
        return False
    return operand == member


def truthy(value: Any) -> bool:
    """Collapse a three-valued predicate result to row-keep semantics."""
    return _truthy(value) is True
