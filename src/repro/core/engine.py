"""Vectorized per-chunk aggregation — the Section 2.4 inner loop.

"To evaluate the group-by statement per chunk, an integer array counts
with the same size as the chunk-dictionary is created. We then add up
the counts in a loop over the elements, i.e.,
``counts[elements[row]]++``."

Each aggregator here computes a compact per-chunk *partial* (the
numpy equivalent of that loop — ``np.bincount`` over chunk-ids /
global-ids) and then folds partials into global per-group accumulators
keyed by the group field's global-ids. Partials are self-contained and
reusable, which is what the chunk-result cache of Section 6 stores:
a fully-active chunk's partial does not depend on the WHERE clause, so
later queries that fully cover the chunk reuse it without rescanning.

Group keys are global-ids of the group field, so merging across chunks
(and across shards, in the distributed layer) is plain integer-indexed
accumulation — no hash tables in the hot path, which is exactly the
advantage the paper measures in its Query 1/3 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import ExecutionError
from repro.sketches.kmv import KmvSketch
from repro.sql.ast_nodes import Aggregate, Star
from repro.storage.dictionary import Dictionary

if TYPE_CHECKING:  # imported only for annotations: datastore imports us
    from repro.core.datastore import FieldStore


@dataclass
class ChunkData:
    """Per-chunk inputs handed to the aggregators.

    ``group_ids``: the group field's global-id per row (all zeros when
    the query has no GROUP BY). ``mask``: boolean row filter, or None
    when the chunk is fully active.
    """

    group_ids: np.ndarray
    mask: np.ndarray | None

    def masked_group_ids(self) -> np.ndarray:
        if self.mask is None:
            return self.group_ids
        return self.group_ids[self.mask]


class ColumnarAggregator:
    """Base: per-chunk partial computation + global accumulation.

    Threading contract (enforced by lint rule REP007, relied on by the
    parallel executor in :mod:`repro.core.executor`):

    - :meth:`chunk_partial` is **pure with respect to the aggregator**:
      it may read ``self`` (dictionaries, per-gid value tables, flags)
      but must never mutate it. The executor calls it concurrently from
      worker threads, one call per chunk.
    - :meth:`apply` is where all mutable state lives. It runs only on
      the merge thread, in ascending chunk order, which keeps parallel
      execution bit-identical to serial.
    - A partial may be cached and re-applied by later queries, so
      ``apply`` must not mutate the partial either.
    - Execution is **at-least-once**: the process supervisor re-runs a
      chunk task whose worker died or hung mid-flight, and may run the
      same chunk twice when a retried attempt races a straggler. The
      purity above is what makes that safe — a ``chunk_partial`` call
      has no effect other than its return value, so re-dispatch cannot
      double-count; only the merge thread's single ``apply`` per chunk
      position does.
    """

    def __init__(self, n_groups: int) -> None:
        self.n_groups = n_groups

    def chunk_partial(self, data: ChunkData, arg_ids: np.ndarray | None) -> Any:
        """Compute this aggregate's partial for one chunk.

        ``arg_ids`` is the argument field's global-id per row (None for
        COUNT(*)). Must not mutate ``self`` — see the class docstring.
        """
        raise NotImplementedError

    def apply(self, partial: Any) -> None:
        """Fold a partial into the global accumulators (merge thread)."""
        raise NotImplementedError

    def results(self, present: np.ndarray) -> list[Any]:
        """Final value for each present group (ascending gid order)."""
        raise NotImplementedError


def _sparse_bincount(
    ids: np.ndarray, weights: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """(unique ids, per-id totals) — a compact bincount."""
    if not ids.size:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
    unique, inverse = np.unique(ids, return_inverse=True)
    if weights is None:
        totals = np.bincount(inverse, minlength=unique.size)
    else:
        totals = np.bincount(inverse, weights=weights, minlength=unique.size)
    return unique.astype(np.int64), totals


class PresenceAggregator(ColumnarAggregator):
    """Row count per group: powers COUNT(*) and group presence."""

    def __init__(self, n_groups: int) -> None:
        super().__init__(n_groups)
        self.counts = np.zeros(n_groups, dtype=np.int64)

    def chunk_partial(
        self, data: ChunkData, arg_ids: np.ndarray | None
    ) -> Any:
        return _sparse_bincount(data.masked_group_ids())

    def apply(self, partial: Any) -> None:
        gids, totals = partial
        self.counts[gids] += totals.astype(np.int64)

    def results(self, present: np.ndarray) -> list[int]:
        return [int(c) for c in self.counts[present]]


class CountValueAggregator(ColumnarAggregator):
    """COUNT(x): non-NULL rows per group."""

    def __init__(self, n_groups: int, arg_has_null: bool) -> None:
        super().__init__(n_groups)
        self.arg_has_null = arg_has_null
        self.counts = np.zeros(n_groups, dtype=np.int64)

    def _valid(self, data: ChunkData, arg_ids: np.ndarray) -> np.ndarray:
        valid = arg_ids != 0 if self.arg_has_null else np.ones(
            arg_ids.shape, dtype=bool
        )
        if data.mask is not None:
            valid = valid & data.mask
        return valid

    def chunk_partial(
        self, data: ChunkData, arg_ids: np.ndarray | None
    ) -> Any:
        valid = self._valid(data, arg_ids)
        return _sparse_bincount(data.group_ids[valid])

    def apply(self, partial: Any) -> None:
        gids, totals = partial
        self.counts[gids] += totals.astype(np.int64)

    def results(self, present: np.ndarray) -> list[int]:
        return [int(c) for c in self.counts[present]]


class SumAggregator(ColumnarAggregator):
    """SUM(x) (and the sum half of AVG)."""

    def __init__(
        self, n_groups: int, numeric_values: np.ndarray, arg_has_null: bool
    ) -> None:
        super().__init__(n_groups)
        self.numeric_values = numeric_values  # per-gid float64
        self.arg_has_null = arg_has_null
        self.totals = np.zeros(n_groups, dtype=np.float64)
        self.counts = np.zeros(n_groups, dtype=np.int64)

    def chunk_partial(
        self, data: ChunkData, arg_ids: np.ndarray | None
    ) -> Any:
        valid = arg_ids != 0 if self.arg_has_null else np.ones(
            arg_ids.shape, dtype=bool
        )
        if data.mask is not None:
            valid = valid & data.mask
        group_ids = data.group_ids[valid]
        values = self.numeric_values[arg_ids[valid]]
        gids, totals = _sparse_bincount(group_ids, weights=values)
        __, counts = _sparse_bincount(group_ids)
        return gids, totals, counts

    def apply(self, partial: Any) -> None:
        gids, totals, counts = partial
        self.totals[gids] += totals
        self.counts[gids] += counts.astype(np.int64)

    def results(self, present: np.ndarray) -> list[float | None]:
        out: list[float | None] = []
        for total, count in zip(self.totals[present], self.counts[present]):
            out.append(float(total) if count else None)
        return out


class AvgAggregator(SumAggregator):
    """AVG(x) = SUM(x) / COUNT(x)."""

    def results(self, present: np.ndarray) -> list[float | None]:
        out: list[float | None] = []
        for total, count in zip(self.totals[present], self.counts[present]):
            out.append(float(total) / int(count) if count else None)
        return out


class _ExtremeAggregator(ColumnarAggregator):
    """Shared MIN/MAX machinery over *global-ids*.

    Global-ids are ranks, so the minimum value in a group is the value
    of its minimum global-id — MIN/MAX work on any dictionary type
    (strings included) without touching the values until the very end.
    """

    _is_min = True

    def __init__(
        self, n_groups: int, dictionary: Dictionary, arg_has_null: bool
    ) -> None:
        super().__init__(n_groups)
        self.dictionary = dictionary
        self.arg_has_null = arg_has_null
        sentinel = np.iinfo(np.int64).max if self._is_min else -1
        self.best = np.full(n_groups, sentinel, dtype=np.int64)

    def chunk_partial(
        self, data: ChunkData, arg_ids: np.ndarray | None
    ) -> Any:
        valid = arg_ids != 0 if self.arg_has_null else np.ones(
            arg_ids.shape, dtype=bool
        )
        if data.mask is not None:
            valid = valid & data.mask
        group_ids = data.group_ids[valid]
        values = arg_ids[valid].astype(np.int64, copy=False)
        if not group_ids.size:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        # Sort by (group, value); the first row per group is its min,
        # the last its max — one vectorized pass, no scatter loop.
        order = np.lexsort((values, group_ids))
        sorted_groups = group_ids[order]
        sorted_values = values[order]
        if self._is_min:
            firsts = np.ones(sorted_groups.size, dtype=bool)
            firsts[1:] = sorted_groups[1:] != sorted_groups[:-1]
            return sorted_groups[firsts], sorted_values[firsts]
        lasts = np.ones(sorted_groups.size, dtype=bool)
        lasts[:-1] = sorted_groups[1:] != sorted_groups[:-1]
        return sorted_groups[lasts], sorted_values[lasts]

    def apply(self, partial: Any) -> None:
        gids, values = partial
        if not gids.size:
            return
        if self._is_min:
            np.minimum.at(self.best, gids, values)
        else:
            np.maximum.at(self.best, gids, values)

    def results(self, present: np.ndarray) -> list[Any]:
        sentinel = np.iinfo(np.int64).max if self._is_min else -1
        out: list[Any] = []
        for best in self.best[present]:
            out.append(None if best == sentinel else self.dictionary.value(int(best)))
        return out


class MinAggregator(_ExtremeAggregator):
    _is_min = True


class MaxAggregator(_ExtremeAggregator):
    _is_min = False


class CountDistinctAggregator(ColumnarAggregator):
    """Exact COUNT(DISTINCT x) via global (group, value) pair dedup."""

    def __init__(
        self, n_groups: int, dictionary: Dictionary, arg_has_null: bool
    ) -> None:
        super().__init__(n_groups)
        self.dictionary = dictionary
        self.arg_has_null = arg_has_null
        self._pair_chunks: list[np.ndarray] = []

    def chunk_partial(
        self, data: ChunkData, arg_ids: np.ndarray | None
    ) -> Any:
        valid = arg_ids != 0 if self.arg_has_null else np.ones(
            arg_ids.shape, dtype=bool
        )
        if data.mask is not None:
            valid = valid & data.mask
        pairs = (
            data.group_ids[valid].astype(np.int64, copy=False) << 32
        ) | arg_ids[valid].astype(np.int64, copy=False)
        return np.unique(pairs)

    def apply(self, partial: Any) -> None:
        self._pair_chunks.append(partial)

    def results(self, present: np.ndarray) -> list[int]:
        if self._pair_chunks:
            pairs = np.unique(np.concatenate(self._pair_chunks))
            groups = (pairs >> 32).astype(np.int64)
            counts = np.bincount(groups, minlength=self.n_groups)
        else:
            counts = np.zeros(self.n_groups, dtype=np.int64)
        return [int(c) for c in counts[present]]


class ApproxCountDistinctAggregator(ColumnarAggregator):
    """KMV-sketched COUNT DISTINCT (Section 5).

    Per chunk, the distinct (group, value) pairs are known from the
    dictionaries; each group's sketch folds in the hashes of its
    distinct values as one vector — the "sorted dictionary" fast path.
    """

    def __init__(
        self, n_groups: int, hash_units: np.ndarray, arg_has_null: bool, m: int
    ) -> None:
        super().__init__(n_groups)
        self.hash_units = hash_units  # per-gid hash in [0, 1)
        self.arg_has_null = arg_has_null
        self.m = m
        self._sketches: dict[int, KmvSketch] = {}

    def chunk_partial(
        self, data: ChunkData, arg_ids: np.ndarray | None
    ) -> Any:
        valid = arg_ids != 0 if self.arg_has_null else np.ones(
            arg_ids.shape, dtype=bool
        )
        if data.mask is not None:
            valid = valid & data.mask
        pairs = (
            data.group_ids[valid].astype(np.int64, copy=False) << 32
        ) | arg_ids[valid].astype(np.int64, copy=False)
        return np.unique(pairs)

    def apply(self, partial: Any) -> None:
        if not partial.size:
            return
        groups = (partial >> 32).astype(np.int64)
        value_ids = (partial & 0xFFFFFFFF).astype(np.int64)
        boundaries = np.ones(groups.size, dtype=bool)
        boundaries[1:] = groups[1:] != groups[:-1]
        starts = np.flatnonzero(boundaries)
        ends = np.append(starts[1:], groups.size)
        for start, end in zip(starts, ends):
            gid = int(groups[start])
            sketch = self._sketches.get(gid)
            if sketch is None:
                sketch = KmvSketch(self.m)
                self._sketches[gid] = sketch
            sketch.add_hash_array(self.hash_units[value_ids[start:end]])

    def results(self, present: np.ndarray) -> list[int]:
        out: list[int] = []
        for gid in np.flatnonzero(present):
            sketch = self._sketches.get(int(gid))
            out.append(sketch.estimate() if sketch is not None else 0)
        return out


def build_aggregator(
    agg: Aggregate,
    n_groups: int,
    arg_field: "FieldStore | None",
) -> ColumnarAggregator:
    """Instantiate the right aggregator for one aggregate expression."""
    if agg.name == "COUNT":
        if agg.distinct:
            if arg_field is None:
                raise ExecutionError("COUNT DISTINCT requires a field argument")
            if agg.approximate:
                return ApproxCountDistinctAggregator(
                    n_groups,
                    arg_field.hash_units(),
                    arg_field.dictionary.has_null,
                    agg.m,
                )
            return CountDistinctAggregator(
                n_groups, arg_field.dictionary, arg_field.dictionary.has_null
            )
        if isinstance(agg.arg, Star):
            return PresenceAggregator(n_groups)
        return CountValueAggregator(n_groups, arg_field.dictionary.has_null)
    if agg.name == "SUM":
        return SumAggregator(
            n_groups, arg_field.numeric_values(), arg_field.dictionary.has_null
        )
    if agg.name == "AVG":
        return AvgAggregator(
            n_groups, arg_field.numeric_values(), arg_field.dictionary.has_null
        )
    if agg.name == "MIN":
        return MinAggregator(
            n_groups, arg_field.dictionary, arg_field.dictionary.has_null
        )
    if agg.name == "MAX":
        return MaxAggregator(
            n_groups, arg_field.dictionary, arg_field.dictionary.has_null
        )
    raise ExecutionError(f"unsupported aggregate {agg.name!r}")

# -- mergeable state export (for the Section 4 computation tree) ------------
#
# Each aggregator can convert its per-group accumulators into the
# row-level AggStates of repro.core.aggregation. States are mergeable
# across shards (whose dictionaries differ), so the distributed
# execution tree aggregates on every level — and exact COUNT DISTINCT /
# KMV sketches travel as sets/sketches, the paper's Section 5 answer to
# "we cannot support count distinct by [associative rewrites]".


def _presence_states(aggregator: PresenceAggregator, present: np.ndarray):
    from repro.core.aggregation import CountStarState

    out = []
    for count in aggregator.counts[present]:
        state = CountStarState()
        state.count = int(count)
        out.append(state)
    return out


def _count_value_states(aggregator: CountValueAggregator, present: np.ndarray):
    from repro.core.aggregation import CountValueState

    out = []
    for count in aggregator.counts[present]:
        state = CountValueState()
        state.count = int(count)
        out.append(state)
    return out


def _sum_states(aggregator: SumAggregator, present: np.ndarray):
    from repro.core.aggregation import AvgState, SumState

    out = []
    is_avg = isinstance(aggregator, AvgAggregator)
    for total, count in zip(
        aggregator.totals[present], aggregator.counts[present]
    ):
        if is_avg:
            state = AvgState()
            state.total = float(total)
            state.count = int(count)
        else:
            state = SumState()
            state.total = float(total)
            state.seen = bool(count)
        out.append(state)
    return out


def _extreme_states(aggregator: _ExtremeAggregator, present: np.ndarray):
    from repro.core.aggregation import MaxState, MinState

    sentinel = np.iinfo(np.int64).max if aggregator._is_min else -1
    out = []
    for best in aggregator.best[present]:
        state = MinState() if aggregator._is_min else MaxState()
        if best != sentinel:
            state.best = aggregator.dictionary.value(int(best))
        out.append(state)
    return out


def _count_distinct_states(
    aggregator: CountDistinctAggregator, present: np.ndarray
):
    from repro.core.aggregation import CountDistinctState

    per_group: dict[int, set] = {}
    if aggregator._pair_chunks:
        pairs = np.unique(np.concatenate(aggregator._pair_chunks))
        groups = (pairs >> 32).astype(np.int64)
        value_ids = (pairs & 0xFFFFFFFF).astype(np.int64)
        dictionary = aggregator.dictionary
        for group, value_id in zip(groups, value_ids):
            per_group.setdefault(int(group), set()).add(
                dictionary.value(int(value_id))
            )
    out = []
    for gid in np.flatnonzero(present):
        state = CountDistinctState()
        state.values = per_group.get(int(gid), set())
        out.append(state)
    return out


def _approx_states(
    aggregator: ApproxCountDistinctAggregator, present: np.ndarray
):
    from repro.core.aggregation import ApproxCountDistinctState

    out = []
    for gid in np.flatnonzero(present):
        state = ApproxCountDistinctState(aggregator.m)
        sketch = aggregator._sketches.get(int(gid))
        if sketch is not None:
            state.sketch.merge(sketch)
        out.append(state)
    return out


def aggregator_states(
    aggregator: ColumnarAggregator, present: np.ndarray
) -> list[Any]:
    """Per-present-group mergeable AggStates for any aggregator."""
    if isinstance(aggregator, CountValueAggregator):
        return _count_value_states(aggregator, present)
    if isinstance(aggregator, PresenceAggregator):
        return _presence_states(aggregator, present)
    if isinstance(aggregator, SumAggregator):  # covers AvgAggregator
        return _sum_states(aggregator, present)
    if isinstance(aggregator, _ExtremeAggregator):
        return _extreme_states(aggregator, present)
    if isinstance(aggregator, CountDistinctAggregator):
        return _count_distinct_states(aggregator, present)
    if isinstance(aggregator, ApproxCountDistinctAggregator):
        return _approx_states(aggregator, present)
    raise ExecutionError(f"no state export for {type(aggregator).__name__}")
