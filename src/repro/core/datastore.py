"""The PowerDrill datastore: import, virtual fields, query execution.

This is the paper's central artifact. A :class:`DataStore` is built
from a :class:`~repro.core.table.Table` in an import phase that

1. optionally *reorders* rows lexicographically by the partition fields
   (Section 3 "Reordering Rows"),
2. *partitions* them with composite range partitioning (Section 2.2),
3. encodes every column with the *double dictionary* layout of
   Section 2.3: one global dictionary per column, and per chunk a
   chunk-dictionary plus an elements array, with the Section 3
   optimized encodings when enabled.

Queries execute per Section 2.4: restriction analysis decides which
chunks are active (skipped / fully active / partially active), fully
active chunks can be served from the chunk-result cache (Section 6),
and scanned chunks run the vectorized ``counts[elements[row]]++``
group-by loop of :mod:`repro.core.engine`.

Expressions are never evaluated per-row at query time: any non-field
scalar expression is *materialized once* as a virtual field stored in
the same format as original columns (Section 5 "Complex Expressions"),
after which restrictions on it can skip chunks like any other field.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Iterable

import numpy as np

from repro.compress.advisor import (
    AdvisorConfig,
    choose_codec,
    profile_values,
    sample_window,
)
from repro.compress.registry import get_codec
from repro.core.engine import (
    ChunkData,
    PresenceAggregator,
    build_aggregator,
)
from repro.core.executor import (
    ExecutionStrategy,
    SupervisionConfig,
    make_executor,
    supervision_knob_problem,
)
from repro.core.expr_eval import evaluate
from repro.core.plan import is_aggregation_query, plan_group_query, resolve_group_aliases
from repro.core.restriction import ChunkStatus, compile_restriction
from repro.core.result import QueryResult, ScanStats, finalize
from repro.core.table import Table
from repro.errors import (
    BindError,
    ChunkUnavailableError,
    ExecutionError,
    PartitionError,
    UnsupportedQueryError,
)
from repro.partition.codes import factorize, factorize_list
from repro.partition.composite import PartitionSpec, partition_table
from repro.partition.reorder import order_from_codes, reorder_table
from repro.sketches.hashing import hash_to_unit
from repro.sql.ast_nodes import (
    Aggregate,
    BinaryOp,
    Expr,
    FieldRef,
    FuncCall,
    InList,
    Literal,
    Query,
    Star,
    UnaryOp,
    referenced_fields,
    walk,
)
from repro.monitoring import counters
from repro.sql.parser import parse_query
from repro.storage.cache import Cache, CacheStats, make_cache
from repro.storage.chunk import ColumnChunk
from repro.storage.dictionary import (
    Dictionary,
    NumericDictionary,
    SortedStringDictionary,
    SortedTupleDictionary,
)
from repro.storage.trie import TrieDictionary


@dataclass(frozen=True)
class DataStoreOptions:
    """Import/runtime knobs, mirroring the paper's optimization steps.

    The ablation benches toggle these to reproduce the Section 3
    tables: ``Basic`` = no partitioning, no optimized encodings;
    ``Chunks`` adds partitioning; ``OptCols`` adds element encodings;
    ``OptDicts`` adds trie/packed dictionaries; ``Reorder`` adds the
    lexicographic row reorder.
    """

    table_name: str = "data"
    partition_fields: tuple[str, ...] | None = None
    max_chunk_rows: int = 50_000
    reorder_rows: bool = False
    optimized_columns: bool = True
    optimized_dicts: bool = True
    cache_chunk_results: bool = True
    # Runtime knobs (not part of the on-disk encoding): how the chunk
    # loop fans out and how the per-chunk result cache is bounded.
    executor: str = "serial"
    workers: int | None = None
    # Cap on the auto-detected worker count (None = use every core).
    max_workers: int | None = None
    cache_policy: str = "lru"
    cache_capacity_bytes: float = 64 * 1024 * 1024
    # Process-supervision knobs (see core.executor.SupervisionConfig):
    # per-task deadline, retry budget, real backoff schedule, and the
    # cooperative-wait granularity for the process strategy.
    task_deadline_seconds: float = 30.0
    task_max_retries: int = 2
    task_backoff_base_seconds: float = 0.05
    task_backoff_multiplier: float = 2.0
    watchdog_interval_seconds: float = 0.1
    # Graceful degradation (the paper's partial-result contract): when
    # True, chunks lost to worker death after the retry budget shrink
    # row_coverage instead of failing the query; strict mode raises
    # ChunkUnavailableError.
    degrade: bool = True
    # Encoding-advisor knobs (see repro.compress.advisor). codec=None
    # keeps the legacy PDS2 field sections byte-identical to older
    # stores; "auto" lets the advisor pick per field; any registered
    # codec name forces that codec for every field.
    codec: str | None = None
    advisor_sample_rows: int = 4096
    advisor_seed: int = 2012
    advisor_size_weight: float = 1.0
    advisor_speed_weight: float = 0.15
    advisor_mode: str = "stats"

    def __post_init__(self) -> None:
        problem = supervision_knob_problem(
            self.task_deadline_seconds,
            self.task_max_retries,
            self.task_backoff_base_seconds,
            self.task_backoff_multiplier,
            self.watchdog_interval_seconds,
        )
        if problem is not None:
            raise ExecutionError(problem)
        if self.codec is not None and self.codec != "auto":
            get_codec(self.codec)  # unknown names raise CompressionError
        # Build the advisor view eagerly so bad advisor knobs fail at
        # option construction, like the supervision knobs above.
        self.advisor_config()

    def advisor_config(self) -> AdvisorConfig:
        """The advisor-facing view of the encoding knobs."""
        return AdvisorConfig(
            sample_rows=self.advisor_sample_rows,
            seed=self.advisor_seed,
            size_weight=self.advisor_size_weight,
            speed_weight=self.advisor_speed_weight,
            mode=self.advisor_mode,
        )

    def supervision(self) -> SupervisionConfig:
        """The executor-facing view of the supervision knobs."""
        return SupervisionConfig(
            task_deadline_seconds=self.task_deadline_seconds,
            max_retries=self.task_max_retries,
            backoff_base_seconds=self.task_backoff_base_seconds,
            backoff_multiplier=self.task_backoff_multiplier,
            watchdog_interval_seconds=self.watchdog_interval_seconds,
        )


class FieldStore:
    """One column's storage: global dictionary + per-chunk data."""

    def __init__(
        self,
        name: str,
        dictionary: Dictionary,
        chunks: list[ColumnChunk],
        virtual: bool = False,
    ) -> None:
        self.name = name
        self.dictionary = dictionary
        self.chunks = chunks
        self.virtual = virtual
        # Advisor verdict for this field's serialized section (None
        # means the legacy uncompressed framing). codec_choice keeps
        # the full CodecChoice record for describe/fsck surfacing.
        self.codec: str | None = None
        self.codec_choice: dict[str, Any] | None = None
        self._row_gids: list[np.ndarray | None] = [None] * len(chunks)
        self._value_array: np.ndarray | None = None
        self._numeric_values: np.ndarray | None = None
        self._hash_units: np.ndarray | None = None

    # -- per-chunk row data -------------------------------------------------
    def row_global_ids(self, chunk_index: int) -> np.ndarray:
        """Per-row global-ids of one chunk, as int64 (cached).

        int64 is the dtype every aggregation kernel indexes with, so
        the widening happens once here instead of once per aggregator
        per scanned chunk. Chunk scans never share a chunk index across
        executor workers, so the per-slot lazy fill needs no lock.
        """
        cached = self._row_gids[chunk_index]
        if cached is None:
            cached = self.chunks[chunk_index].row_global_ids().astype(
                np.int64, copy=False
            )
            self._row_gids[chunk_index] = cached
        return cached

    def element_array(self, chunk_index: int) -> np.ndarray:
        """Per-row chunk-ids of one chunk (the raw elements)."""
        return self.chunks[chunk_index].elements.as_array()

    # -- dictionary-derived caches -------------------------------------------
    def value_array(self) -> np.ndarray:
        """All dictionary values as an object array indexed by gid."""
        if self._value_array is None:
            values = self.dictionary.values()
            array = np.empty(len(values), dtype=object)
            for index, value in enumerate(values):
                array[index] = value
            self._value_array = array
        return self._value_array

    def numeric_values(self) -> np.ndarray:
        """Dictionary values as float64 (NaN for NULL), for SUM/AVG."""
        if self._numeric_values is None:
            values = self.dictionary.values()
            out = np.empty(len(values), dtype=np.float64)
            for index, value in enumerate(values):
                if value is None:
                    out[index] = np.nan
                elif isinstance(value, (int, float)):
                    out[index] = float(value)
                else:
                    raise ExecutionError(
                        f"field {self.name!r} is not numeric "
                        f"(found {type(value).__name__})"
                    )
            self._numeric_values = out
        return self._numeric_values

    def hash_units(self) -> np.ndarray:
        """Per-gid value hashes in [0, 1), for KMV sketches."""
        if self._hash_units is None:
            self._hash_units = np.array(
                [hash_to_unit(v) for v in self.dictionary.values()],
                dtype=np.float64,
            )
        return self._hash_units

    # -- size accounting --------------------------------------------------------
    def dictionary_size_bytes(self) -> int:
        return self.dictionary.size_bytes()

    def chunk_dicts_size_bytes(self) -> int:
        return sum(chunk.dict_size_bytes() for chunk in self.chunks)

    def elements_size_bytes(self) -> int:
        return sum(chunk.elements_size_bytes() for chunk in self.chunks)

    def size_bytes(self) -> int:
        """Total encoded footprint of this field."""
        return (
            self.dictionary_size_bytes()
            + self.chunk_dicts_size_bytes()
            + self.elements_size_bytes()
        )


def _coerce(value: Any) -> Any:
    """Normalize evaluator outputs into storable dictionary values."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _dictionary_from_ordered(
    ordered: list[Any], optimized: bool
) -> Dictionary:
    """Build a dictionary from sorted-distinct values (None first)."""
    has_null = bool(ordered) and ordered[0] is None
    non_null = ordered[1:] if has_null else list(ordered)
    if non_null and isinstance(non_null[0], str):
        if optimized:
            return TrieDictionary.from_sorted(non_null, has_null=has_null)
        return SortedStringDictionary(non_null, has_null=has_null)
    if non_null and isinstance(non_null[0], tuple):
        return SortedTupleDictionary(non_null, has_null=has_null)
    # Let numpy's single C pass infer int64 (all ints) vs float64 (any
    # float) instead of scanning isinstance per value; ints beyond
    # int64 come back as an object array and take the explicit-dtype
    # path, which raises OverflowError exactly as before.
    array = np.asarray(non_null) if non_null else np.empty(0, dtype=np.int64)
    if array.dtype not in (np.dtype(np.int64), np.dtype(np.float64)):
        if non_null and any(isinstance(v, float) for v in non_null):
            array = np.asarray(non_null, dtype=np.float64)
        else:
            array = np.asarray(non_null, dtype=np.int64)
    return NumericDictionary(array, has_null=has_null, optimized=optimized)


@dataclass
class ImportStats:
    """Per-phase measurements of one ``DataStore.from_table`` import.

    Timings are wall-clock seconds and exist for observability only —
    they never influence what gets built (measurement, not semantics).
    Sizes are the analytic encoded sizes the store reports elsewhere.
    The phases mirror the import pipeline: factorize (raw values ->
    codes + sorted distinct values), reorder (lexicographic row
    permutation), partition (composite range split), dictionary-build,
    and chunk-encode (chunk dicts + element arrays).
    """

    rows: int = 0
    columns: int = 0
    chunks: int = 0
    factorize_seconds: float = 0.0
    reorder_seconds: float = 0.0
    partition_seconds: float = 0.0
    dictionary_seconds: float = 0.0
    encode_seconds: float = 0.0
    advisor_seconds: float = 0.0
    total_seconds: float = 0.0
    dictionary_bytes: int = 0
    chunk_bytes: int = 0
    # Field name -> the advisor's CodecChoice record (plus the column
    # profile when the advisor ran in "auto" mode). Empty when the
    # import used the legacy codec-less framing.
    field_codecs: dict[str, Any] = field(default_factory=dict)

    def phase_seconds(self) -> dict[str, float]:
        """Phase name -> wall-clock seconds, in pipeline order."""
        return {
            "factorize": self.factorize_seconds,
            "reorder": self.reorder_seconds,
            "partition": self.partition_seconds,
            "dictionary": self.dictionary_seconds,
            "encode": self.encode_seconds,
            "advisor": self.advisor_seconds,
        }

    def rows_per_second(self) -> dict[str, float]:
        """Phase name -> rows/sec throughput (0.0 for unmeasured phases)."""
        out: dict[str, float] = {}
        for name, seconds in self.phase_seconds().items():
            out[name] = self.rows / seconds if seconds > 0 else 0.0
        out["total"] = self.rows / self.total_seconds if self.total_seconds > 0 else 0.0
        return out

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly view (CLI ``--output`` and the import bench)."""
        return {
            "rows": self.rows,
            "columns": self.columns,
            "chunks": self.chunks,
            "phase_seconds": self.phase_seconds(),
            "total_seconds": self.total_seconds,
            "dictionary_bytes": self.dictionary_bytes,
            "chunk_bytes": self.chunk_bytes,
            "rows_per_second": self.rows_per_second(),
            "field_codecs": dict(self.field_codecs),
        }

    def publish(self) -> None:
        """Publish this import's measurements as monitoring counters."""
        counters.increment("datastore.import.runs")
        counters.increment("datastore.import.rows", self.rows)
        counters.increment("datastore.import.chunks", self.chunks)
        for name, seconds in self.phase_seconds().items():
            counters.increment(
                f"datastore.import.{name}_micros", int(seconds * 1e6)
            )
        counters.increment(
            "datastore.import.total_micros", int(self.total_seconds * 1e6)
        )


class DataStore:
    """The column-store: holds encoded fields, answers SQL queries."""

    def __init__(
        self,
        options: DataStoreOptions,
        n_rows: int,
        chunk_row_counts: list[int],
        fields: dict[str, FieldStore],
        import_stats: ImportStats | None = None,
    ) -> None:
        self.options = options
        self.n_rows = n_rows
        self.chunk_row_counts = chunk_row_counts
        self.fields = fields
        self.import_stats = import_stats
        self._virtual_by_sql: dict[str, str] = {}
        # Name-independent recipes for re-deriving each virtual field
        # (virtual names like __v0 depend on materialization order, so
        # cross-process tasks ship these specs, never the names).
        self._virtual_specs: dict[str, tuple] = {}
        # Shared-memory/mmap arena backing (see repro.storage.arena):
        # set lazily when a process strategy needs picklable tasks, or
        # by an arena attach. The handle is what pickles.
        self._arena: Any = None
        self._arena_handle: Any = None
        self.executor: ExecutionStrategy = make_executor(
            options.executor,
            options.workers,
            options.max_workers,
            options.supervision(),
        )
        # Bounded, byte-weighted per-chunk result cache (Section 6).
        # get/put happen only on the merge thread (or under the lock
        # when callers run concurrent queries); executor workers never
        # touch it.
        self._chunk_cache: Cache = make_cache(
            options.cache_policy, options.cache_capacity_bytes
        )
        self._cache_lock = threading.Lock()
        # Serializes field materialization (ensure_field /
        # ensure_composite_field mutate the field namespace). Reentrant
        # because composite materialization resolves member specs while
        # holding it. Concurrent queries from the serving layer hit
        # this on their ensure() path; steady-state lookups only touch
        # already-materialized names, so contention is first-query-only.
        self._field_lock = threading.RLock()
        self._original_fields = [
            name for name, store in fields.items() if not store.virtual
        ]

    # -- construction ------------------------------------------------------------
    @classmethod
    def from_table(
        cls, table: Table, options: DataStoreOptions | None = None
    ) -> "DataStore":
        """Run the import phase over ``table``.

        Partition fields are factorized exactly once: their codes drive
        the lexicographic reorder (codes are permutation-invariant
        ranks, so permuting them by the sort order matches refactorizing
        the reordered table), then the composite partitioner, then the
        per-chunk encode. Per-phase wall-clock lands in the attached
        :class:`ImportStats`.
        """
        options = options or DataStoreOptions()
        stats = ImportStats(rows=table.n_rows, columns=len(table.field_names))
        total_started = time.perf_counter()
        partition_fields = (
            list(options.partition_fields) if options.partition_fields else []
        )
        label = "reorder" if options.reorder_rows else "partition"
        for name in partition_fields:
            if name not in table:
                raise PartitionError(f"{label} field {name!r} not in table")

        phase_started = time.perf_counter()
        codes_by_field: dict[str, tuple[np.ndarray, list[Any]]] = {}
        for name in partition_fields:
            if name not in codes_by_field:
                codes_by_field[name] = factorize(table.column(name))
        stats.factorize_seconds += time.perf_counter() - phase_started

        phase_started = time.perf_counter()
        if partition_fields and options.reorder_rows:
            order = order_from_codes(
                [codes_by_field[name][0] for name in partition_fields]
            )
            table = reorder_table(table, order)
            for name, (codes, ordered) in codes_by_field.items():
                codes_by_field[name] = (codes[order], ordered)
        stats.reorder_seconds += time.perf_counter() - phase_started

        phase_started = time.perf_counter()
        if partition_fields:
            spec = PartitionSpec(
                tuple(options.partition_fields), options.max_chunk_rows
            )
            chunk_rows = partition_table(
                table,
                spec,
                field_codes=[codes_by_field[name][0] for name in spec.fields],
            )
        else:
            chunk_rows = [np.arange(table.n_rows, dtype=np.int64)]
        stats.partition_seconds += time.perf_counter() - phase_started

        fields: dict[str, FieldStore] = {}
        for name in table.field_names:
            cached = codes_by_field.get(name)
            if cached is not None:
                codes, ordered = cached
            else:
                phase_started = time.perf_counter()
                codes, ordered = factorize(table.column(name))
                stats.factorize_seconds += time.perf_counter() - phase_started
            phase_started = time.perf_counter()
            dictionary = _dictionary_from_ordered(
                ordered, options.optimized_dicts
            )
            stats.dictionary_seconds += time.perf_counter() - phase_started
            phase_started = time.perf_counter()
            chunks = [
                ColumnChunk.from_global_ids(
                    codes[rows], optimized=options.optimized_columns
                )
                for rows in chunk_rows
            ]
            stats.encode_seconds += time.perf_counter() - phase_started
            stats.dictionary_bytes += dictionary.size_bytes()
            stats.chunk_bytes += sum(chunk.size_bytes() for chunk in chunks)
            fields[name] = FieldStore(name, dictionary, chunks)

        if options.codec is not None:
            phase_started = time.perf_counter()
            # Lazy import: serde imports this module to rebuild stores.
            from repro.storage.serde import encode_field_section

            advisor_cfg = options.advisor_config()
            for name, field_store in fields.items():
                section = encode_field_section(field_store)
                sample = sample_window(section, advisor_cfg)
                if options.codec == "auto":
                    profile = profile_values(table.column(name), advisor_cfg)
                    choice = choose_codec(sample, advisor_cfg, profile=profile)
                else:
                    profile = None
                    choice = choose_codec(
                        sample, advisor_cfg, candidates=(options.codec,)
                    )
                field_store.codec = choice.codec
                field_store.codec_choice = choice.as_dict()
                record = choice.as_dict()
                if profile is not None:
                    record["profile"] = profile.as_dict()
                stats.field_codecs[name] = record
            stats.advisor_seconds += time.perf_counter() - phase_started

        stats.chunks = len(chunk_rows)
        stats.total_seconds = time.perf_counter() - total_started
        stats.publish()
        return cls(
            options,
            table.n_rows,
            [int(rows.size) for rows in chunk_rows],
            fields,
            import_stats=stats,
        )

    @property
    def n_chunks(self) -> int:
        return len(self.chunk_row_counts)

    # -- runtime knobs -----------------------------------------------------------
    def configure_runtime(
        self,
        executor: str | None = None,
        workers: int | None = None,
        max_workers: int | None = None,
        cache_policy: str | None = None,
        cache_capacity_bytes: float | None = None,
    ) -> None:
        """Swap execution strategy / cache sizing on a live store.

        The encoding options are baked in at import time, but how the
        chunk loop fans out and how big the result cache may grow are
        per-process choices — the CLI applies its ``--workers`` /
        ``--cache-policy`` flags here after :func:`load_store`.
        Replacing the cache drops all resident entries; changing only
        the executor keeps them (the cache key does not depend on how
        partials are computed).
        """
        executor_updates: dict[str, Any] = {}
        if executor is not None:
            executor_updates["executor"] = executor
        if workers is not None:
            executor_updates["workers"] = workers
        if max_workers is not None:
            executor_updates["max_workers"] = max_workers
        cache_updates: dict[str, Any] = {}
        if cache_policy is not None:
            cache_updates["cache_policy"] = cache_policy
        if cache_capacity_bytes is not None:
            cache_updates["cache_capacity_bytes"] = cache_capacity_bytes
        if not executor_updates and not cache_updates:
            return
        self.options = replace(
            self.options, **executor_updates, **cache_updates
        )
        if executor_updates:
            self.executor.close()
            if self._arena is not None and self._arena.is_owner:
                # close() released every arena the old executor tracked;
                # drop the dangling reference so the next process-backed
                # query builds a fresh one.
                self._arena = None
                self._arena_handle = None
            self.executor = make_executor(
                self.options.executor,
                self.options.workers,
                self.options.max_workers,
                self.options.supervision(),
            )
        if cache_updates:
            with self._cache_lock:
                self._chunk_cache = make_cache(
                    self.options.cache_policy,
                    self.options.cache_capacity_bytes,
                )

    @property
    def chunk_cache(self) -> Cache:
        """The bounded per-chunk result cache (read for stats/size)."""
        return self._chunk_cache

    def chunk_cache_stats(self) -> CacheStats:
        """Lifetime hit/miss/eviction counters of the chunk cache."""
        return self._chunk_cache.stats

    def _invalidate_chunk_cache(self) -> None:
        """Drop all cached chunk partials (store contents changed)."""
        with self._cache_lock:
            if len(self._chunk_cache):
                counters.increment("datastore.chunk_cache.invalidations")
                self._chunk_cache.clear()

    def __deepcopy__(self, memo: dict) -> "DataStore":
        """Deep-copy the encoded data; rebuild the runtime objects.

        The executor (thread pool), the cache lock and the chunk-result
        cache are per-process runtime state, not data — copying a lock
        is impossible and sharing a pool would couple the copies. The
        clone starts with a fresh, empty cache (cached partials are
        derived data and rebuild on demand).
        """
        import copy

        clone = self.__class__.__new__(self.__class__)
        memo[id(self)] = clone
        runtime = {
            "executor",
            "_cache_lock",
            "_field_lock",
            "_chunk_cache",
            "_arena",
            "_arena_handle",
        }
        for key, value in self.__dict__.items():
            if key not in runtime:
                setattr(clone, key, copy.deepcopy(value, memo))
        clone.executor = make_executor(
            clone.options.executor,
            clone.options.workers,
            clone.options.max_workers,
            clone.options.supervision(),
        )
        clone._cache_lock = threading.Lock()
        clone._field_lock = threading.RLock()
        clone._chunk_cache = make_cache(
            clone.options.cache_policy, clone.options.cache_capacity_bytes
        )
        # Arena backing stays with the original: the clone's columns
        # are fresh copies, so sharing the segment would let a clone
        # outlive-or-unlink state it does not own.
        clone._arena = None
        clone._arena_handle = None
        return clone

    def __getstate__(self) -> dict:
        """Pickle the encoded data, not the per-process runtime.

        The executor (thread pool), the cache lock and the chunk-result
        cache cannot cross a process boundary — exactly the state
        ``__deepcopy__`` rebuilds. Dropping them here is what makes a
        store (and closures over ``self``, reprolint REP015) safe to
        ship to a ProcessPool worker; ``__setstate__`` rebuilds fresh
        runtime objects on the other side.
        """
        state = dict(self.__dict__)
        for key in (
            "executor",
            "_cache_lock",
            "_field_lock",
            "_chunk_cache",
            "_arena",
            "_arena_handle",
        ):
            state.pop(key, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.executor = make_executor(
            self.options.executor,
            self.options.workers,
            self.options.max_workers,
            self.options.supervision(),
        )
        self._cache_lock = threading.Lock()
        self._field_lock = threading.RLock()
        self._chunk_cache = make_cache(
            self.options.cache_policy, self.options.cache_capacity_bytes
        )
        self._arena = None
        self._arena_handle = None

    def __reduce_ex__(self, protocol: int) -> Any:
        """Arena-backed stores pickle as an attach, not as data.

        When a shareable arena backs this store, the pickle is just
        ``attach_store(handle)`` — kilobytes instead of the column
        payload, and every task a worker unpickles resolves to that
        worker's one cached attached store. Stores without an arena
        fall back to the regular (full-value) protocol.
        """
        if self._arena_handle is not None and self._arena_handle.shareable:
            from repro.storage.arena import attach_store

            return (attach_store, (self._arena_handle,))
        return super().__reduce_ex__(protocol)

    # -- arena backing (see repro.storage.arena) ---------------------------------
    def adopt_arena(self, arena: Any, handle: Any) -> None:
        """Bind a built or attached chunk arena to this store.

        Called by :mod:`repro.storage.arena` after an attach (the store
        keeps the mapping alive and re-pickles by handle) and by
        :meth:`ensure_arena` after a build.
        """
        self._arena = arena
        self._arena_handle = handle

    @property
    def arena(self) -> Any:
        """The backing chunk arena, or None (read-only observability)."""
        return self._arena

    def ensure_arena(self, tracker: ExecutionStrategy | None = None) -> None:
        """Materialize this store into a shared-memory arena (idempotent).

        ``tracker`` is the execution strategy whose :meth:`close` should
        unlink the segment — by default this store's own executor. The
        engine calls this before fanning tasks out to a strategy that
        ``wants_picklable_tasks``; the distributed layer calls it per
        shard store, tracking on the cluster's executor instead.
        """
        owner = tracker if tracker is not None else self.executor
        if self._arena is None or self._arena_handle is None:
            from repro.storage.arena import ChunkArena

            arena = ChunkArena.build(self)
            self.adopt_arena(arena, arena.handle())
        if self._arena.is_owner:
            owner.track_arena(self._arena)

    def field(self, name: str) -> FieldStore:
        try:
            return self.fields[name]
        except KeyError:
            raise BindError(
                f"unknown field {name!r}; store has "
                f"{sorted(self._original_fields)}"
            ) from None

    # -- virtual fields (Section 5 "Complex Expressions") -------------------------
    def ensure_field(self, expr: Expr) -> str:
        """Return a field name computing ``expr``, materializing if new.

        Thread-safe: materialization mutates the field namespace, so
        the whole check-then-materialize sequence runs under
        ``_field_lock`` — concurrent queries for the same new virtual
        field materialize it exactly once.
        """
        if isinstance(expr, FieldRef):
            self.field(expr.name)
            return expr.name
        with self._field_lock:
            if isinstance(expr, Literal):
                return self._materialize_constant(expr)
            key = expr.sql()
            existing = self._virtual_by_sql.get(key)
            if existing is not None:
                return existing
            for node in walk(expr):
                if isinstance(node, (Aggregate, Star)):
                    raise UnsupportedQueryError(
                        f"cannot materialize aggregate expression {key}"
                    )
            refs = sorted(referenced_fields(expr))
            for ref in refs:
                self.field(ref)
            if not refs:
                return self._materialize_constant(expr)
            if len(refs) == 1:
                name = self._materialize_single(expr, refs[0])
            else:
                name = self._materialize_multi(expr, refs)
            self._virtual_by_sql[key] = name
            self._virtual_specs[name] = ("expr", expr)
            return name

    def field_spec(self, name: str) -> tuple:
        """A name-independent recipe for re-deriving field ``name``.

        Virtual names (``__v0``, ...) depend on materialization order,
        so they cannot cross a process boundary; specs can — original
        fields travel by name, virtuals by their defining expression
        (or composite member recipes). Materialization is deterministic
        (``factorize`` and ``np.unique`` sort), so replaying a spec in
        a worker yields a bit-identical field and global-id space.
        """
        field = self.field(name)
        if not field.virtual:
            return ("field", name)
        try:
            return self._virtual_specs[name]
        except KeyError:
            raise ExecutionError(
                f"virtual field {name!r} has no recorded spec"
            ) from None

    def _register_virtual(
        self, dictionary: Dictionary, chunks: list[ColumnChunk]
    ) -> str:
        name = f"__v{sum(1 for f in self.fields.values() if f.virtual)}"
        self.fields[name] = FieldStore(name, dictionary, chunks, virtual=True)
        # Materializing a field mutates the store's field namespace;
        # cached partials are keyed on field names, so drop them rather
        # than trust name-uniqueness forever (cheap: first query of a
        # new shape only).
        self._invalidate_chunk_cache()
        return name

    def _materialize_constant(self, expr: Expr) -> str:
        key = expr.sql()
        existing = self._virtual_by_sql.get(key)
        if existing is not None:
            return existing
        value = _coerce(evaluate(expr, lambda n: None))
        ordered = [value]
        dictionary = _dictionary_from_ordered(
            ordered, self.options.optimized_dicts
        )
        chunks = [
            ColumnChunk.from_global_ids(
                np.zeros(count, dtype=np.uint32),
                optimized=self.options.optimized_columns,
            )
            for count in self.chunk_row_counts
        ]
        name = self._register_virtual(dictionary, chunks)
        self._virtual_by_sql[key] = name
        self._virtual_specs[name] = ("expr", expr)
        return name

    def _materialize_single(self, expr: Expr, ref: str) -> str:
        """Materialize an expression over one field.

        Computed once per *distinct value* of the input field — the
        reason Query 2's ``date(timestamp)`` is nearly free here.
        """
        source = self.field(ref)
        results = [
            _coerce(evaluate(expr, lambda __, v=value: v))
            for value in source.dictionary.values()
        ]
        codes, ordered = factorize_values(results)
        dictionary = _dictionary_from_ordered(ordered, self.options.optimized_dicts)
        chunks = [
            ColumnChunk.from_global_ids(
                codes[source.row_global_ids(i)].astype(np.uint32),
                optimized=self.options.optimized_columns,
            )
            for i in range(self.n_chunks)
        ]
        return self._register_virtual(dictionary, chunks)

    def _materialize_multi(self, expr: Expr, refs: list[str]) -> str:
        """Materialize a multi-field expression (cached per gid tuple)."""
        sources = [self.field(ref) for ref in refs]
        value_arrays = [source.value_array() for source in sources]
        cache: dict[tuple[int, ...], Any] = {}
        per_chunk_results: list[list[Any]] = []
        for chunk_index in range(self.n_chunks):
            gid_arrays = [
                source.row_global_ids(chunk_index) for source in sources
            ]
            n = self.chunk_row_counts[chunk_index]
            out: list[Any] = [None] * n
            for row in range(n):
                key = tuple(int(g[row]) for g in gid_arrays)
                if key in cache:
                    out[row] = cache[key]
                else:
                    env = {
                        ref: value_arrays[j][key[j]]
                        for j, ref in enumerate(refs)
                    }
                    result = _coerce(evaluate(expr, env.__getitem__))
                    cache[key] = result
                    out[row] = result
            per_chunk_results.append(out)
        flat: list[Any] = [r for chunk in per_chunk_results for r in chunk]
        codes, ordered = factorize_values(flat)
        dictionary = _dictionary_from_ordered(ordered, self.options.optimized_dicts)
        chunks = []
        offset = 0
        for count in self.chunk_row_counts:
            chunk_codes = codes[offset : offset + count].astype(np.uint32)
            offset += count
            chunks.append(
                ColumnChunk.from_global_ids(
                    chunk_codes, optimized=self.options.optimized_columns
                )
            )
        return self._register_virtual(dictionary, chunks)

    def ensure_composite_field(self, member_names: list[str]) -> str:
        """Combine several fields into one tuple-valued virtual field.

        Footnote 5: "multiple group-by fields are combined into one
        expression which is materialized in the datastore as an
        additional 'virtual' column."
        """
        key = "__tuple(" + ", ".join(member_names) + ")"
        with self._field_lock:
            return self._ensure_composite_locked(key, member_names)

    def _ensure_composite_locked(
        self, key: str, member_names: list[str]
    ) -> str:
        existing = self._virtual_by_sql.get(key)
        if existing is not None:
            return existing
        members = [self.field(name) for name in member_names]
        stacked = np.concatenate(
            [
                np.stack(
                    [m.row_global_ids(i) for m in members],
                    axis=1,
                )
                for i in range(self.n_chunks)
            ]
        )
        unique_rows, inverse = np.unique(stacked, axis=0, return_inverse=True)
        values = [
            tuple(
                member.dictionary.value(int(gid))
                for member, gid in zip(members, row)
            )
            for row in unique_rows
        ]
        dictionary = SortedTupleDictionary(values, has_null=False)
        chunks = []
        offset = 0
        for count in self.chunk_row_counts:
            chunk_codes = inverse[offset : offset + count].astype(np.uint32)
            offset += count
            chunks.append(
                ColumnChunk.from_global_ids(
                    chunk_codes, optimized=self.options.optimized_columns
                )
            )
        name = self._register_virtual(dictionary, chunks)
        self._virtual_by_sql[key] = name
        self._virtual_specs[name] = (
            "composite",
            tuple(self.field_spec(member) for member in member_names),
        )
        return name

    # -- size accounting -----------------------------------------------------------
    def memory_usage(self, field_names: list[str]) -> dict[str, int]:
        """Encoded-bytes breakdown over ``field_names`` (the paper's MB)."""
        dictionaries = 0
        chunk_dicts = 0
        elements = 0
        for name in field_names:
            store = self.field(name)
            dictionaries += store.dictionary_size_bytes()
            chunk_dicts += store.chunk_dicts_size_bytes()
            elements += store.elements_size_bytes()
        return {
            "dictionaries": dictionaries,
            "chunk_dicts": chunk_dicts,
            "elements": elements,
            "elements_and_chunk_dicts": chunk_dicts + elements,
            "total": dictionaries + chunk_dicts + elements,
        }

    def total_size_bytes(self) -> int:
        """Encoded footprint of all original (non-virtual) fields."""
        return sum(
            self.fields[name].size_bytes() for name in self._original_fields
        )

    # -- query execution -------------------------------------------------------------
    def execute(
        self,
        query: Query | str,
        *,
        candidate_chunks: "Iterable[int] | None" = None,
    ) -> QueryResult:
        """Run a query, returning its result table and scan statistics.

        ``candidate_chunks`` is the serving layer's subsumption hook: a
        set of chunk indices that provably covers every chunk this
        query's restriction can touch (e.g. a cached parent query's
        ``ScanStats.active_chunks`` when this WHERE refines the
        parent's). Chunks outside the set are counted as skipped
        without even consulting the restriction — sound only when the
        caller guarantees they would have been SKIP decisions, in which
        case the result and its scan statistics are bit-identical to an
        unpruned execution.
        """
        started = time.perf_counter()
        parsed = parse_query(query) if isinstance(query, str) else query
        if parsed.table != self.options.table_name:
            raise ExecutionError(
                f"query targets table {parsed.table!r}, store holds "
                f"{self.options.table_name!r}"
            )
        parsed = resolve_group_aliases(parsed)

        accessed: set[str] = set()

        def ensure(expr: Expr) -> str:
            name = self.ensure_field(expr)
            accessed.add(name)
            return name

        stats = ScanStats(
            rows_total=self.n_rows, chunks_total=self.n_chunks
        )
        restriction = compile_restriction(
            parsed.where,
            ensure,
            lambda name: self.field(name).dictionary,
            lambda name: self.field(name).chunks,
            lambda name, index: self.field(name).element_array(index),
        )

        candidates = (
            None if candidate_chunks is None else frozenset(candidate_chunks)
        )
        if is_aggregation_query(parsed):
            rows = self._execute_grouped(
                parsed, restriction, ensure, stats, candidates
            )
        else:
            rows = self._execute_projection(
                parsed, restriction, ensure, stats, candidates
            )

        table = finalize(rows, parsed)
        stats.fields_accessed = tuple(sorted(accessed))
        stats.cells_scanned = stats.rows_scanned * max(len(accessed), 1)
        stats.memory_bytes = sum(
            self.field(name).size_bytes() for name in accessed
        )
        elapsed = time.perf_counter() - started
        # Exact coverage accounting for degraded results: every row the
        # supervisor lost is counted, nothing else is estimated.
        complete = stats.rows_unserved == 0 and stats.chunks_unserved == 0
        coverage = (
            (stats.rows_total - stats.rows_unserved) / stats.rows_total
            if stats.rows_total
            else 1.0
        )
        return QueryResult(
            table=table,
            stats=stats,
            elapsed_seconds=elapsed,
            complete=complete,
            row_coverage=coverage,
        )

    # -- grouped path ----------------------------------------------------------------
    def _aggregate_query(
        self, parsed, restriction, ensure, stats, candidates=None
    ):
        """Run the chunk loop; returns everything needed to finalize.

        Shared by local execution (:meth:`_execute_grouped`) and the
        distributed layer's partial execution
        (:meth:`execute_partials`). ``candidates`` prunes the chunk
        loop to a proven-sound footprint (see :meth:`execute`).
        """
        plan = plan_group_query(parsed)
        group_exprs = list(plan.group_exprs)
        group_names = [ensure(expr) for expr in group_exprs]
        if len(group_names) > 1:
            group_field_name = self.ensure_composite_field(group_names)
            ensure(FieldRef(group_field_name))
        elif group_names:
            group_field_name = group_names[0]
        else:
            group_field_name = None
        group_field = (
            self.field(group_field_name) if group_field_name else None
        )
        n_groups = len(group_field.dictionary) if group_field else 1

        agg_order = list(plan.aggregates)
        plan_items = list(plan.items)

        # Build aggregators; resolve argument fields.
        presence = PresenceAggregator(n_groups)
        aggregators = []
        arg_fields: list[FieldStore | None] = []
        for agg in agg_order:
            if isinstance(agg.arg, Star):
                arg_field = None
            else:
                arg_field = self.field(ensure(agg.arg))
            arg_fields.append(arg_field)
            aggregators.append(build_aggregator(agg, n_groups, arg_field))

        signature = (
            group_field_name,
            tuple(agg.sql() for agg in agg_order),
        )
        use_cache = self.options.cache_chunk_results

        # Phase 1 (merge thread): restriction decisions + cache probes.
        # Chunks split three ways: skipped, served from cache, to scan.
        phase_started = time.perf_counter()
        ready: list[tuple[int, Any]] = []  # (chunk_index, partials)
        to_scan: list[tuple[int, np.ndarray | None, bool]] = []
        active: list[int] = []
        for chunk_index in range(self.n_chunks):
            chunk_rows = self.chunk_row_counts[chunk_index]
            if candidates is not None and chunk_index not in candidates:
                stats.chunks_skipped += 1
                stats.rows_skipped += chunk_rows
                continue
            decision = restriction.decide(chunk_index)
            if decision.status is ChunkStatus.SKIP:
                stats.chunks_skipped += 1
                stats.rows_skipped += chunk_rows
                continue
            active.append(chunk_index)
            if decision.status is ChunkStatus.FULL:
                if use_cache:
                    with self._cache_lock:
                        cached = self._chunk_cache.get((signature, chunk_index))
                    if cached is not None:
                        stats.chunks_cached += 1
                        stats.rows_cached += chunk_rows
                        counters.increment("datastore.chunk_cache.hits")
                        ready.append((chunk_index, cached))
                        continue
                    counters.increment("datastore.chunk_cache.misses")
                to_scan.append((chunk_index, None, use_cache))
            else:
                # Partial chunks depend on the WHERE mask: not cacheable.
                to_scan.append((chunk_index, decision.row_mask, False))
            stats.chunks_scanned += 1
            stats.rows_scanned += chunk_rows
        stats.active_chunks = tuple(active)
        stats.restriction_seconds += time.perf_counter() - phase_started

        # Phase 2: fan the pure per-chunk partial computation out over
        # the execution strategy. Workers only read store state (see
        # the chunk_partial contract in repro.core.engine). Process
        # strategies pickle the task, so the store must be arena-backed
        # first — the pickle then carries an arena handle, not columns.
        phase_started = time.perf_counter()
        if self.executor.wants_picklable_tasks and len(to_scan) > 1:
            self.ensure_arena()
        scan_one = _ChunkScanTask(
            self, group_field, aggregators, arg_fields, presence
        )
        outcome = self.executor.map_supervised(scan_one, to_scan)
        computed = outcome.results
        stats.scan_seconds += time.perf_counter() - phase_started

        # Graceful degradation (the paper's partial-result contract,
        # applied to real worker death): chunks the supervisor could
        # not serve after its retry budget are excluded from the merge
        # and accounted exactly — or, in strict mode, fail the query.
        unserved = set(outcome.unserved)
        if unserved:
            lost_rows = sum(
                self.chunk_row_counts[to_scan[position][0]]
                for position in unserved
            )
            if not self.options.degrade:
                raise ChunkUnavailableError(
                    f"{len(unserved)} chunk task(s) unserved after "
                    f"{self.options.task_max_retries} retry wave(s); "
                    "re-run with degrade=True to accept an incomplete "
                    f"result missing {lost_rows} of {self.n_rows} rows"
                )
            stats.chunks_unserved += len(unserved)
            stats.rows_unserved += lost_rows
            stats.chunks_scanned -= len(unserved)
            stats.rows_scanned -= lost_rows
            counters.increment("datastore.scan.degraded_queries")
            counters.increment(
                "datastore.scan.chunks_unserved", len(unserved)
            )

        # Phase 3 (merge thread): admit fresh partials to the cache and
        # fold everything in ascending chunk order — the deterministic
        # merge order that makes parallel bit-identical to serial.
        phase_started = time.perf_counter()
        evictions_before = self._chunk_cache.stats.evictions
        for position, ((chunk_index, __, cacheable), partials) in enumerate(
            zip(to_scan, computed)
        ):
            if position in unserved:
                continue
            if cacheable:
                with self._cache_lock:
                    self._chunk_cache.put(
                        (signature, chunk_index),
                        partials,
                        weight=_partials_weight(partials),
                    )
            ready.append((chunk_index, partials))
        evicted = self._chunk_cache.stats.evictions - evictions_before
        if evicted:
            counters.increment("datastore.chunk_cache.evictions", evicted)
        ready.sort(key=lambda item: item[0])
        for __, partials in ready:
            presence.apply(partials[0])
            for aggregator, partial in zip(aggregators, partials[1:]):
                aggregator.apply(partial)
        stats.merge_seconds += time.perf_counter() - phase_started

        if group_field is None:
            present = np.array([True])
        else:
            present = presence.counts > 0
        return plan, group_exprs, group_field, presence, aggregators, present

    def _execute_grouped(
        self, parsed, restriction, ensure, stats, candidates=None
    ):
        plan, group_exprs, group_field, presence, aggregators, present = (
            self._aggregate_query(
                parsed, restriction, ensure, stats, candidates
            )
        )
        agg_order = list(plan.aggregates)
        plan_items = list(plan.items)
        agg_results = [agg.results(present) for agg in aggregators]
        count_results = presence.results(present)

        present_gids = np.flatnonzero(present)
        positions = _topk_positions(
            parsed, plan, present_gids, agg_results
        )
        if positions is None:
            positions = range(len(present_gids))

        rows: list[dict[str, Any]] = []
        for position in positions:
            gid = present_gids[position]
            env: dict[str, Any] = {}
            if group_field is not None:
                group_value = group_field.dictionary.value(int(gid))
                if len(group_exprs) > 1:
                    for i, member in enumerate(group_value):
                        env[f"__group_{i}"] = member
                else:
                    env["__group_0"] = group_value
            for j in range(len(agg_order)):
                env[f"__agg_{j}"] = agg_results[j][position]
            env["__count_star"] = count_results[position]
            row = {
                name: evaluate(expr, env.__getitem__)
                for name, expr in plan_items
            }
            rows.append(row)
        return rows

    def execute_partials(self, query: Query | str) -> tuple[ScanStats, Any]:
        """Execute the shard-local part of a distributed query.

        Returns ``(stats, groups)`` where ``groups`` maps a NULL-safe
        group key to ``(group_values, [AggState, ...])``. The states
        are mergeable across shards (Section 4's multi-level
        aggregation); the computation tree merges them level by level
        and the root finalizes. Plain projection queries return
        ``(stats, rows)`` with ``rows`` a list of output dicts instead.
        """
        from repro.core.engine import aggregator_states

        parsed = parse_query(query) if isinstance(query, str) else query
        if parsed.table != self.options.table_name:
            raise ExecutionError(
                f"query targets table {parsed.table!r}, store holds "
                f"{self.options.table_name!r}"
            )
        parsed = resolve_group_aliases(parsed)
        accessed: set[str] = set()

        def ensure(expr: Expr) -> str:
            name = self.ensure_field(expr)
            accessed.add(name)
            return name

        stats = ScanStats(rows_total=self.n_rows, chunks_total=self.n_chunks)
        restriction = compile_restriction(
            parsed.where,
            ensure,
            lambda name: self.field(name).dictionary,
            lambda name: self.field(name).chunks,
            lambda name, index: self.field(name).element_array(index),
        )
        if not is_aggregation_query(parsed):
            rows = self._execute_projection(parsed, restriction, ensure, stats)
            stats.fields_accessed = tuple(sorted(accessed))
            stats.cells_scanned = stats.rows_scanned * max(len(accessed), 1)
            stats.memory_bytes = sum(
                self.field(name).size_bytes() for name in accessed
            )
            return stats, rows

        plan, group_exprs, group_field, presence, aggregators, present = (
            self._aggregate_query(parsed, restriction, ensure, stats)
        )
        state_lists = [
            aggregator_states(aggregator, present) for aggregator in aggregators
        ]
        groups: dict[tuple, tuple[tuple, list]] = {}
        for position, gid in enumerate(np.flatnonzero(present)):
            if group_field is None:
                values: tuple = ()
            else:
                value = group_field.dictionary.value(int(gid))
                values = value if len(group_exprs) > 1 else (value,)
            key = tuple((v is not None, v) for v in values)
            groups[key] = (
                values,
                [states[position] for states in state_lists],
            )
        if group_field is None and not groups:
            groups[()] = ((), [])
        stats.fields_accessed = tuple(sorted(accessed))
        stats.cells_scanned = stats.rows_scanned * max(len(accessed), 1)
        stats.memory_bytes = sum(
            self.field(name).size_bytes() for name in accessed
        )
        return stats, groups

    def _compute_partials(
        self, chunk_index, group_field, aggregators, arg_fields, presence, mask
    ):
        # row_global_ids is already int64 (cached once per chunk), so no
        # per-aggregator-per-chunk astype copies happen here.
        if group_field is not None:
            group_ids = group_field.row_global_ids(chunk_index)
        else:
            group_ids = np.zeros(
                self.chunk_row_counts[chunk_index], dtype=np.int64
            )
        data = ChunkData(group_ids=group_ids, mask=mask)
        partials = [presence.chunk_partial(data, None)]
        for aggregator, arg_field in zip(aggregators, arg_fields):
            arg_ids = (
                arg_field.row_global_ids(chunk_index)
                if arg_field is not None
                else None
            )
            partials.append(aggregator.chunk_partial(data, arg_ids))
        return partials

    # -- projection path -----------------------------------------------------------
    def _execute_projection(
        self, parsed, restriction, ensure, stats, candidates=None
    ):
        phase_started = time.perf_counter()
        item_fields = [
            (item.output_name(), ensure(item.expr)) for item in parsed.select
        ]
        names = [name for name, __ in item_fields]
        rows: list[dict[str, Any]] = []
        active: list[int] = []
        for chunk_index in range(self.n_chunks):
            chunk_rows = self.chunk_row_counts[chunk_index]
            if candidates is not None and chunk_index not in candidates:
                stats.chunks_skipped += 1
                stats.rows_skipped += chunk_rows
                continue
            decision = restriction.decide(chunk_index)
            if decision.status is ChunkStatus.SKIP:
                stats.chunks_skipped += 1
                stats.rows_skipped += chunk_rows
                continue
            active.append(chunk_index)
            stats.chunks_scanned += 1
            stats.rows_scanned += chunk_rows
            # Materialize each output column once for the whole chunk
            # (vectorized gid -> value gather), then zip the columns
            # into row dicts — no per-cell array indexing.
            column_values: list[list[Any]] = []
            for __, field_name in item_fields:
                store = self.field(field_name)
                gids = store.row_global_ids(chunk_index)
                if decision.row_mask is not None:
                    gids = gids[decision.row_mask]
                column_values.append(store.value_array()[gids].tolist())
            rows.extend(
                dict(zip(names, values)) for values in zip(*column_values)
            )
        stats.active_chunks = tuple(active)
        stats.projection_seconds += time.perf_counter() - phase_started
        return rows


def _resolve_field_spec(store: DataStore, spec: tuple) -> str:
    """Resolve a :meth:`DataStore.field_spec` recipe to a field name.

    Runs inside executor workers against the arena-attached store,
    which holds only original fields: virtual specs re-materialize on
    first resolution and memo-hit afterwards (``_virtual_by_sql``), so
    one worker materializes each virtual field once, not once per task.
    """
    kind = spec[0]
    if kind == "field":
        return spec[1]
    if kind == "expr":
        return store.ensure_field(spec[1])
    if kind == "composite":
        members = [_resolve_field_spec(store, member) for member in spec[1]]
        return store.ensure_composite_field(members)
    raise ExecutionError(f"unknown field spec kind {kind!r}")


class _ChunkScanTask:
    """The per-chunk scan callable the execution strategies fan out.

    A picklable replacement for the old ``scan_one`` closure (nested
    functions cannot cross a process boundary). Thread/serial
    strategies just call it; process strategies pickle it, and the
    pickle swaps live :class:`FieldStore` references for
    name-independent field *specs* while the store itself reduces to
    its arena handle. On unpickle — inside a worker — the specs
    re-resolve against that worker's attached store. Aggregators and
    the presence tracker travel by value: they are sized by the
    caller's group count, and deterministic virtual-field
    materialization guarantees the worker's global-id space matches.

    ``__call__`` only reads store state (the ``chunk_partial``
    contract, reprolint REP011/REP012); all mutation happens at
    unpickle time, before any chunk is scanned.
    """

    def __init__(self, store, group_field, aggregators, arg_fields, presence):
        self.store = store
        self.group_field = group_field
        self.aggregators = aggregators
        self.arg_fields = arg_fields
        self.presence = presence

    def __call__(self, task: tuple[int, np.ndarray | None, bool]) -> Any:
        chunk_index, mask, __ = task
        return self.store._compute_partials(
            chunk_index,
            self.group_field,
            self.aggregators,
            self.arg_fields,
            self.presence,
            mask=mask,
        )

    def __getstate__(self) -> dict:
        return {
            "store": self.store,
            "group_spec": (
                self.store.field_spec(self.group_field.name)
                if self.group_field is not None
                else None
            ),
            "arg_specs": [
                self.store.field_spec(field.name) if field is not None else None
                for field in self.arg_fields
            ],
            "aggregators": self.aggregators,
            "presence": self.presence,
        }

    def __setstate__(self, state: dict) -> None:
        store = state["store"]
        self.store = store
        group_spec = state["group_spec"]
        self.group_field = (
            store.field(_resolve_field_spec(store, group_spec))
            if group_spec is not None
            else None
        )
        self.arg_fields = [
            store.field(_resolve_field_spec(store, spec))
            if spec is not None
            else None
            for spec in state["arg_specs"]
        ]
        self.aggregators = state["aggregators"]
        self.presence = state["presence"]


def _partials_weight(partials: Any) -> float:
    """Approximate resident bytes of one chunk's cached partials.

    Partials are nested tuples/lists of numpy arrays (see the
    aggregator ``chunk_partial`` implementations); array payloads
    dominate, with a small flat overhead per container/scalar.
    """
    if isinstance(partials, np.ndarray):
        return float(partials.nbytes) + 64.0
    if isinstance(partials, (tuple, list)):
        return 64.0 + sum(_partials_weight(item) for item in partials)
    return 64.0


def factorize_values(values: list[Any]) -> tuple[np.ndarray, list[Any]]:
    """Factorize a raw value list into (codes, sorted distinct values).

    None sorts first; mixed int/float are ordered numerically. This is
    the list-input twin of :func:`repro.partition.codes.factorize` and
    shares its vectorized kernel (with the scalar fallback for inputs
    the typed paths cannot reproduce bit-identically).
    """
    return factorize_list(values)



def _topk_positions(parsed, plan, present_gids, agg_results):
    """The paper's top-k shortcut: pick LIMIT groups before value lookup.

    "After identifying the top 10 chunk-ids for table_name integers (by
    sorting all chunk-ids by their counts after the inner loop), the
    original table name string values need to be looked up in the
    dictionary" — i.e. dictionary lookups happen only for the groups
    that survive ORDER BY ... LIMIT k.

    Applicable when the final ordering is computable from aggregate
    values and group *global-ids* alone (global-ids are ranks, so
    ordering by gid equals ordering by group value). Returns the
    selected positions into ``present_gids`` or None to take the
    general path. The composite key replicates the deterministic order
    of :func:`repro.core.result.finalize` exactly: explicit ORDER BY
    keys first, then the implicit tie-break (output columns ascending),
    with the unique gid last — so the selected set and order match the
    general path, which re-sorts the survivors identically.
    """
    import heapq

    if parsed.limit is None or parsed.having is not None:
        return None
    if len(plan.group_exprs) != 1 or parsed.limit >= present_gids.size:
        return None

    out_expr = {name: expr for name, expr in plan.items}
    select_sql_to_expr = {
        item.expr.sql(): expr
        for item, (__, expr) in zip(parsed.select, plan.items)
    }

    def classify(expr):
        """'gid' | 'agg' | None (None = needs group values, bail out)."""
        refs = {
            node.name for node in walk(expr) if isinstance(node, FieldRef)
        }
        if isinstance(expr, FieldRef) and refs == {"__group_0"}:
            return "gid"
        if any(name.startswith("__group") for name in refs):
            return None
        return "agg"

    def resolve_order_expr(expr):
        rendered = expr.sql()
        if rendered in select_sql_to_expr:
            return select_sql_to_expr[rendered]
        if isinstance(expr, FieldRef) and expr.name in out_expr:
            return out_expr[expr.name]
        return None

    # (kind, expr, descending): explicit keys then implicit tie-break.
    key_specs = []
    for item in parsed.order_by:
        resolved = resolve_order_expr(item.expr)
        if resolved is None:
            return None
        kind = classify(resolved)
        if kind is None:
            return None
        key_specs.append((kind, resolved, item.descending))
    for __, expr in plan.items:
        kind = classify(expr)
        if kind is None:
            return None
        key_specs.append((kind, expr, False))
    key_specs.append(("gid", None, False))

    n = present_gids.size
    keys = []
    for position in range(n):
        env = {
            f"__agg_{j}": agg_results[j][position]
            for j in range(len(plan.aggregates))
        }
        parts = []
        for kind, expr, descending in key_specs:
            if kind == "gid":
                value = int(present_gids[position])
            else:
                value = evaluate(expr, env.__getitem__)
            if descending:
                if not isinstance(value, (int, float)) or isinstance(
                    value, bool
                ):
                    return None  # cannot invert non-numeric keys
                value = -value
            elif value is None:
                return None  # NULL ordering: take the general path
            parts.append(value)
        keys.append(tuple(parts))
    order = heapq.nsmallest(
        parsed.limit, range(n), key=keys.__getitem__
    )
    return order
