"""Pluggable chunk-scan execution strategies — Section 4, in-process.

The paper's execution tree evaluates independent partial aggregations
in parallel and merges them centrally. Within one process we mirror
that split: the engine computes a *partial* per chunk (pure, no shared
mutable state — see the aggregator contract in :mod:`repro.core.engine`)
and folds the partials on the caller's thread. The fan-out part is
pluggable:

- :class:`SerialExecutor` evaluates tasks inline, one after another.
- :class:`ParallelExecutor` (alias ``thread``) fans tasks out over a
  persistent ``concurrent.futures.ThreadPoolExecutor``. The per-chunk
  kernels are numpy reductions that release the GIL, so threads yield
  real parallelism on multi-core machines without any pickling.
- :class:`ProcessExecutor` fans tasks out over a persistent
  ``ProcessPoolExecutor`` and escapes the GIL entirely. It advertises
  ``wants_picklable_tasks``: the engine responds by materializing the
  store into a shared-memory chunk arena
  (:mod:`repro.storage.arena`), so the pickled task carries only an
  arena *handle* — workers attach by name and scan zero-copy views,
  returning pickled partials.

Determinism guarantee: :meth:`ExecutionStrategy.map_ordered` always
returns results **in submission order**, regardless of completion
order. Because the merge step (``Aggregator.apply``) runs on the
calling thread, in that order, parallel execution is bit-identical to
serial execution — the property tests in ``tests/test_executor.py``
and ``tests/test_process_executor.py`` assert exactly this, across
threads and processes.

Supervision: real processes die for real — a worker can be SIGKILLed
by the OOM killer, segfault in a native kernel, or wedge on a bad
syscall. :meth:`ExecutionStrategy.map_supervised` is the
fault-tolerant fan-out: the process strategy detects a broken or hung
pool, respawns it, and re-dispatches only the unfinished tasks with
bounded retries and real exponential backoff, reusing the cluster's
fault vocabulary (:class:`~repro.distributed.faults.FaultEvent`).
When the retry budget runs out it degrades instead of erroring: the
returned :class:`MapOutcome` lists the unserved task indices so the
engine can answer from the chunks that did finish with exact coverage
accounting — the same contract ``SimulatedCluster`` gives unreachable
shards, applied to genuine OS faults. Waits are cooperative and
bounded (:class:`SupervisionConfig`): every future is awaited in
watchdog-interval slices under a per-task deadline, so a hung worker
costs one deadline, never a wedged scan (lint rule REP017 keeps it
that way).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import threading
from collections import OrderedDict
from collections.abc import Callable, Sequence
from concurrent.futures import Future, ProcessPoolExecutor as _ProcessPool
from concurrent.futures import ThreadPoolExecutor as _ThreadPool
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, TypeVar

from repro.errors import ExecutionError, ReproError
from repro.monitoring import counters

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")


def supervision_knob_problem(
    task_deadline_seconds: float,
    max_retries: int,
    backoff_base_seconds: float,
    backoff_multiplier: float,
    watchdog_interval_seconds: float,
) -> str | None:
    """Validate supervision knobs; return a description or ``None``.

    Shared by :class:`SupervisionConfig`, ``DataStoreOptions`` and
    ``ClusterConfig`` so the three surfaces agree on what "coherent"
    means while raising their own error classes (``ExecutionError``
    locally, ``DistributedError`` in the cluster — PR 3's style).
    """
    if not 0 < task_deadline_seconds <= 3600:
        return (
            "task_deadline_seconds must be in (0, 3600], got "
            f"{task_deadline_seconds}"
        )
    if not 0 <= max_retries <= 16:
        return f"max_retries must be in [0, 16], got {max_retries}"
    if not 0 <= backoff_base_seconds <= 60:
        return (
            "backoff_base_seconds must be in [0, 60], got "
            f"{backoff_base_seconds}"
        )
    if backoff_multiplier < 1:
        return (
            f"backoff_multiplier must be >= 1, got {backoff_multiplier}"
        )
    if not 0 < watchdog_interval_seconds <= 60:
        return (
            "watchdog_interval_seconds must be in (0, 60], got "
            f"{watchdog_interval_seconds}"
        )
    if watchdog_interval_seconds > task_deadline_seconds:
        return (
            "watchdog_interval_seconds must not exceed "
            f"task_deadline_seconds ({watchdog_interval_seconds} > "
            f"{task_deadline_seconds})"
        )
    return None


@dataclass(frozen=True)
class SupervisionConfig:
    """Fault-handling knobs for the supervised process fan-out.

    - ``task_deadline_seconds``: wall-clock budget one task may spend
      before its worker is presumed hung and the wave re-dispatches it.
    - ``max_retries``: extra dispatch waves after the first (0 means a
      single attempt, PR 3's ``FaultConfig.max_retries`` semantics).
    - ``backoff_base_seconds`` / ``backoff_multiplier``: the real
      exponential backoff slept between waves via
      :func:`repro.distributed.faults.real_backoff_sleep`.
    - ``watchdog_interval_seconds``: granularity of the cooperative
      wait — a concurrent ``close()`` interrupts within one interval.
    """

    task_deadline_seconds: float = 30.0
    max_retries: int = 2
    backoff_base_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    watchdog_interval_seconds: float = 0.1

    def __post_init__(self) -> None:
        problem = supervision_knob_problem(
            self.task_deadline_seconds,
            self.max_retries,
            self.backoff_base_seconds,
            self.backoff_multiplier,
            self.watchdog_interval_seconds,
        )
        if problem is not None:
            raise ExecutionError(problem)


@dataclass
class MapOutcome:
    """What happened to one supervised fan-out.

    The local analogue of the cluster's per-shard ``DispatchOutcome``:
    ``results`` is in submission order with ``None`` holes at the
    ``unserved`` indices (tasks abandoned after the retry budget);
    ``events`` carries the :class:`~repro.distributed.faults.FaultEvent`
    trail (``crash``/``timeout``/``retry``/``task-unserved``) so local
    and distributed recovery share one observability model.
    """

    results: list[Any]
    unserved: list[int]
    events: list[Any] = field(default_factory=list)
    retries: int = 0
    respawns: int = 0
    timeouts: int = 0
    crashes: int = 0
    backoff_seconds: float = 0.0

    @property
    def complete(self) -> bool:
        return not self.unserved


def default_worker_count(max_workers: int | None = None) -> int:
    """The worker count used when callers pass ``workers=None``.

    Defaults to every core the OS reports; ``max_workers`` (the
    ``DataStoreOptions``/CLI knob) caps it when set, replacing the old
    silent hard cap of 8 that throttled big boxes.
    """
    cpus = os.cpu_count() or 1
    if max_workers is not None:
        if max_workers < 1:
            raise ExecutionError(f"max_workers must be >= 1, got {max_workers}")
        return max(1, min(cpus, max_workers))
    return max(1, cpus)


class ExecutionStrategy:
    """Common interface: ordered fan-out of independent tasks."""

    name = "abstract"

    #: True when tasks cross a process boundary: callables and items
    #: must pickle, and the engine should arena-back the store so the
    #: pickle carries a handle instead of the column data.
    wants_picklable_tasks = False

    def map_ordered(
        self,
        fn: Callable[[_Item], _Result],
        items: Sequence[_Item],
    ) -> list[_Result]:
        """Apply ``fn`` to every item; results in submission order.

        Tasks must be independent: ``fn`` may read shared state but
        must not mutate it (the engine's ``chunk_partial`` contract).
        Exceptions raised by any task propagate to the caller.
        """
        raise NotImplementedError

    def map_supervised(
        self,
        fn: Callable[[_Item], _Result],
        items: Sequence[_Item],
    ) -> MapOutcome:
        """Fault-tolerant fan-out: recover what can be recovered.

        In-process strategies cannot lose a worker to the OS, so the
        base implementation is simply :meth:`map_ordered` with every
        task served. :class:`ProcessExecutor` overrides this with real
        supervision (respawn, retry, degrade); callers that can merge a
        partial answer — the engine, the cluster — should prefer this
        over :meth:`map_ordered` and honour ``outcome.unserved``.
        """
        return MapOutcome(results=self.map_ordered(fn, items), unserved=[])

    def close(self) -> None:
        """Release worker resources (no-op for serial execution)."""

    def track_arena(self, arena: Any) -> None:
        """Adopt a shared arena for teardown at :meth:`close` (no-op here).

        Strategies that never cross a process boundary have nothing to
        unlink; :class:`ProcessExecutor` overrides this.
        """

    def describe(self) -> str:
        """Human-readable strategy summary for CLI/status output."""
        return self.name


class SerialExecutor(ExecutionStrategy):
    """Inline execution — the reference strategy parallel must match."""

    name = "serial"

    def map_ordered(
        self,
        fn: Callable[[_Item], _Result],
        items: Sequence[_Item],
    ) -> list[_Result]:
        return [fn(item) for item in items]


class ParallelExecutor(ExecutionStrategy):
    """Thread-pool fan-out with deterministic result order.

    The pool is created lazily on first use and persists across
    queries (thread startup would otherwise dominate small scans).
    Results are collected by iterating the submitted futures in
    submission order, so callers merge partials deterministically no
    matter which worker finishes first.
    """

    name = "parallel"

    def __init__(
        self, workers: int | None = None, max_workers: int | None = None
    ) -> None:
        if workers is not None and workers < 1:
            raise ExecutionError(
                f"parallel executor needs >= 1 worker, got {workers}"
            )
        self.workers = (
            workers if workers is not None else default_worker_count(max_workers)
        )
        self._pool: _ThreadPool | None = None
        self._pool_init_lock = threading.Lock()

    def _ensure_pool(self) -> _ThreadPool:
        # Double-checked under a lock: the serving layer runs queries
        # from several dispatch threads, and an unguarded lazy init
        # would spin up (and leak) one pool per racing caller.
        if self._pool is None:
            with self._pool_init_lock:
                if self._pool is None:
                    self._pool = _ThreadPool(
                        max_workers=self.workers,
                        thread_name_prefix="repro-scan",
                    )
        return self._pool

    def map_ordered(
        self,
        fn: Callable[[_Item], _Result],
        items: Sequence[_Item],
    ) -> list[_Result]:
        tasks = list(items)
        if self.workers == 1 or len(tasks) <= 1:
            return [fn(item) for item in tasks]
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in tasks]
        counters.increment("executor.parallel.batches")
        counters.increment("executor.parallel.tasks", len(futures))
        # Submission order, not completion order: the determinism
        # guarantee the merge step relies on. Threads cannot be
        # reclaimed by a deadline (no kill), so a bounded wait here
        # would only abort the scan with no recovery path.
        return [
            future.result()  # reprolint: disable=REP017 -- threads cannot be killed; a deadline adds no recovery path
            for future in futures
        ]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __getstate__(self) -> dict:
        """Pickle the configuration, never the live thread pool.

        A pool cannot cross a process boundary; the unpickled executor
        starts pool-less and lazily recreates one on first use — the
        same lifecycle as a freshly constructed instance. This is the
        ProcessPool precondition reprolint REP015 certifies statically.
        """
        state = dict(self.__dict__)
        state["_pool"] = None
        state.pop("_pool_init_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._pool = None
        self._pool_init_lock = threading.Lock()

    def describe(self) -> str:
        return f"parallel({self.workers})"


def _pool_context() -> Any:
    """The multiprocessing context for worker pools (fork when available).

    Forked workers inherit the parent's imports and attached-arena
    caches for free; on platforms without fork the default (spawn)
    context still works because tasks pickle by design.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


#: Worker-side cache of unpickled batch callables, keyed by token.
#: Bounded so a long-lived worker serving many stores cannot pin every
#: attached store its past batches referenced.
_WORKER_FN_CACHE: "OrderedDict[tuple[int, int], Callable[..., Any]]" = (
    OrderedDict()
)
_WORKER_FN_CACHE_MAX = 4

_fn_tokens = itertools.count()


def _invoke_submission(
    token: tuple[int, int], payload: bytes, item: Any
) -> Any:
    """Worker-side trampoline: unpickle the batch callable once, run one item.

    ``map_ordered`` pickles ``fn`` a single time per batch and ships the
    same ``(pid, sequence)``-tokenized payload with every submission;
    workers deserialize it on first sight and reuse it for the rest of
    the batch, so a 100-chunk scan costs one unpickle per worker — not
    one per chunk.
    """
    fn = _WORKER_FN_CACHE.get(token)
    if fn is None:
        fn = pickle.loads(payload)
        _WORKER_FN_CACHE[token] = fn
        while len(_WORKER_FN_CACHE) > _WORKER_FN_CACHE_MAX:
            _WORKER_FN_CACHE.popitem(last=False)
    return fn(item)


class ProcessExecutor(ExecutionStrategy):
    """Process-pool fan-out — the GIL-free strategy, supervised.

    Tasks cross a process boundary, so ``wants_picklable_tasks`` tells
    the engine to arena-back the store: the pickled callable then
    reduces to a shared-memory :class:`~repro.storage.arena.ArenaHandle`
    that workers attach by name, scanning read-only zero-copy views.
    Partials come back pickled and merge on the caller's thread in
    submission order — bit-identical to :class:`SerialExecutor`.

    :meth:`map_supervised` is the primary fan-out and survives real
    worker death: a SIGKILLed / segfaulted / ``os._exit``-ed worker
    breaks the pool, which is respawned, and only the unfinished tasks
    are re-dispatched (bounded waves, real exponential backoff). A
    worker that hangs past the per-task deadline is killed with its
    pool and treated the same way. Tasks still unserved when the retry
    budget runs out are reported in the :class:`MapOutcome` instead of
    raising — the engine degrades with exact coverage, mirroring the
    cluster's unreachable-shard contract. Safe because chunk tasks are
    pure and idempotent (the ``chunk_partial`` contract): a task that
    died mid-scan re-runs with no side effects, so execution is
    at-least-once with deterministic results.

    The executor owns the arenas it is handed via :meth:`track_arena`:
    :meth:`close` tears the pool down with bounded joins (stragglers
    are killed, never waited on forever), releases every segment even
    when one release raises, is idempotent, and a module-level
    ``atexit`` hook plus the janitor sweep in
    :mod:`repro.storage.arena` backstop crash paths.
    """

    name = "process"

    def __init__(
        self,
        workers: int | None = None,
        max_workers: int | None = None,
        supervision: SupervisionConfig | None = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ExecutionError(
                f"process executor needs >= 1 worker, got {workers}"
            )
        self.workers = (
            workers if workers is not None else default_worker_count(max_workers)
        )
        self.supervision = (
            supervision if supervision is not None else SupervisionConfig()
        )
        self.last_outcome: MapOutcome | None = None
        self._pool: _ProcessPool | None = None
        self._arenas: list[Any] = []
        self._batch_ordinal = 0
        self._closing = False

    @property
    def wants_picklable_tasks(self) -> bool:  # type: ignore[override]
        # A single worker runs inline (see map_ordered), so nothing
        # crosses a process boundary and no arena is needed.
        return self.workers > 1

    def _ensure_pool(self) -> _ProcessPool:
        if self._pool is None:
            self._pool = _ProcessPool(
                max_workers=self.workers, mp_context=_pool_context()
            )
        return self._pool

    def map_ordered(
        self,
        fn: Callable[[_Item], _Result],
        items: Sequence[_Item],
    ) -> list[_Result]:
        """Strict fan-out: supervised execution, but all-or-error.

        Direct callers that cannot merge a partial answer keep the old
        contract — recovery still happens underneath, but a task lost
        after the retry budget raises instead of degrading.
        """
        outcome = self.map_supervised(fn, items)
        if outcome.unserved:
            raise ExecutionError(
                f"{len(outcome.unserved)} of {len(outcome.results)} tasks "
                f"unserved after {self.supervision.max_retries} retry "
                "wave(s) (worker death or deadline overruns); use "
                "map_supervised to accept a partial result"
            )
        return outcome.results

    def map_supervised(
        self,
        fn: Callable[[_Item], _Result],
        items: Sequence[_Item],
    ) -> MapOutcome:
        """Supervised fan-out: dispatch waves until served or exhausted.

        Wave 0 submits every task; each later wave re-submits only the
        tasks that timed out or were in flight when the pool broke,
        after killing the old pool and sleeping the PR 3 backoff
        schedule for real. When the wave budget runs out with more than
        one survivor, a final :meth:`_isolation_pass` re-dispatches
        them one at a time, so only tasks that fail *alone* are
        reported unserved. Exceptions *raised by a task* propagate
        immediately — supervision recovers from worker death, not task
        bugs.
        """
        tasks = list(items)
        if self.workers == 1 or len(tasks) <= 1:
            outcome = MapOutcome(
                results=[fn(item) for item in tasks], unserved=[]
            )
            self.last_outcome = outcome
            return outcome
        from repro.distributed.faults import FaultEvent, real_backoff_sleep

        try:
            payload = pickle.dumps(fn, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError) as error:
            raise ExecutionError(
                f"task callable does not pickle: {type(error).__name__}: "
                f"{error}"
            ) from error
        token = (os.getpid(), next(_fn_tokens))
        config = self.supervision
        ordinal = self._batch_ordinal
        self._batch_ordinal += 1
        outcome = MapOutcome(results=[None] * len(tasks), unserved=[])
        counters.increment("executor.process.batches")
        counters.increment("executor.process.tasks", len(tasks))
        pending = list(range(len(tasks)))
        wave = 0
        while True:
            pool = self._ensure_pool()
            try:
                futures = [
                    (
                        index,
                        pool.submit(
                            _invoke_submission, token, payload, tasks[index]
                        ),
                    )
                    for index in pending
                ]
            except BrokenProcessPool:
                # The pool died between waves (or between batches);
                # every pending task failed before running.
                failed, pool_dead = list(pending), True
            else:
                failed, pool_dead = self._collect_wave(
                    futures, outcome, ordinal, wave
                )
            if pool_dead:
                self._terminate_pool()
                outcome.respawns += 1
                counters.increment("executor.process.pool_respawns")
            if not failed:
                break
            if wave >= config.max_retries:
                # A poisoned task kills its wave siblings' futures
                # along with the pool, so budget exhaustion alone
                # cannot tell poison from collateral (and a fault that
                # first fired on the last wave never saw a clean
                # attempt): every survivor gets a solo retry budget
                # before the unserved verdict.
                outcome.backoff_seconds += real_backoff_sleep(
                    wave,
                    config.backoff_base_seconds,
                    config.backoff_multiplier,
                )
                failed = self._isolation_pass(
                    failed, outcome, tasks, token, payload, ordinal, wave
                )
                outcome.unserved = failed
                for index in failed:
                    outcome.events.append(
                        FaultEvent(
                            kind="task-unserved",
                            query_index=ordinal,
                            shard_id=index,
                            machine=-1,
                            attempt=wave,
                        )
                    )
                if failed:
                    counters.increment(
                        "executor.process.tasks_unserved", len(failed)
                    )
                break
            outcome.backoff_seconds += real_backoff_sleep(
                wave, config.backoff_base_seconds, config.backoff_multiplier
            )
            outcome.retries += len(failed)
            outcome.events.append(
                FaultEvent(
                    kind="retry",
                    query_index=ordinal,
                    shard_id=-1,
                    machine=-1,
                    attempt=wave + 1,
                )
            )
            counters.increment("executor.process.task_retries", len(failed))
            pending = failed
            wave += 1
        self.last_outcome = outcome
        return outcome

    def _collect_wave(
        self,
        futures: list[tuple[int, Future]],
        outcome: MapOutcome,
        ordinal: int,
        wave: int,
    ) -> tuple[list[int], bool]:
        """Collect one wave in submission order; ``(failed, pool_dead)``.

        Every future gets its own deadline-bounded wait, so results
        that completed on healthy workers are all harvested before the
        pool is recycled — a wave loses only what actually failed.
        """
        from repro.distributed.faults import FaultEvent

        failed: list[int] = []
        pool_dead = False
        for index, future in futures:
            try:
                outcome.results[index] = self._bounded_result(future)
            except TimeoutError:
                future.cancel()
                failed.append(index)
                pool_dead = True  # the hung worker holds a slot; kill it
                outcome.timeouts += 1
                outcome.events.append(
                    FaultEvent(
                        kind="timeout",
                        query_index=ordinal,
                        shard_id=index,
                        machine=-1,
                        attempt=wave,
                    )
                )
                counters.increment("executor.process.task_timeouts")
            except BrokenProcessPool:
                failed.append(index)
                pool_dead = True
                outcome.crashes += 1
                outcome.events.append(
                    FaultEvent(
                        kind="crash",
                        query_index=ordinal,
                        shard_id=index,
                        machine=-1,
                        attempt=wave,
                    )
                )
                counters.increment("executor.process.worker_crashes")
        return failed, pool_dead

    def _isolation_pass(
        self,
        failed: list[int],
        outcome: MapOutcome,
        tasks: list[Any],
        token: tuple[int, int],
        payload: bytes,
        ordinal: int,
        wave: int,
    ) -> list[int]:
        """Last-resort solo re-dispatch; returns the truly unserved.

        Shared waves conflate poison with collateral: when one task
        SIGKILLs its worker, every sibling future in flight fails with
        ``BrokenProcessPool`` too — with several transient faults in
        one batch, each wave burns on a different victim and the budget
        runs out with tasks that never got a clean attempt. Each
        survivor therefore gets its own solo retry budget
        (``max_retries + 1`` attempts on a pool it shares with nobody),
        so any *transient* fault still recovers here and only a task
        that keeps failing alone earns its unserved verdict.
        """
        from repro.distributed.faults import FaultEvent, real_backoff_sleep

        config = self.supervision
        unserved: list[int] = []
        for index in failed:
            served = False
            for attempt in range(config.max_retries + 1):
                if attempt:
                    outcome.backoff_seconds += real_backoff_sleep(
                        attempt - 1,
                        config.backoff_base_seconds,
                        config.backoff_multiplier,
                    )
                outcome.retries += 1
                counters.increment("executor.process.task_retries")
                pool = self._ensure_pool()
                lost_kind = None
                try:
                    future = pool.submit(
                        _invoke_submission, token, payload, tasks[index]
                    )
                    result = self._bounded_result(future)
                except TimeoutError:
                    future.cancel()
                    lost_kind = "timeout"
                    outcome.timeouts += 1
                    counters.increment("executor.process.task_timeouts")
                except BrokenProcessPool:
                    lost_kind = "crash"
                    outcome.crashes += 1
                    counters.increment("executor.process.worker_crashes")
                else:
                    outcome.results[index] = result
                    served = True
                if lost_kind is not None:
                    outcome.events.append(
                        FaultEvent(
                            kind=lost_kind,
                            query_index=ordinal,
                            shard_id=index,
                            machine=-1,
                            attempt=wave + 1 + attempt,
                        )
                    )
                    self._terminate_pool()
                    outcome.respawns += 1
                    counters.increment("executor.process.pool_respawns")
                if served:
                    break
            if not served:
                unserved.append(index)
        return unserved

    def _bounded_result(self, future: Future) -> Any:
        """Await one future in watchdog slices under the task deadline.

        The slices make the wait cooperative: a concurrent
        :meth:`close` flips ``_closing`` and the waiter aborts within
        one interval instead of holding the deadline open. The final
        slice lets ``TimeoutError`` surface to the supervision loop.
        """
        config = self.supervision
        remaining = config.task_deadline_seconds
        while remaining > config.watchdog_interval_seconds:
            if self._closing:
                raise ExecutionError(
                    "executor closed while awaiting a task"
                )
            try:
                return future.result(
                    timeout=config.watchdog_interval_seconds
                )
            except TimeoutError:
                remaining -= config.watchdog_interval_seconds
        return future.result(timeout=max(remaining, 1e-9))

    def _terminate_pool(self) -> None:
        """Hard-stop the pool: SIGKILL its workers, drop the handle.

        Used on the supervision path, where at least one worker is
        known dead or hung — a graceful shutdown would wait on it
        forever. The management thread reaps asynchronously; the next
        wave lazily builds a fresh pool.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except (OSError, ValueError):
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def track_arena(self, arena: Any) -> None:
        """Adopt ``arena`` for unlinking when this executor closes."""
        if all(existing is not arena for existing in self._arenas):
            self._arenas.append(arena)

    def close(self) -> None:
        """Tear down the pool and every tracked arena — always.

        Bounded: workers get one task deadline to drain, stragglers
        (hung workers) are killed, so close never wedges. Exception
        safe: one arena failing to release does not strand the rest.
        Idempotent: a second call is a no-op.
        """
        self._closing = True
        try:
            pool, self._pool = self._pool, None
            if pool is not None:
                self._shutdown_pool(pool)
            # Pool first, arenas second: workers drop their mappings
            # before the segments they map are unlinked.
            arenas, self._arenas = self._arenas, []
            release_errors: list[BaseException] = []
            for arena in arenas:
                try:
                    arena.release()
                except (OSError, BufferError, ReproError) as error:
                    release_errors.append(error)
            if release_errors:
                raise ExecutionError(
                    f"{len(release_errors)} arena release(s) failed during "
                    f"close: {release_errors[0]!r}"
                ) from release_errors[0]
        finally:
            self._closing = False

    def _shutdown_pool(self, pool: _ProcessPool) -> None:
        """Bounded pool teardown: graceful drain, then SIGKILL stragglers."""
        pool.shutdown(wait=False, cancel_futures=True)
        deadline = self.supervision.task_deadline_seconds
        workers = getattr(pool, "_processes", None) or {}
        for process in list(workers.values()):
            process.join(timeout=deadline)
            if process.is_alive():
                try:
                    process.kill()
                except (OSError, ValueError):
                    pass
                process.join(timeout=1.0)

    def __getstate__(self) -> dict:
        """Pickle the configuration, never the pool or arena ownership.

        An unpickled executor starts pool-less (same lazy lifecycle as
        a fresh instance) and owns no arenas — segment lifetime stays
        with the process that created them.
        """
        state = dict(self.__dict__)
        state["_pool"] = None
        state["_arenas"] = []
        state["_closing"] = False
        state["last_outcome"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._pool = None
        self._arenas = []
        self._closing = False
        self.last_outcome = None

    def describe(self) -> str:
        return f"process({self.workers})"


_STRATEGIES: dict[str, type[ExecutionStrategy]] = {
    SerialExecutor.name: SerialExecutor,
    ParallelExecutor.name: ParallelExecutor,
    # "thread" names what the strategy actually is; "parallel" predates
    # the process strategy and stays for compatibility.
    "thread": ParallelExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def executor_names() -> list[str]:
    """The registered strategy names, for CLI choices."""
    return sorted(_STRATEGIES)


def make_executor(
    name: str,
    workers: int | None = None,
    max_workers: int | None = None,
    supervision: SupervisionConfig | None = None,
) -> ExecutionStrategy:
    """Build an execution strategy by name.

    Names: ``serial``, ``parallel``/``thread`` (thread pool),
    ``process``. ``workers`` pins an exact count; ``max_workers`` caps
    the auto-detected default instead. ``supervision`` configures the
    process strategy's fault handling. Knobs that do not apply to a
    strategy are accepted and ignored, so callers can thread one set
    of knobs through unconditionally.
    """
    try:
        cls = _STRATEGIES[name]
    except KeyError:
        raise ExecutionError(
            f"unknown executor {name!r}; choose from {executor_names()}"
        ) from None
    if cls is ProcessExecutor:
        return cls(workers, max_workers, supervision)
    if cls is ParallelExecutor:
        return cls(workers, max_workers)
    return cls()
