"""Pluggable chunk-scan execution strategies — Section 4, in-process.

The paper's execution tree evaluates independent partial aggregations
in parallel and merges them centrally. Within one process we mirror
that split: the engine computes a *partial* per chunk (pure, no shared
mutable state — see the aggregator contract in :mod:`repro.core.engine`)
and folds the partials on the caller's thread. The fan-out part is
pluggable:

- :class:`SerialExecutor` evaluates tasks inline, one after another.
- :class:`ParallelExecutor` (alias ``thread``) fans tasks out over a
  persistent ``concurrent.futures.ThreadPoolExecutor``. The per-chunk
  kernels are numpy reductions that release the GIL, so threads yield
  real parallelism on multi-core machines without any pickling.
- :class:`ProcessExecutor` fans tasks out over a persistent
  ``ProcessPoolExecutor`` and escapes the GIL entirely. It advertises
  ``wants_picklable_tasks``: the engine responds by materializing the
  store into a shared-memory chunk arena
  (:mod:`repro.storage.arena`), so the pickled task carries only an
  arena *handle* — workers attach by name and scan zero-copy views,
  returning pickled partials.

Determinism guarantee: :meth:`ExecutionStrategy.map_ordered` always
returns results **in submission order**, regardless of completion
order. Because the merge step (``Aggregator.apply``) runs on the
calling thread, in that order, parallel execution is bit-identical to
serial execution — the property tests in ``tests/test_executor.py``
and ``tests/test_process_executor.py`` assert exactly this, across
threads and processes.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
from collections import OrderedDict
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures import ThreadPoolExecutor as _ThreadPool
from concurrent.futures.process import BrokenProcessPool
from typing import Any, TypeVar

from repro.errors import ExecutionError
from repro.monitoring import counters

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")


def default_worker_count(max_workers: int | None = None) -> int:
    """The worker count used when callers pass ``workers=None``.

    Defaults to every core the OS reports; ``max_workers`` (the
    ``DataStoreOptions``/CLI knob) caps it when set, replacing the old
    silent hard cap of 8 that throttled big boxes.
    """
    cpus = os.cpu_count() or 1
    if max_workers is not None:
        if max_workers < 1:
            raise ExecutionError(f"max_workers must be >= 1, got {max_workers}")
        return max(1, min(cpus, max_workers))
    return max(1, cpus)


class ExecutionStrategy:
    """Common interface: ordered fan-out of independent tasks."""

    name = "abstract"

    #: True when tasks cross a process boundary: callables and items
    #: must pickle, and the engine should arena-back the store so the
    #: pickle carries a handle instead of the column data.
    wants_picklable_tasks = False

    def map_ordered(
        self,
        fn: Callable[[_Item], _Result],
        items: Sequence[_Item],
    ) -> list[_Result]:
        """Apply ``fn`` to every item; results in submission order.

        Tasks must be independent: ``fn`` may read shared state but
        must not mutate it (the engine's ``chunk_partial`` contract).
        Exceptions raised by any task propagate to the caller.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (no-op for serial execution)."""

    def track_arena(self, arena: Any) -> None:
        """Adopt a shared arena for teardown at :meth:`close` (no-op here).

        Strategies that never cross a process boundary have nothing to
        unlink; :class:`ProcessExecutor` overrides this.
        """

    def describe(self) -> str:
        """Human-readable strategy summary for CLI/status output."""
        return self.name


class SerialExecutor(ExecutionStrategy):
    """Inline execution — the reference strategy parallel must match."""

    name = "serial"

    def map_ordered(
        self,
        fn: Callable[[_Item], _Result],
        items: Sequence[_Item],
    ) -> list[_Result]:
        return [fn(item) for item in items]


class ParallelExecutor(ExecutionStrategy):
    """Thread-pool fan-out with deterministic result order.

    The pool is created lazily on first use and persists across
    queries (thread startup would otherwise dominate small scans).
    Results are collected by iterating the submitted futures in
    submission order, so callers merge partials deterministically no
    matter which worker finishes first.
    """

    name = "parallel"

    def __init__(
        self, workers: int | None = None, max_workers: int | None = None
    ) -> None:
        if workers is not None and workers < 1:
            raise ExecutionError(
                f"parallel executor needs >= 1 worker, got {workers}"
            )
        self.workers = (
            workers if workers is not None else default_worker_count(max_workers)
        )
        self._pool: _ThreadPool | None = None

    def _ensure_pool(self) -> _ThreadPool:
        if self._pool is None:
            self._pool = _ThreadPool(
                max_workers=self.workers, thread_name_prefix="repro-scan"
            )
        return self._pool

    def map_ordered(
        self,
        fn: Callable[[_Item], _Result],
        items: Sequence[_Item],
    ) -> list[_Result]:
        tasks = list(items)
        if self.workers == 1 or len(tasks) <= 1:
            return [fn(item) for item in tasks]
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in tasks]
        counters.increment("executor.parallel.batches")
        counters.increment("executor.parallel.tasks", len(futures))
        # Submission order, not completion order: the determinism
        # guarantee the merge step relies on.
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __getstate__(self) -> dict:
        """Pickle the configuration, never the live thread pool.

        A pool cannot cross a process boundary; the unpickled executor
        starts pool-less and lazily recreates one on first use — the
        same lifecycle as a freshly constructed instance. This is the
        ProcessPool precondition reprolint REP015 certifies statically.
        """
        state = dict(self.__dict__)
        state["_pool"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._pool = None

    def describe(self) -> str:
        return f"parallel({self.workers})"


def _pool_context() -> Any:
    """The multiprocessing context for worker pools (fork when available).

    Forked workers inherit the parent's imports and attached-arena
    caches for free; on platforms without fork the default (spawn)
    context still works because tasks pickle by design.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


#: Worker-side cache of unpickled batch callables, keyed by token.
#: Bounded so a long-lived worker serving many stores cannot pin every
#: attached store its past batches referenced.
_WORKER_FN_CACHE: "OrderedDict[tuple[int, int], Callable[..., Any]]" = (
    OrderedDict()
)
_WORKER_FN_CACHE_MAX = 4

_fn_tokens = itertools.count()


def _invoke_submission(
    token: tuple[int, int], payload: bytes, item: Any
) -> Any:
    """Worker-side trampoline: unpickle the batch callable once, run one item.

    ``map_ordered`` pickles ``fn`` a single time per batch and ships the
    same ``(pid, sequence)``-tokenized payload with every submission;
    workers deserialize it on first sight and reuse it for the rest of
    the batch, so a 100-chunk scan costs one unpickle per worker — not
    one per chunk.
    """
    fn = _WORKER_FN_CACHE.get(token)
    if fn is None:
        fn = pickle.loads(payload)
        _WORKER_FN_CACHE[token] = fn
        while len(_WORKER_FN_CACHE) > _WORKER_FN_CACHE_MAX:
            _WORKER_FN_CACHE.popitem(last=False)
    return fn(item)


class ProcessExecutor(ExecutionStrategy):
    """Process-pool fan-out — the GIL-free strategy.

    Tasks cross a process boundary, so ``wants_picklable_tasks`` tells
    the engine to arena-back the store: the pickled callable then
    reduces to a shared-memory :class:`~repro.storage.arena.ArenaHandle`
    that workers attach by name, scanning read-only zero-copy views.
    Partials come back pickled and merge on the caller's thread in
    submission order — bit-identical to :class:`SerialExecutor`.

    The executor owns the arenas it is handed via :meth:`track_arena`:
    :meth:`close` shuts the pool down and unlinks every segment, and a
    module-level ``atexit`` hook in :mod:`repro.storage.arena` backstops
    crash paths.
    """

    name = "process"

    def __init__(
        self, workers: int | None = None, max_workers: int | None = None
    ) -> None:
        if workers is not None and workers < 1:
            raise ExecutionError(
                f"process executor needs >= 1 worker, got {workers}"
            )
        self.workers = (
            workers if workers is not None else default_worker_count(max_workers)
        )
        self._pool: _ProcessPool | None = None
        self._arenas: list[Any] = []

    @property
    def wants_picklable_tasks(self) -> bool:  # type: ignore[override]
        # A single worker runs inline (see map_ordered), so nothing
        # crosses a process boundary and no arena is needed.
        return self.workers > 1

    def _ensure_pool(self) -> _ProcessPool:
        if self._pool is None:
            self._pool = _ProcessPool(
                max_workers=self.workers, mp_context=_pool_context()
            )
        return self._pool

    def map_ordered(
        self,
        fn: Callable[[_Item], _Result],
        items: Sequence[_Item],
    ) -> list[_Result]:
        tasks = list(items)
        if self.workers == 1 or len(tasks) <= 1:
            return [fn(item) for item in tasks]
        try:
            payload = pickle.dumps(fn, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError) as error:
            raise ExecutionError(
                f"task callable does not pickle: {type(error).__name__}: "
                f"{error}"
            ) from error
        token = (os.getpid(), next(_fn_tokens))
        pool = self._ensure_pool()
        futures = [
            pool.submit(_invoke_submission, token, payload, item)
            for item in tasks
        ]
        counters.increment("executor.process.batches")
        counters.increment("executor.process.tasks", len(futures))
        try:
            # Submission order, not completion order: the determinism
            # guarantee the merge step relies on.
            return [future.result() for future in futures]
        except BrokenProcessPool as error:
            # A worker died hard (segfault, OOM-kill). The pool is
            # unusable; drop it so the next batch starts a fresh one.
            self._pool = None
            raise ExecutionError(
                f"process pool broke mid-batch: {error}"
            ) from error

    def track_arena(self, arena: Any) -> None:
        """Adopt ``arena`` for unlinking when this executor closes."""
        if all(existing is not arena for existing in self._arenas):
            self._arenas.append(arena)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        # Pool first, arenas second: workers drop their mappings before
        # the segments they map are unlinked.
        arenas, self._arenas = self._arenas, []
        for arena in arenas:
            arena.release()

    def __getstate__(self) -> dict:
        """Pickle the configuration, never the pool or arena ownership.

        An unpickled executor starts pool-less (same lazy lifecycle as
        a fresh instance) and owns no arenas — segment lifetime stays
        with the process that created them.
        """
        state = dict(self.__dict__)
        state["_pool"] = None
        state["_arenas"] = []
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._pool = None
        self._arenas = []

    def describe(self) -> str:
        return f"process({self.workers})"


_STRATEGIES: dict[str, type[ExecutionStrategy]] = {
    SerialExecutor.name: SerialExecutor,
    ParallelExecutor.name: ParallelExecutor,
    # "thread" names what the strategy actually is; "parallel" predates
    # the process strategy and stays for compatibility.
    "thread": ParallelExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def executor_names() -> list[str]:
    """The registered strategy names, for CLI choices."""
    return sorted(_STRATEGIES)


def make_executor(
    name: str,
    workers: int | None = None,
    max_workers: int | None = None,
) -> ExecutionStrategy:
    """Build an execution strategy by name.

    Names: ``serial``, ``parallel``/``thread`` (thread pool),
    ``process``. ``workers`` pins an exact count; ``max_workers`` caps
    the auto-detected default instead. Both are accepted and ignored by
    ``serial`` so callers can thread one set of knobs through
    unconditionally.
    """
    try:
        cls = _STRATEGIES[name]
    except KeyError:
        raise ExecutionError(
            f"unknown executor {name!r}; choose from {executor_names()}"
        ) from None
    if cls in (ParallelExecutor, ProcessExecutor):
        return cls(workers, max_workers)
    return cls()
