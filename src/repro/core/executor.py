"""Pluggable chunk-scan execution strategies — Section 4, in-process.

The paper's execution tree evaluates independent partial aggregations
in parallel and merges them centrally. Within one process we mirror
that split: the engine computes a *partial* per chunk (pure, no shared
mutable state — see the aggregator contract in :mod:`repro.core.engine`)
and folds the partials on the caller's thread. The fan-out part is
pluggable:

- :class:`SerialExecutor` evaluates tasks inline, one after another.
- :class:`ParallelExecutor` fans tasks out over a persistent
  ``concurrent.futures.ThreadPoolExecutor``. The per-chunk kernels are
  numpy reductions that release the GIL, so threads yield real
  parallelism on multi-core machines without any pickling.

Determinism guarantee: :meth:`ExecutionStrategy.map_ordered` always
returns results **in submission order**, regardless of completion
order. Because the merge step (``Aggregator.apply``) runs on the
calling thread, in that order, parallel execution is bit-identical to
serial execution — the property test in ``tests/test_executor.py``
asserts exactly this.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor as _ThreadPool
from typing import Any, TypeVar

from repro.errors import ExecutionError
from repro.monitoring import counters

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")


def default_worker_count() -> int:
    """The worker count used when callers pass ``workers=None``."""
    return max(1, min(8, os.cpu_count() or 1))


class ExecutionStrategy:
    """Common interface: ordered fan-out of independent tasks."""

    name = "abstract"

    def map_ordered(
        self,
        fn: Callable[[_Item], _Result],
        items: Sequence[_Item],
    ) -> list[_Result]:
        """Apply ``fn`` to every item; results in submission order.

        Tasks must be independent: ``fn`` may read shared state but
        must not mutate it (the engine's ``chunk_partial`` contract).
        Exceptions raised by any task propagate to the caller.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (no-op for serial execution)."""

    def describe(self) -> str:
        """Human-readable strategy summary for CLI/status output."""
        return self.name


class SerialExecutor(ExecutionStrategy):
    """Inline execution — the reference strategy parallel must match."""

    name = "serial"

    def map_ordered(
        self,
        fn: Callable[[_Item], _Result],
        items: Sequence[_Item],
    ) -> list[_Result]:
        return [fn(item) for item in items]


class ParallelExecutor(ExecutionStrategy):
    """Thread-pool fan-out with deterministic result order.

    The pool is created lazily on first use and persists across
    queries (thread startup would otherwise dominate small scans).
    Results are collected by iterating the submitted futures in
    submission order, so callers merge partials deterministically no
    matter which worker finishes first.
    """

    name = "parallel"

    def __init__(self, workers: int | None = None) -> None:
        if workers is not None and workers < 1:
            raise ExecutionError(
                f"parallel executor needs >= 1 worker, got {workers}"
            )
        self.workers = workers if workers is not None else default_worker_count()
        self._pool: _ThreadPool | None = None

    def _ensure_pool(self) -> _ThreadPool:
        if self._pool is None:
            self._pool = _ThreadPool(
                max_workers=self.workers, thread_name_prefix="repro-scan"
            )
        return self._pool

    def map_ordered(
        self,
        fn: Callable[[_Item], _Result],
        items: Sequence[_Item],
    ) -> list[_Result]:
        tasks = list(items)
        if self.workers == 1 or len(tasks) <= 1:
            return [fn(item) for item in tasks]
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in tasks]
        counters.increment("executor.parallel.batches")
        counters.increment("executor.parallel.tasks", len(futures))
        # Submission order, not completion order: the determinism
        # guarantee the merge step relies on.
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __getstate__(self) -> dict:
        """Pickle the configuration, never the live thread pool.

        A pool cannot cross a process boundary; the unpickled executor
        starts pool-less and lazily recreates one on first use — the
        same lifecycle as a freshly constructed instance. This is the
        ProcessPool precondition reprolint REP015 certifies statically.
        """
        state = dict(self.__dict__)
        state["_pool"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._pool = None

    def describe(self) -> str:
        return f"parallel({self.workers})"


_STRATEGIES: dict[str, type[ExecutionStrategy]] = {
    SerialExecutor.name: SerialExecutor,
    ParallelExecutor.name: ParallelExecutor,
}


def executor_names() -> list[str]:
    """The registered strategy names, for CLI choices."""
    return sorted(_STRATEGIES)


def make_executor(
    name: str, workers: int | None = None
) -> ExecutionStrategy:
    """Build an execution strategy by name ('serial', 'parallel').

    ``workers`` only applies to the parallel strategy; passing it with
    ``serial`` is accepted and ignored so callers can thread one pair
    of knobs through unconditionally.
    """
    try:
        cls = _STRATEGIES[name]
    except KeyError:
        raise ExecutionError(
            f"unknown executor {name!r}; choose from {executor_names()}"
        ) from None
    if cls is ParallelExecutor:
        return ParallelExecutor(workers)
    return cls()
