"""In-memory relational tables: the import source and result shape.

The paper imports "single tables; which, e.g., correspond to log files
at Google ... or result from denormalizing a set of relational tables".
:class:`Table` is that flat, typed, column-oriented in-memory relation.
It is deliberately simple — the interesting encodings live in
:mod:`repro.storage`; this class is the neutral exchange format between
the workload generator, the row/column file backends, and the datastore
import path.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Any

import numpy as np

from repro.errors import TableError


class DataType(enum.Enum):
    """Column types supported by the reproduction."""

    STRING = "string"
    INT = "int"
    FLOAT = "float"

    def validate(self, value: Any) -> None:
        """Raise :class:`TableError` if ``value`` doesn't fit this type."""
        if value is None:
            return
        if self is DataType.STRING and not isinstance(value, str):
            raise TableError(f"expected str, got {type(value).__name__}: {value!r}")
        if self is DataType.INT and (
            isinstance(value, bool) or not isinstance(value, (int, np.integer))
        ):
            raise TableError(f"expected int, got {type(value).__name__}: {value!r}")
        if self is DataType.FLOAT and not isinstance(
            value, (int, float, np.integer, np.floating)
        ):
            raise TableError(f"expected float, got {type(value).__name__}: {value!r}")

    @classmethod
    def infer(cls, values: Iterable[Any]) -> "DataType":
        """Infer the narrowest type covering all non-null ``values``."""
        seen_float = False
        seen_int = False
        seen_str = False
        for value in values:
            if value is None:
                continue
            if isinstance(value, str):
                seen_str = True
            elif isinstance(value, bool):
                raise TableError("bool columns are not supported")
            elif isinstance(value, (int, np.integer)):
                seen_int = True
            elif isinstance(value, (float, np.floating)):
                seen_float = True
            else:
                raise TableError(f"unsupported value type {type(value).__name__}")
        if seen_str and (seen_int or seen_float):
            raise TableError("column mixes strings and numbers")
        if seen_str:
            return cls.STRING
        if seen_float:
            return cls.FLOAT
        return cls.INT


class Column:
    """A named, typed sequence of values (None = NULL)."""

    __slots__ = ("name", "dtype", "values")

    def __init__(
        self,
        name: str,
        values: Sequence[Any],
        dtype: DataType | None = None,
        validate: bool = True,
    ) -> None:
        self.name = name
        self.values = list(values)
        self.dtype = dtype if dtype is not None else DataType.infer(self.values)
        if validate and dtype is not None:
            for value in self.values:
                self.dtype.validate(value)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, row: int) -> Any:
        return self.values[row]

    def take(self, indices: np.ndarray | Sequence[int]) -> "Column":
        """A new column with rows reordered/selected by ``indices``."""
        values = self.values
        cells = np.empty(len(values), dtype=object)
        cells[:] = values
        picked = cells[np.asarray(indices, dtype=np.int64)].tolist()
        return Column(self.name, picked, dtype=self.dtype, validate=False)


class Schema:
    """Ordered field name -> type mapping."""

    def __init__(self, fields: Sequence[tuple[str, DataType]]) -> None:
        names = [name for name, __ in fields]
        if len(set(names)) != len(names):
            raise TableError(f"duplicate field names in schema: {names}")
        self._fields = list(fields)
        self._types = dict(fields)

    @property
    def field_names(self) -> list[str]:
        return [name for name, __ in self._fields]

    def dtype(self, name: str) -> DataType:
        try:
            return self._types[name]
        except KeyError:
            raise TableError(
                f"unknown field {name!r}; schema has {self.field_names}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self) -> Iterator[tuple[str, DataType]]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self._fields == other._fields


class Table:
    """A flat, typed, column-oriented relation."""

    def __init__(self, columns: Sequence[Column]) -> None:
        if not columns:
            raise TableError("a table needs at least one column")
        lengths = {len(column) for column in columns}
        if len(lengths) != 1:
            raise TableError(f"ragged columns: lengths {sorted(lengths)}")
        self._columns = {column.name: column for column in columns}
        if len(self._columns) != len(columns):
            raise TableError("duplicate column names")
        self._order = [column.name for column in columns]
        self._n_rows = lengths.pop()

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_columns(
        cls, data: Mapping[str, Sequence[Any]], schema: Schema | None = None
    ) -> "Table":
        """Build from a name -> values mapping (types inferred if no schema)."""
        columns = []
        for name, values in data.items():
            dtype = schema.dtype(name) if schema is not None else None
            columns.append(Column(name, values, dtype=dtype))
        return cls(columns)

    @classmethod
    def from_rows(
        cls, rows: Iterable[Sequence[Any]], schema: Schema
    ) -> "Table":
        """Build from row tuples matching ``schema`` order."""
        names = schema.field_names
        buffers: list[list[Any]] = [[] for __ in names]
        for row in rows:
            if len(row) != len(names):
                raise TableError(
                    f"row width {len(row)} != schema width {len(names)}"
                )
            for buffer, value in zip(buffers, row):
                buffer.append(value)
        columns = [
            Column(name, buffer, dtype=schema.dtype(name))
            for name, buffer in zip(names, buffers)
        ]
        return cls(columns)

    # -- shape -----------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_columns(self) -> int:
        return len(self._order)

    @property
    def field_names(self) -> list[str]:
        return list(self._order)

    @property
    def schema(self) -> Schema:
        return Schema([(name, self._columns[name].dtype) for name in self._order])

    @property
    def n_cells(self) -> int:
        """Total number of cells (rows x columns) — the paper's unit."""
        return self._n_rows * len(self._order)

    # -- access ------------------------------------------------------------
    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise TableError(
                f"unknown column {name!r}; table has {self._order}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def row(self, index: int) -> tuple:
        """Row ``index`` as a tuple in schema order."""
        if not 0 <= index < self._n_rows:
            raise TableError(f"row {index} out of range [0, {self._n_rows})")
        return tuple(self._columns[name].values[index] for name in self._order)

    def iter_rows(self) -> Iterator[tuple]:
        columns = [self._columns[name].values for name in self._order]
        return zip(*columns) if columns else iter(())

    # -- transforms ---------------------------------------------------------
    def take(self, indices: np.ndarray | Sequence[int]) -> "Table":
        """A new table with rows selected/reordered by ``indices``."""
        return Table([self._columns[name].take(indices) for name in self._order])

    def with_column(self, column: Column) -> "Table":
        """A new table with ``column`` appended (must match row count)."""
        if column.name in self._columns:
            raise TableError(f"column {column.name!r} already exists")
        return Table(
            [self._columns[name] for name in self._order] + [column]
        )

    def select_columns(self, names: Sequence[str]) -> "Table":
        """A new table with just ``names``, in the given order."""
        return Table([self.column(name) for name in names])

    def sorted_rows(self) -> list[tuple]:
        """All rows sorted — canonical form for result comparison."""
        key = lambda row: tuple(
            (value is not None, value) for value in row
        )
        return sorted(self.iter_rows(), key=key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return (
            self._order == other._order
            and all(
                self._columns[n].values == other._columns[n].values
                for n in self._order
            )
        )

    def __repr__(self) -> str:
        return f"Table({self._n_rows} rows x {self._order})"
