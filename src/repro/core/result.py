"""Query results and the post-processing shared by every backend.

HAVING, ORDER BY and LIMIT are applied *identically* by the
column-store engine and by all row-store baseline backends — this
module is that single implementation, which is what makes exact
cross-backend result equality testable.

Determinism note: SQL leaves the order of ties unspecified; with
``LIMIT`` that would make results backend-dependent. We therefore
always append an implicit tie-break (all output columns, ascending,
NULL first) after the explicit ORDER BY keys. Every backend shares this
rule, so any query produces byte-identical result tables everywhere.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any

from repro.core.expr_eval import evaluate, truthy
from repro.core.table import Table
from repro.errors import BindError, UnsupportedQueryError
from repro.sql.ast_nodes import (
    Aggregate,
    BinaryOp,
    Expr,
    FieldRef,
    FuncCall,
    InList,
    Literal,
    Query,
    SelectItem,
    UnaryOp,
    walk,
)


@dataclass
class ScanStats:
    """What a query touched — the quantities behind Section 6."""

    rows_total: int = 0
    rows_skipped: int = 0
    rows_cached: int = 0
    rows_scanned: int = 0
    chunks_total: int = 0
    chunks_skipped: int = 0
    chunks_cached: int = 0
    chunks_scanned: int = 0
    cells_scanned: int = 0
    # Chunks/rows the supervised process executor abandoned after its
    # retry budget (worker death, deadline overruns). Non-zero means
    # the answer is partial; QueryResult.row_coverage accounts exactly.
    chunks_unserved: int = 0
    rows_unserved: int = 0
    # The chunk indices the compiled restriction could NOT prove away
    # (every FULL/PARTIAL decision, served or not). Any refinement of
    # this query's WHERE can only touch a subset of these chunks — the
    # serving layer's subsumption reuse rescans just this footprint.
    active_chunks: tuple[int, ...] = ()
    fields_accessed: tuple[str, ...] = ()
    memory_bytes: int = 0
    # Per-phase wall-clock (seconds): restriction analysis + cache
    # probes, the chunk-partial fan-out, the deterministic merge, and
    # projection row materialization. Timings are measurement, not
    # semantics — result-equality tests compare the counters above.
    restriction_seconds: float = 0.0
    scan_seconds: float = 0.0
    merge_seconds: float = 0.0
    projection_seconds: float = 0.0

    @property
    def skip_fraction(self) -> float:
        return self.rows_skipped / self.rows_total if self.rows_total else 0.0

    @property
    def cache_fraction(self) -> float:
        return self.rows_cached / self.rows_total if self.rows_total else 0.0

    @property
    def scan_fraction(self) -> float:
        return self.rows_scanned / self.rows_total if self.rows_total else 0.0

    def merge(self, other: "ScanStats") -> "ScanStats":
        """Aggregate stats across shards / sub-queries."""
        return replace(
            self,
            rows_total=self.rows_total + other.rows_total,
            rows_skipped=self.rows_skipped + other.rows_skipped,
            rows_cached=self.rows_cached + other.rows_cached,
            rows_scanned=self.rows_scanned + other.rows_scanned,
            chunks_total=self.chunks_total + other.chunks_total,
            chunks_skipped=self.chunks_skipped + other.chunks_skipped,
            chunks_cached=self.chunks_cached + other.chunks_cached,
            chunks_scanned=self.chunks_scanned + other.chunks_scanned,
            cells_scanned=self.cells_scanned + other.cells_scanned,
            chunks_unserved=self.chunks_unserved + other.chunks_unserved,
            rows_unserved=self.rows_unserved + other.rows_unserved,
            active_chunks=tuple(
                sorted(set(self.active_chunks) | set(other.active_chunks))
            ),
            fields_accessed=tuple(
                sorted(set(self.fields_accessed) | set(other.fields_accessed))
            ),
            memory_bytes=self.memory_bytes + other.memory_bytes,
            restriction_seconds=self.restriction_seconds
            + other.restriction_seconds,
            scan_seconds=self.scan_seconds + other.scan_seconds,
            merge_seconds=self.merge_seconds + other.merge_seconds,
            projection_seconds=self.projection_seconds
            + other.projection_seconds,
        )


@dataclass
class QueryResult:
    """A result table plus execution metadata.

    ``complete``/``row_coverage`` implement the paper's graceful
    degradation: when the distributed layer cannot reach any replica of
    a shard — or the local process supervisor abandons a chunk after
    its retry budget — the query is still served, marked incomplete,
    with the exact fraction of rows the answer covers. Fault-free
    execution returns complete results (coverage 1.0).
    """

    table: Table
    stats: ScanStats = field(default_factory=ScanStats)
    elapsed_seconds: float = 0.0
    complete: bool = True
    row_coverage: float = 1.0

    def rows(self) -> list[tuple]:
        return list(self.table.iter_rows())

    def sorted_rows(self) -> list[tuple]:
        """Canonical row order for cross-backend comparison."""
        return self.table.sorted_rows()

    @property
    def column_names(self) -> list[str]:
        return self.table.field_names

    def content_fingerprint(self) -> str:
        """A stable hash of the result *content* (schema + rows).

        Rows are hashed in canonical sorted order with type-tagged
        cells, so two results fingerprint equal iff they hold the same
        column names and the same multiset of rows — independent of
        backend, executor, caching, or row order. Execution metadata
        (stats, timings, coverage) is deliberately excluded.
        """
        hasher = hashlib.sha256()
        hasher.update(repr(self.column_names).encode("utf-8"))
        for row in self.sorted_rows():
            tagged = tuple(
                (value.__class__.__name__, repr(value)) for value in row
            )
            hasher.update(repr(tagged).encode("utf-8"))
        return hasher.hexdigest()

    def content_equal(self, other: "QueryResult") -> bool:
        """Whether two results hold identical content (schema + rows)."""
        return (
            self.column_names == other.column_names
            and self.content_fingerprint() == other.content_fingerprint()
        )


# -- output expression resolution ---------------------------------------------


def resolve_output_expr(expr: Expr, select_items: tuple[SelectItem, ...]) -> Expr:
    """Rewrite ``expr`` to run over *output* rows.

    Sub-expressions structurally equal to a select item (or referencing
    its alias) become FieldRefs to that item's output column. Any
    aggregate that survives the rewrite has no matching select item and
    is rejected — HAVING/ORDER BY may only use aggregates that are also
    selected.
    """
    by_sql = {item.expr.sql(): item.output_name() for item in select_items}
    aliases = {item.alias for item in select_items if item.alias}

    def rewrite(node: Expr) -> Expr:
        rendered = node.sql()
        if rendered in by_sql:
            return FieldRef(by_sql[rendered])
        if isinstance(node, FieldRef) and node.name in aliases:
            return node
        if isinstance(node, FuncCall):
            return FuncCall(node.name, tuple(rewrite(a) for a in node.args))
        if isinstance(node, BinaryOp):
            return BinaryOp(node.op, rewrite(node.left), rewrite(node.right))
        if isinstance(node, UnaryOp):
            return UnaryOp(node.op, rewrite(node.operand))
        if isinstance(node, InList):
            return InList(rewrite(node.operand), node.values, node.negated)
        return node

    rewritten = rewrite(expr)
    for node in walk(rewritten):
        if isinstance(node, Aggregate):
            raise UnsupportedQueryError(
                f"aggregate {node.sql()} in HAVING/ORDER BY must also "
                "appear in the SELECT list"
            )
    return rewritten


def evaluate_output(expr: Expr, row: dict[str, Any]) -> Any:
    """Evaluate a resolved output expression against one output row."""

    def get_value(name: str) -> Any:
        try:
            return row[name]
        except KeyError:
            raise BindError(
                f"unknown output column {name!r}; row has {sorted(row)}"
            ) from None

    return evaluate(expr, get_value)


# -- shared post-processing -----------------------------------------------------


def apply_having(
    rows: list[dict[str, Any]], query: Query
) -> list[dict[str, Any]]:
    """Filter output rows by the HAVING clause (no-op when absent)."""
    if query.having is None:
        return rows
    predicate = resolve_output_expr(query.having, query.select)
    return [row for row in rows if truthy(evaluate_output(predicate, row))]


def _sort_key_fn(expr: Expr):
    def key(row: dict[str, Any]):
        value = evaluate_output(expr, row)
        return (value is not None, value)

    return key


def apply_order_limit(
    rows: list[dict[str, Any]], query: Query
) -> list[dict[str, Any]]:
    """Apply ORDER BY (plus the implicit tie-break) and LIMIT."""
    ordered = list(rows)
    # Implicit tie-break first: all output columns ascending, NULL
    # first. Later (explicit) sorts are stable, so this decides ties.
    output_names = [item.output_name() for item in query.select]
    ordered.sort(
        key=lambda row: tuple(
            (row[name] is not None, row[name]) for name in output_names
        )
    )
    for item in reversed(query.order_by):
        resolved = resolve_output_expr(item.expr, query.select)
        ordered.sort(key=_sort_key_fn(resolved), reverse=item.descending)
    if query.limit is not None:
        ordered = ordered[: query.limit]
    return ordered


def build_result_table(
    rows: list[dict[str, Any]], query: Query
) -> Table:
    """Materialize output rows into a Table, in SELECT order."""
    names = [item.output_name() for item in query.select]
    if len(set(names)) != len(names):
        raise UnsupportedQueryError(
            f"duplicate output column names: {names}; add AS aliases"
        )
    data = {name: [row[name] for row in rows] for name in names}
    return Table.from_columns(data)


def finalize(rows: list[dict[str, Any]], query: Query) -> Table:
    """HAVING -> ORDER BY -> LIMIT -> Table, the shared tail of every backend."""
    rows = apply_having(rows, query)
    rows = apply_order_limit(rows, query)
    return build_result_table(rows, query)
