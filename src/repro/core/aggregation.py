"""Aggregation states: the row-wise reference implementation.

These accumulators define the semantics of COUNT/SUM/MIN/MAX/AVG/
COUNT DISTINCT/APPROX_COUNT_DISTINCT. The row-store baseline backends
drive them one row at a time; the column-store's vectorized per-chunk
path (:mod:`repro.core.engine`) must produce identical results, which
the cross-backend tests verify. All states are mergeable, which is also
what makes the distributed execution tree's multi-level aggregation
(Section 4) possible.
"""

from __future__ import annotations

import copy as _copy
from typing import Any

from repro.errors import ExecutionError, UnsupportedQueryError
from repro.sketches.kmv import KmvSketch
from repro.sql.ast_nodes import Aggregate, Star


class AggState:
    """One aggregate's accumulator for one group."""

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def merge(self, other: "AggState") -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError

    def copy(self) -> "AggState":
        """A detached clone safe to merge into.

        Every built-in state overrides this with a cheap field copy
        (the distributed tree clones states on every first-seen group);
        deepcopy is only the fallback for exotic subclasses.
        """
        return _copy.deepcopy(self)


class CountStarState(AggState):
    """COUNT(*): counts rows, NULLs included."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        self.count += 1

    def merge(self, other: "CountStarState") -> None:
        self.count += other.count

    def result(self) -> int:
        return self.count

    def copy(self) -> "CountStarState":
        out = CountStarState()
        out.count = self.count
        return out


class CountValueState(AggState):
    """COUNT(x): counts non-NULL values."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.count += 1

    def merge(self, other: "CountValueState") -> None:
        self.count += other.count

    def result(self) -> int:
        return self.count

    def copy(self) -> "CountValueState":
        out = CountValueState()
        out.count = self.count
        return out


class SumState(AggState):
    """SUM(x) over non-NULL values; NULL for an all-NULL group."""

    __slots__ = ("total", "seen")

    def __init__(self) -> None:
        self.total: float = 0.0
        self.seen = False

    def add(self, value: Any) -> None:
        if value is None:
            return
        if isinstance(value, str):
            raise ExecutionError("SUM over a string column")
        self.total += value
        self.seen = True

    def merge(self, other: "SumState") -> None:
        self.total += other.total
        self.seen = self.seen or other.seen

    def result(self) -> float | None:
        return self.total if self.seen else None

    def copy(self) -> "SumState":
        out = SumState()
        out.total = self.total
        out.seen = self.seen
        return out


class MinState(AggState):
    """MIN(x) over non-NULL values."""

    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value < self.best:
            self.best = value

    def merge(self, other: "MinState") -> None:
        if other.best is not None:
            self.add(other.best)

    def result(self) -> Any:
        return self.best

    def copy(self) -> "MinState":
        out = MinState()
        out.best = self.best
        return out


class MaxState(AggState):
    """MAX(x) over non-NULL values."""

    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value > self.best:
            self.best = value

    def merge(self, other: "MaxState") -> None:
        if other.best is not None:
            self.add(other.best)

    def result(self) -> Any:
        return self.best

    def copy(self) -> "MaxState":
        out = MaxState()
        out.best = self.best
        return out


class AvgState(AggState):
    """AVG(x) = SUM(x) / COUNT(x) — the associative decomposition of
    Section 4 ("AVG(x) = SUM(x) / SUM(1)")."""

    __slots__ = ("total", "count")

    def __init__(self) -> None:
        self.total: float = 0.0
        self.count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        if isinstance(value, str):
            raise ExecutionError("AVG over a string column")
        self.total += value
        self.count += 1

    def merge(self, other: "AvgState") -> None:
        self.total += other.total
        self.count += other.count

    def result(self) -> float | None:
        return self.total / self.count if self.count else None

    def copy(self) -> "AvgState":
        out = AvgState()
        out.total = self.total
        out.count = self.count
        return out


class CountDistinctState(AggState):
    """Exact COUNT(DISTINCT x) via a value set.

    The paper notes this cannot be computed by multi-level associative
    aggregation of counts — but the *sets* (like the KMV sketches) merge
    fine, which is how the distributed tree handles it.
    """

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: set[Any] = set()

    def add(self, value: Any) -> None:
        if value is not None:
            self.values.add(value)

    def merge(self, other: "CountDistinctState") -> None:
        self.values |= other.values

    def result(self) -> int:
        return len(self.values)

    def copy(self) -> "CountDistinctState":
        out = CountDistinctState()
        out.values = set(self.values)
        return out


class ApproxCountDistinctState(AggState):
    """KMV-based approximate COUNT DISTINCT (Section 5)."""

    __slots__ = ("sketch",)

    def __init__(self, m: int) -> None:
        self.sketch = KmvSketch(m)

    def add(self, value: Any) -> None:
        if value is not None:
            self.sketch.add(value)

    def merge(self, other: "ApproxCountDistinctState") -> None:
        self.sketch.merge(other.sketch)

    def result(self) -> int:
        return self.sketch.estimate()

    def copy(self) -> "ApproxCountDistinctState":
        out = ApproxCountDistinctState(self.sketch.m)
        out.sketch = self.sketch.copy()
        return out


def make_state(agg: Aggregate) -> AggState:
    """Build the accumulator for one aggregate expression."""
    if agg.name == "COUNT":
        if agg.distinct:
            if agg.approximate:
                return ApproxCountDistinctState(agg.m)
            return CountDistinctState()
        if isinstance(agg.arg, Star):
            return CountStarState()
        return CountValueState()
    if agg.name == "SUM":
        return SumState()
    if agg.name == "MIN":
        return MinState()
    if agg.name == "MAX":
        return MaxState()
    if agg.name == "AVG":
        return AvgState()
    raise UnsupportedQueryError(f"unsupported aggregate {agg.name!r}")
