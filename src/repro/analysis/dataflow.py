"""Dataflow machinery behind the concurrency rules (REP011 — REP015).

Three layers, all over stdlib ``ast`` (no new dependencies), all
deliberately *unsound-but-useful* in the classic lint tradition — they
over-approximate where that keeps real violations visible and
under-approximate where precision would drown the tree in noise. The
documented false-negative boundaries live in DESIGN.md ("Dataflow
framework").

1. **Per-function control-flow graphs** (:func:`build_cfg`): basic
   blocks of consecutive statements linked by branch/loop/exception
   edges. ``if``/``while``/``for``/``try``/``with``, ``break``/
   ``continue``/``return``/``raise`` are modelled; comprehensions are
   expressions (their generators are visited by the scope analysis,
   not the CFG).

2. **Reaching definitions** (:func:`reaching_definitions`): the
   forward may-analysis on the powerset-of-definitions lattice (join =
   union). A definition is any binding occurrence — parameter,
   assignment, augmented assignment, loop target, ``with``/``except``
   alias, import, nested ``def``/``class``. :class:`ReachingDefs`
   answers "which bindings of ``name`` can flow into this statement?",
   which is what the value-shape queries below are built on.

3. **A project model** (:class:`Project`): every module under the lint
   root, its module-level bindings, classes/methods and imports, plus
   a name-resolved call graph (:meth:`Project.callees`,
   :meth:`Project.reachable_from`). Resolution is intentionally
   shallow: direct names resolve through local scope, imports and
   module globals; ``self.m()``/``cls.m()`` resolve through the
   enclosing class and its project-local bases; ``obj.m()`` resolves
   only when ``obj`` is a parameter/variable with a project-class
   annotation. Unresolvable receivers are skipped — a documented
   false-negative boundary, not an error.

On top sit the value-shape helpers the rules share:

- :func:`mutable_value_expr` — does an expression evaluate to a
  known-mutable container (list/dict/set displays and constructors)?
- :func:`unpicklable_value_expr` — does it evaluate to a value that
  can never cross a process boundary (locks, pools, open files,
  sockets, generators, lambdas)?
- :func:`set_typed_expr` / dict-from-set detection for the merge
  determinism rule.
- :class:`TaintAnalysis` — forward taint over reaching definitions:
  sources are ``np.frombuffer`` views and calls to project functions
  whose returns are tainted (computed to fixpoint over the call
  graph); propagation follows view-preserving operations (slices,
  ``.view``/``.reshape``/``.ravel``/``.astype(copy=False)``,
  ``np.asarray``); sinks are in-place stores (``t[i] = ...``,
  ``t += ...``, ``out=t``, in-place methods).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field


# ---------------------------------------------------------------------------
# Control-flow graphs
# ---------------------------------------------------------------------------


@dataclass
class BasicBlock:
    """A maximal run of straight-line statements."""

    index: int
    statements: list[ast.stmt] = field(default_factory=list)
    successors: set[int] = field(default_factory=set)
    predecessors: set[int] = field(default_factory=set)


class ControlFlowGraph:
    """Basic blocks + edges for one function body.

    ``entry`` is always block 0 (empty when the body starts with a
    branch); ``exit_index`` is a synthetic empty block every return
    path feeds. Unreachable blocks (after ``return``/``raise``) stay
    in ``blocks`` but have no predecessors.
    """

    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = []
        self.exit_index: int = -1

    def new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def add_edge(self, src: int, dst: int) -> None:
        self.blocks[src].successors.add(dst)
        self.blocks[dst].predecessors.add(src)

    def reachable_blocks(self) -> list[BasicBlock]:
        seen = {0}
        stack = [0]
        while stack:
            for succ in self.blocks[stack.pop()].successors:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return [b for b in self.blocks if b.index in seen]


class _LoopContext:
    def __init__(self, head: int, after: int) -> None:
        self.head = head
        self.after = after


class _CFGBuilder:
    def __init__(self) -> None:
        self.cfg = ControlFlowGraph()
        self._loops: list[_LoopContext] = []
        # Blocks that jump straight to the function exit.
        self._exit_jumps: list[int] = []

    def build(self, body: list[ast.stmt]) -> ControlFlowGraph:
        entry = self.cfg.new_block()
        last = self._emit_body(body, entry.index)
        exit_block = self.cfg.new_block()
        self.cfg.exit_index = exit_block.index
        if last is not None:
            self.cfg.add_edge(last, exit_block.index)
        for src in self._exit_jumps:
            self.cfg.add_edge(src, exit_block.index)
        return self.cfg

    def _emit_body(self, body: list[ast.stmt], current: int) -> int | None:
        """Emit statements into ``current``; return the live tail block
        (None when every path left via return/raise/break/continue)."""
        for stmt in body:
            if current is None:
                # Dead code after a terminator: park it in a fresh,
                # unreachable block so its definitions still exist for
                # whole-function queries.
                current = self.cfg.new_block().index
            current = self._emit_stmt(stmt, current)
        return current

    def _emit_stmt(self, stmt: ast.stmt, current: int) -> int | None:
        cfg = self.cfg
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cfg.blocks[current].statements.append(stmt)
            self._exit_jumps.append(current)
            return None
        if isinstance(stmt, ast.Break):
            cfg.blocks[current].statements.append(stmt)
            if self._loops:
                cfg.add_edge(current, self._loops[-1].after)
            return None
        if isinstance(stmt, ast.Continue):
            cfg.blocks[current].statements.append(stmt)
            if self._loops:
                cfg.add_edge(current, self._loops[-1].head)
            return None
        if isinstance(stmt, ast.If):
            return self._emit_if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._emit_loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._emit_try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            # The with-item assignments belong to the header block;
            # the body is straight-line from there.
            cfg.blocks[current].statements.append(stmt)
            return self._emit_body(stmt.body, current)
        cfg.blocks[current].statements.append(stmt)
        return current

    def _emit_if(self, stmt: ast.If, current: int) -> int | None:
        cfg = self.cfg
        cfg.blocks[current].statements.append(_HeaderMarker(stmt))
        then_block = cfg.new_block()
        cfg.add_edge(current, then_block.index)
        then_tail = self._emit_body(stmt.body, then_block.index)
        if stmt.orelse:
            else_block = cfg.new_block()
            cfg.add_edge(current, else_block.index)
            else_tail = self._emit_body(stmt.orelse, else_block.index)
        else:
            else_tail = current
        if then_tail is None and else_tail is None:
            return None
        join = cfg.new_block()
        if then_tail is not None:
            cfg.add_edge(then_tail, join.index)
        if else_tail is not None:
            cfg.add_edge(else_tail, join.index)
        return join.index

    def _emit_loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, current: int
    ) -> int:
        cfg = self.cfg
        head = cfg.new_block()
        cfg.add_edge(current, head.index)
        # For-loops bind their target at the head (once per iteration).
        cfg.blocks[head.index].statements.append(_HeaderMarker(stmt))
        after = cfg.new_block()
        body_block = cfg.new_block()
        cfg.add_edge(head.index, body_block.index)
        cfg.add_edge(head.index, after.index)  # zero-iteration path
        self._loops.append(_LoopContext(head.index, after.index))
        body_tail = self._emit_body(stmt.body, body_block.index)
        self._loops.pop()
        if body_tail is not None:
            cfg.add_edge(body_tail, head.index)
        if stmt.orelse:
            # else runs on normal loop exit; model as part of `after`.
            after_tail = self._emit_body(stmt.orelse, after.index)
            if after_tail is None:
                return cfg.new_block().index
            return after_tail
        return after.index

    def _emit_try(self, stmt: ast.Try, current: int) -> int | None:
        cfg = self.cfg
        body_block = cfg.new_block()
        cfg.add_edge(current, body_block.index)
        body_tail = self._emit_body(stmt.body, body_block.index)
        join = cfg.new_block()
        # Any statement in the body may raise: every handler is
        # reachable from the body's entry (the conservative edge).
        handler_tails: list[int | None] = []
        for handler in stmt.handlers:
            handler_block = cfg.new_block()
            cfg.add_edge(body_block.index, handler_block.index)
            cfg.blocks[handler_block.index].statements.append(
                _HeaderMarker(handler)
            )
            handler_tails.append(
                self._emit_body(handler.body, handler_block.index)
            )
        if stmt.orelse and body_tail is not None:
            body_tail = self._emit_body(stmt.orelse, body_tail)
        live_tails = [t for t in [body_tail, *handler_tails] if t is not None]
        if stmt.finalbody:
            final_block = cfg.new_block()
            for tail in live_tails:
                cfg.add_edge(tail, final_block.index)
            if not live_tails:
                cfg.add_edge(body_block.index, final_block.index)
            final_tail = self._emit_body(stmt.finalbody, final_block.index)
            if final_tail is None:
                return None
            cfg.add_edge(final_tail, join.index)
            return join.index
        if not live_tails:
            return None
        for tail in live_tails:
            cfg.add_edge(tail, join.index)
        return join.index


class _HeaderMarker(ast.stmt):
    """Wraps a compound statement so only its *header* (test / iter /
    target bindings) is attributed to the block, not its body."""

    _fields = ()

    def __init__(self, stmt: ast.stmt) -> None:
        super().__init__()
        self.stmt = stmt
        self.lineno = stmt.lineno
        self.col_offset = stmt.col_offset


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> ControlFlowGraph:
    """The control-flow graph of one function's body."""
    return _CFGBuilder().build(fn.body)


# ---------------------------------------------------------------------------
# Reaching definitions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Definition:
    """One binding occurrence of ``name``.

    ``value`` is the bound expression when statically evident (simple
    assignments and ``with ... as`` items); None for parameters, loop
    targets, aug-assigns and other opaque bindings. ``kind`` is one of
    ``param/assign/aug/for/with/except/import/def/class/global``.
    """

    name: str
    line: int
    col: int
    kind: str
    value: ast.expr | None = None

    def __repr__(self) -> str:  # compact — these show up in test asserts
        return f"Definition({self.name!r}, L{self.line}, {self.kind})"


def _target_names(target: ast.expr) -> Iterator[ast.Name]:
    if isinstance(target, ast.Name):
        yield target
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def statement_definitions(stmt: ast.stmt) -> list[Definition]:
    """The definitions a single (non-compound) statement generates."""
    defs: list[Definition] = []
    if isinstance(stmt, _HeaderMarker):
        inner = stmt.stmt
        if isinstance(inner, (ast.For, ast.AsyncFor)):
            for name in _target_names(inner.target):
                defs.append(
                    Definition(name.id, name.lineno, name.col_offset, "for")
                )
        elif isinstance(inner, ast.ExceptHandler) and inner.name:
            defs.append(
                Definition(inner.name, inner.lineno, inner.col_offset, "except")
            )
        return defs
    if isinstance(stmt, ast.Assign):
        value = stmt.value if len(stmt.targets) == 1 else None
        for target in stmt.targets:
            for name in _target_names(target):
                bound = value if isinstance(target, ast.Name) else None
                defs.append(
                    Definition(
                        name.id, name.lineno, name.col_offset, "assign", bound
                    )
                )
    elif isinstance(stmt, ast.AnnAssign):
        if isinstance(stmt.target, ast.Name) and stmt.value is not None:
            defs.append(
                Definition(
                    stmt.target.id,
                    stmt.target.lineno,
                    stmt.target.col_offset,
                    "assign",
                    stmt.value,
                )
            )
    elif isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, ast.Name):
            defs.append(
                Definition(
                    stmt.target.id, stmt.lineno, stmt.col_offset, "aug"
                )
            )
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                for name in _target_names(item.optional_vars):
                    defs.append(
                        Definition(
                            name.id,
                            name.lineno,
                            name.col_offset,
                            "with",
                            item.context_expr,
                        )
                    )
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            bound = alias.asname or alias.name.split(".")[0]
            defs.append(
                Definition(bound, stmt.lineno, stmt.col_offset, "import")
            )
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        defs.append(Definition(stmt.name, stmt.lineno, stmt.col_offset, "def"))
    elif isinstance(stmt, ast.ClassDef):
        defs.append(
            Definition(stmt.name, stmt.lineno, stmt.col_offset, "class")
        )
    return defs


class ReachingDefs:
    """Reaching-definition sets for one function.

    ``block_in[i]`` is the set of definitions reaching the entry of
    block ``i``; :meth:`at_statement` refines that to a specific
    statement by walking the block prefix. :meth:`definitions_of`
    ignores program points entirely (every binding of a name anywhere
    in the function) — the conservative query the closure rules use,
    since a closure may be called at any later point.
    """

    def __init__(
        self,
        cfg: ControlFlowGraph,
        fn: ast.FunctionDef | ast.AsyncFunctionDef | None = None,
    ) -> None:
        self.cfg = cfg
        self._param_defs = _parameter_definitions(fn) if fn is not None else []
        self.block_in: list[set[Definition]] = []
        self._solve()

    def _solve(self) -> None:
        blocks = self.cfg.blocks
        gen: list[dict[str, set[Definition]]] = []
        for block in blocks:
            block_gen: dict[str, set[Definition]] = {}
            for stmt in block.statements:
                for definition in statement_definitions(stmt):
                    # A later same-name def in the block kills earlier
                    # ones (strong update within straight-line code).
                    block_gen[definition.name] = {definition}
            gen.append(block_gen)

        entry_defs = {d for d in self._param_defs}
        self.block_in = [set() for _ in blocks]
        self.block_in[0] = set(entry_defs)
        out: list[set[Definition]] = [set() for _ in blocks]
        changed = True
        while changed:
            changed = False
            for block in blocks:
                in_set: set[Definition] = (
                    set(entry_defs) if block.index == 0 else set()
                )
                for pred in block.predecessors:
                    in_set |= out[pred]
                killed = set(gen[block.index])
                out_set = {
                    d for d in in_set if d.name not in killed
                } | {d for defs in gen[block.index].values() for d in defs}
                if in_set != self.block_in[block.index] or out_set != out[
                    block.index
                ]:
                    self.block_in[block.index] = in_set
                    out[block.index] = out_set
                    changed = True

    def at_statement(self, stmt: ast.stmt) -> dict[str, set[Definition]]:
        """name -> definitions that may reach ``stmt``."""
        for block in self.cfg.blocks:
            current: dict[str, set[Definition]] = {}
            for d in self.block_in[block.index]:
                current.setdefault(d.name, set()).add(d)
            for member in block.statements:
                target = member.stmt if isinstance(member, _HeaderMarker) else member
                if target is stmt or member is stmt:
                    return current
                for definition in statement_definitions(member):
                    current[definition.name] = {definition}
        return {}

    def definitions_of(self, name: str) -> set[Definition]:
        """Every binding of ``name`` anywhere in the function."""
        found = {d for d in self._param_defs if d.name == name}
        for block in self.cfg.blocks:
            for stmt in block.statements:
                for definition in statement_definitions(stmt):
                    if definition.name == name:
                        found.add(definition)
        return found


def _parameter_definitions(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[Definition]:
    args = fn.args
    params = (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    )
    return [
        Definition(a.arg, a.lineno, a.col_offset, "param") for a in params
    ]


def reaching_definitions(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> ReachingDefs:
    """Convenience: CFG + solved reaching definitions for ``fn``."""
    return ReachingDefs(build_cfg(fn), fn)


# ---------------------------------------------------------------------------
# Scopes, closures and mutation shapes
# ---------------------------------------------------------------------------

#: Container methods that mutate their receiver in place.
MUTATING_CONTAINER_METHODS = {
    "add", "append", "clear", "discard", "extend", "insert", "pop",
    "popitem", "remove", "setdefault", "sort", "update",
    "__setitem__", "__delitem__",
}

#: numpy ndarray methods that mutate the array in place.
INPLACE_NDARRAY_METHODS = {
    "fill", "sort", "partition", "put", "itemset", "byteswap", "resize",
    "setfield", "setflags",
}


def bound_names(fn: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> set[str]:
    """Names the function binds locally (params + every binding form)."""
    args = fn.args
    names = {
        a.arg
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        )
    }
    body = fn.body if isinstance(fn.body, list) else [ast.Expr(fn.body)]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                names.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ExceptHandler) and node.name:
                names.add(node.name)
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                # global/nonlocal names are *not* local bindings.
                names.difference_update(node.names)
    return names


def _comprehension_bound(node: ast.AST) -> set[str]:
    bound: set[str] = set()
    if isinstance(
        node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
    ):
        for gen in node.generators:
            for name in _target_names(gen.target):
                bound.add(name.id)
    return bound


def free_names(
    fn: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
) -> set[str]:
    """Names ``fn`` reads but does not bind — closure/global candidates.

    Nested functions contribute their own free names (minus what the
    outer function binds is handled by the caller); comprehension
    targets are bound within the comprehension.
    """
    local = bound_names(fn)
    free: set[str] = set()
    body = fn.body if isinstance(fn.body, list) else [ast.Expr(fn.body)]

    def visit(node: ast.AST, extra_bound: frozenset[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            inner_free = free_names(node)
            for name in inner_free:
                if name not in local and name not in extra_bound:
                    free.add(name)
            # Default expressions evaluate in the enclosing scope.
            for default in list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]:
                visit(default, extra_bound)
            return
        comp_bound = _comprehension_bound(node)
        if comp_bound:
            extra_bound = extra_bound | comp_bound
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id not in local and node.id not in extra_bound:
                free.add(node.id)
        for child in ast.iter_child_nodes(node):
            visit(child, extra_bound)

    for stmt in body:
        visit(stmt, frozenset())
    return free


def attribute_root(node: ast.expr) -> ast.expr:
    """Strip attribute/subscript chains: ``a.b[c].d`` -> Name ``a``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


@dataclass(frozen=True)
class Mutation:
    """One write through a name: what kind, and where."""

    name: str
    line: int
    col: int
    kind: str  # 'attr-store' | 'subscript-store' | 'aug' | 'method' | 'rebind' | 'del'
    detail: str = ""


def mutations_through(
    fn: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
    names: Iterable[str] | None = None,
) -> list[Mutation]:
    """Writes the function performs *through* each root name.

    Catches attribute stores (``x.a = ...``), subscript stores
    (``x[k] = ...``), augmented assigns on the name or through it,
    deletes, rebinding via ``global``/``nonlocal``, and calls to
    known mutating container methods rooted at the name. Reads are
    never mutations; so ``x.a`` on the RHS is fine.
    """
    wanted = set(names) if names is not None else None
    found: list[Mutation] = []
    declared_nonlocal: set[str] = set()
    body = fn.body if isinstance(fn.body, list) else [ast.Expr(fn.body)]

    def note(name: str, node: ast.AST, kind: str, detail: str = "") -> None:
        if wanted is None or name in wanted:
            found.append(
                Mutation(
                    name, node.lineno, node.col_offset, kind, detail
                )
            )

    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                declared_nonlocal.update(node.names)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    for sub in _flatten(target):
                        root = attribute_root(sub)
                        if not isinstance(root, ast.Name):
                            continue
                        if isinstance(sub, ast.Attribute):
                            note(root.id, sub, "attr-store", sub.attr)
                        elif isinstance(sub, ast.Subscript):
                            note(root.id, sub, "subscript-store")
                        elif (
                            isinstance(sub, ast.Name)
                            and isinstance(node, ast.AugAssign)
                        ):
                            note(root.id, sub, "aug")
                        elif (
                            isinstance(sub, ast.Name)
                            and sub.id in declared_nonlocal
                        ):
                            note(root.id, sub, "rebind", "global/nonlocal")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    root = attribute_root(target)
                    if isinstance(root, ast.Name) and not isinstance(
                        target, ast.Name
                    ):
                        note(root.id, target, "del")
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_CONTAINER_METHODS
            ):
                root = attribute_root(node.func.value)
                if isinstance(root, ast.Name):
                    note(root.id, node, "method", node.func.attr)
    # Late-pass fixup: `global`/`nonlocal` declarations may appear
    # after the first assignment textually; re-scan plain rebinds.
    if declared_nonlocal:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        for sub in _flatten(target):
                            if (
                                isinstance(sub, ast.Name)
                                and sub.id in declared_nonlocal
                            ):
                                note(sub.id, sub, "rebind", "global/nonlocal")
    return found


def _flatten(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten(element)
    elif isinstance(target, ast.Starred):
        yield from _flatten(target.value)
    else:
        yield target


# ---------------------------------------------------------------------------
# Value-shape classification
# ---------------------------------------------------------------------------

#: Constructors whose results are mutable containers.
MUTABLE_CONSTRUCTORS = {
    "list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
    "Counter", "deque",
}

#: Constructors whose results can never cross a process boundary.
#: (threading primitives, pools, OS handles, live iterators)
UNPICKLABLE_CONSTRUCTORS = {
    "Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore",
    "Barrier", "local", "ThreadPoolExecutor", "ProcessPoolExecutor",
    "Thread", "open", "socket", "Popen", "connect", "allocate_lock",
    "mmap",
}


def call_name(node: ast.expr) -> str | None:
    """The trailing name of a call target: ``threading.Lock`` -> Lock."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def mutable_value_expr(expr: ast.expr | None) -> bool:
    """Does ``expr`` evaluate to a known-mutable container?"""
    if expr is None:
        return False
    if isinstance(expr, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.SetComp, ast.DictComp)):
        return True
    if isinstance(expr, ast.Call):
        return call_name(expr) in MUTABLE_CONSTRUCTORS
    return False


def unpicklable_value_expr(expr: ast.expr | None) -> str | None:
    """The constructor name when ``expr`` builds an unpicklable value."""
    if expr is None:
        return None
    if isinstance(expr, ast.Call):
        name = call_name(expr)
        if name in UNPICKLABLE_CONSTRUCTORS:
            return name
    if isinstance(expr, ast.Lambda):
        return "lambda"
    if isinstance(expr, ast.GeneratorExp):
        return "generator"
    return None


def set_typed_expr(expr: ast.expr | None) -> bool:
    """Does ``expr`` evaluate to a set (hash-ordered iteration)?"""
    if expr is None:
        return False
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        name = call_name(expr)
        if name in ("set", "frozenset"):
            return True
        # s.union(...) / s.intersection(...) / s.difference(...)
        if isinstance(expr.func, ast.Attribute) and expr.func.attr in (
            "union", "intersection", "difference", "symmetric_difference",
            "copy",
        ):
            return set_typed_expr(expr.func.value)
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return set_typed_expr(expr.left) or set_typed_expr(expr.right)
    return False


def sorted_wrapped(expr: ast.expr) -> bool:
    """Is the iteration source explicitly ordered (``sorted(...)`` or
    ``sorted``-adjacent helpers)?"""
    return (
        isinstance(expr, ast.Call)
        and call_name(expr) in ("sorted", "min", "max")
    )


# ---------------------------------------------------------------------------
# The project model & call graph
# ---------------------------------------------------------------------------


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    rel_path: str
    qualname: str  # module-relative: "f" or "Class.f"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ClassInfo:
    rel_path: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    bases: list[str] = field(default_factory=list)
    #: attr name -> value exprs assigned via self.attr anywhere in the class
    attr_assigns: dict[str, list[ast.expr]] = field(default_factory=dict)

    def has_pickle_protocol(self) -> bool:
        return any(
            name in self.methods
            for name in ("__getstate__", "__reduce__", "__reduce_ex__")
        )


@dataclass
class ModuleModel:
    """Symbols of one module: functions, classes, globals, imports."""

    rel_path: str
    tree: ast.Module
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level name -> assigned value expressions
    globals: dict[str, list[ast.expr]] = field(default_factory=dict)
    #: local alias -> dotted module ("np" -> "numpy"), for `import x as y`
    import_modules: dict[str, str] = field(default_factory=dict)
    #: local alias -> (module, original name), for `from m import x [as y]`
    import_names: dict[str, tuple[str, str]] = field(default_factory=dict)


def _index_module(rel_path: str, tree: ast.Module) -> ModuleModel:
    model = ModuleModel(rel_path, tree)
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            model.functions[stmt.name] = FunctionInfo(
                rel_path, stmt.name, stmt
            )
        elif isinstance(stmt, ast.ClassDef):
            info = ClassInfo(
                rel_path,
                stmt,
                bases=[
                    base.id if isinstance(base, ast.Name) else base.attr
                    for base in stmt.bases
                    if isinstance(base, (ast.Name, ast.Attribute))
                ],
            )
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method = FunctionInfo(
                        rel_path,
                        f"{stmt.name}.{item.name}",
                        item,
                        class_name=stmt.name,
                    )
                    info.methods[item.name] = method
            for node in ast.walk(stmt):
                for target in _assign_targets(node):
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in ("self", "cls")
                    ):
                        value = _assigned_value(node)
                        info.attr_assigns.setdefault(target.attr, [])
                        if value is not None:
                            info.attr_assigns[target.attr].append(value)
            model.classes[stmt.name] = info
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for name in _target_names(target):
                    model.globals.setdefault(name.id, []).append(stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                model.globals.setdefault(stmt.target.id, []).append(stmt.value)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                model.import_modules[
                    alias.asname or alias.name.split(".")[0]
                ] = alias.name
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                model.import_names[alias.asname or alias.name] = (
                    stmt.module or "", alias.name
                )
    return model


def _assign_targets(node: ast.AST) -> Iterator[ast.expr]:
    if isinstance(node, ast.Assign):
        for target in node.targets:
            yield from _flatten(target)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        yield from _flatten(node.target)


def _assigned_value(node: ast.AST) -> ast.expr | None:
    if isinstance(node, (ast.Assign, ast.AnnAssign)):
        return node.value
    return None


def _module_name_of(rel_path: str) -> str:
    """'storage/trie.py' -> 'repro.storage.trie' (lint-root relative)."""
    stem = rel_path[:-3] if rel_path.endswith(".py") else rel_path
    if stem.endswith("/__init__"):
        stem = stem[: -len("/__init__")]
    dotted = stem.replace("/", ".")
    return f"repro.{dotted}" if dotted else "repro"


class Project:
    """Whole-project symbol table + name-resolved call graph.

    Built once per lint run from every parsed module; rules query it
    through :meth:`function_infos`, :meth:`resolve_call`,
    :meth:`callees` and :meth:`reachable_from`.
    """

    def __init__(self, modules: Iterable[tuple[str, ast.Module]]) -> None:
        self.modules: dict[str, ModuleModel] = {}
        for rel_path, tree in modules:
            self.modules[rel_path] = _index_module(rel_path, tree)
        #: dotted module name -> ModuleModel, for import resolution
        self._by_module_name = {
            _module_name_of(rel): model for rel, model in self.modules.items()
        }
        self._callee_cache: dict[tuple[str, str], list[FunctionInfo]] = {}
        self._returns_tainted: dict[tuple[str, str], bool] | None = None

    # -- lookup -------------------------------------------------------------

    def function_infos(self) -> Iterator[FunctionInfo]:
        for model in self.modules.values():
            yield from model.functions.values()
            for cls in model.classes.values():
                yield from cls.methods.values()

    def functions_named(self, name: str) -> list[FunctionInfo]:
        return [f for f in self.function_infos() if f.name == name]

    def class_named(self, name: str) -> ClassInfo | None:
        for model in self.modules.values():
            if name in model.classes:
                return model.classes[name]
        return None

    def model_for(self, rel_path: str) -> ModuleModel | None:
        return self.modules.get(rel_path)

    def _resolve_project_module(self, dotted: str) -> ModuleModel | None:
        return self._by_module_name.get(dotted)

    # -- call resolution ----------------------------------------------------

    def resolve_call(
        self, call: ast.Call, caller: FunctionInfo
    ) -> list[FunctionInfo]:
        """The project functions a call may invoke (possibly empty).

        Resolution order for ``f(...)``: enclosing class method (bare
        recursion is rare), same-module function, ``from m import f``,
        class constructor (-> ``__init__``). For ``x.m(...)``: ``self``
        / ``cls`` receivers through the class and its project bases;
        ``mod.f`` through ``import`` aliases; annotated parameters /
        locals through their class annotation. Anything else is
        unresolved (skipped).
        """
        model = self.modules[caller.rel_path]
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_bare_name(func.id, model)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(func, caller, model)
        return []

    def _resolve_bare_name(
        self, name: str, model: ModuleModel
    ) -> list[FunctionInfo]:
        if name in model.functions:
            return [model.functions[name]]
        if name in model.classes:
            init = model.classes[name].methods.get("__init__")
            return [init] if init else []
        if name in model.import_names:
            module_name, original = model.import_names[name]
            target = self._resolve_project_module(module_name)
            if target is not None:
                return self._resolve_bare_name(original, target)
        return []

    def _resolve_attribute(
        self, func: ast.Attribute, caller: FunctionInfo, model: ModuleModel
    ) -> list[FunctionInfo]:
        receiver = func.value
        method = func.attr
        # self.m() / cls.m(): the enclosing class, then project bases.
        if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
            if caller.class_name is not None:
                return self._resolve_method_in_hierarchy(
                    caller.class_name, method
                )
            return []
        # mod.f(): import alias of a project module.
        if isinstance(receiver, ast.Name):
            dotted = model.import_modules.get(receiver.id)
            if dotted is not None:
                target = self._resolve_project_module(dotted)
                if target is not None:
                    return self._resolve_bare_name(method, target)
                return []  # stdlib/third-party module: out of scope
            # Annotated parameter / local: resolve through the class.
            ann = _annotation_of(caller.node, receiver.id)
            if ann is not None:
                cls = self.class_named(ann)
                if cls is not None:
                    return self._resolve_method_in_hierarchy(
                        cls.node.name, method
                    )
        return []

    def _resolve_method_in_hierarchy(
        self, class_name: str, method: str
    ) -> list[FunctionInfo]:
        seen: set[str] = set()
        queue = [class_name]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            cls = self.class_named(name)
            if cls is None:
                continue
            if method in cls.methods:
                return [cls.methods[method]]
            queue.extend(cls.bases)
        return []

    def callees(self, fn: FunctionInfo) -> list[FunctionInfo]:
        key = (fn.rel_path, fn.qualname)
        cached = self._callee_cache.get(key)
        if cached is not None:
            return cached
        out: list[FunctionInfo] = []
        seen: set[tuple[str, str]] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                for callee in self.resolve_call(node, fn):
                    ckey = (callee.rel_path, callee.qualname)
                    if ckey not in seen:
                        seen.add(ckey)
                        out.append(callee)
        self._callee_cache[key] = out
        return out

    def reachable_from(
        self, root: FunctionInfo
    ) -> dict[tuple[str, str], list[str]]:
        """Every function reachable from ``root`` (root excluded),
        mapped to one witness call chain of qualnames."""
        found: dict[tuple[str, str], list[str]] = {}
        queue: list[tuple[FunctionInfo, list[str]]] = [
            (root, [f"{root.rel_path}:{root.qualname}"])
        ]
        while queue:
            fn, chain = queue.pop(0)
            for callee in self.callees(fn):
                key = (callee.rel_path, callee.qualname)
                if key == (root.rel_path, root.qualname) or key in found:
                    continue
                found[key] = chain + [f"{callee.rel_path}:{callee.qualname}"]
                queue.append((callee, found[key]))
        return found

    def info_by_key(self, key: tuple[str, str]) -> FunctionInfo | None:
        model = self.modules.get(key[0])
        if model is None:
            return None
        qualname = key[1]
        if "." in qualname:
            class_name, method = qualname.split(".", 1)
            cls = model.classes.get(class_name)
            return cls.methods.get(method) if cls else None
        return model.functions.get(qualname)

    # -- return-taint summaries (REP014) ------------------------------------

    def returns_tainted(self, fn: FunctionInfo) -> bool:
        """Does ``fn`` (possibly) return a frombuffer-derived view?

        Computed to fixpoint over the whole project: a function is
        return-tainted when any ``return e`` has ``e`` tainted under
        :class:`TaintAnalysis` seeded with the current summaries.
        """
        if self._returns_tainted is None:
            self._solve_return_taint()
        return self._returns_tainted.get((fn.rel_path, fn.qualname), False)

    def _solve_return_taint(self) -> None:
        summaries: dict[tuple[str, str], bool] = {}
        functions = list(self.function_infos())
        changed = True
        rounds = 0
        while changed and rounds < 10:
            changed = False
            rounds += 1
            for fn in functions:
                key = (fn.rel_path, fn.qualname)
                if summaries.get(key, False):
                    continue
                analysis = TaintAnalysis(fn, self, _summaries=summaries)
                if analysis.any_return_tainted():
                    summaries[key] = True
                    changed = True
        self._returns_tainted = summaries


def _annotation_of(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, name: str
) -> str | None:
    """The (string) class name a parameter/variable is annotated with."""
    args = fn.args
    for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        if a.arg == name and a.annotation is not None:
            return _annotation_name(a.annotation)
    for node in ast.walk(fn.node if hasattr(fn, "node") else fn):
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == name
        ):
            return _annotation_name(node.annotation)
    return None


def _annotation_name(annotation: ast.expr) -> str | None:
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        # 'ChunkData' string annotations; strip Optional-ish wrappers.
        text = annotation.value.strip()
        return text.split("[")[0].split(".")[-1] or None
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        # "X | None": take the non-None side.
        for side in (annotation.left, annotation.right):
            name = _annotation_name(side)
            if name is not None and name != "None":
                return name
    if isinstance(annotation, ast.Subscript):
        return _annotation_name(annotation.value)
    return None


# ---------------------------------------------------------------------------
# Buffer taint (REP014)
# ---------------------------------------------------------------------------

#: Receiver methods that keep a view onto the same memory.
_VIEWING_METHODS = {"view", "reshape", "ravel", "squeeze", "transpose",
                    "swapaxes", "newbyteorder"}


@dataclass(frozen=True)
class TaintSink:
    """An in-place write on a tainted (buffer-derived) array."""

    line: int
    col: int
    name: str
    kind: str  # 'subscript-store' | 'aug' | 'out-kwarg' | 'inplace-method'
    source_line: int  # the frombuffer/source binding that tainted it


class TaintAnalysis:
    """Forward may-taint over one function's reaching definitions.

    A *source* is ``np.frombuffer(...)`` (any receiver ending in
    ``frombuffer``) or a call to a project function whose summary says
    it returns a tainted view. Taint propagates through aliasing
    assignments and view-preserving expressions; it does **not**
    propagate through copying operations (arithmetic, ``.astype()``
    with default copy, ``np.unique``/``bincount``/boolean indexing),
    which allocate fresh memory.
    """

    def __init__(
        self,
        fn: FunctionInfo,
        project: Project | None = None,
        _summaries: dict[tuple[str, str], bool] | None = None,
    ) -> None:
        self.fn = fn
        self.project = project
        self._summaries = _summaries
        self.rdefs = reaching_definitions(fn.node)
        self._tainted_defs: set[Definition] = set()
        self._taint_source_line: dict[Definition, int] = {}
        self._solve_local()

    # -- classification -----------------------------------------------------

    def _call_is_source(self, call: ast.Call) -> bool:
        name = call_name(call)
        if name == "frombuffer":
            return True
        if self.project is not None:
            if self._summaries is not None:
                for callee in self.project.resolve_call(call, self.fn):
                    if self._summaries.get(
                        (callee.rel_path, callee.qualname), False
                    ):
                        return True
            else:
                for callee in self.project.resolve_call(call, self.fn):
                    if self.project.returns_tainted(callee):
                        return True
        return False

    def expr_tainted(self, expr: ast.expr, at: ast.stmt | None = None) -> bool:
        return self._expr_tainted(expr, at)

    def _name_tainted(self, name: str, at: ast.stmt | None) -> bool:
        if at is not None:
            reaching = self.rdefs.at_statement(at).get(name)
            if reaching is not None:
                return any(d in self._tainted_defs for d in reaching)
        return any(
            d in self._tainted_defs for d in self.rdefs.definitions_of(name)
        )

    def _expr_tainted(self, expr: ast.expr, at: ast.stmt | None) -> bool:
        if isinstance(expr, ast.Name):
            return self._name_tainted(expr.id, at)
        if isinstance(expr, ast.Call):
            if self._call_is_source(expr):
                return True
            func = expr.func
            if isinstance(func, ast.Attribute):
                if func.attr in _VIEWING_METHODS:
                    return self._expr_tainted(func.value, at)
                if func.attr == "astype":
                    # astype copies by default; only copy=False views.
                    for kw in expr.keywords:
                        if (
                            kw.arg == "copy"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is False
                        ):
                            return self._expr_tainted(func.value, at)
                    return False
                if func.attr == "asarray":
                    return any(
                        self._expr_tainted(a, at) for a in expr.args
                    )
            return False
        if isinstance(expr, ast.Subscript):
            # Slice of a view is a view; scalar/fancy indexing copies
            # (a scalar read is not an array at all).
            if isinstance(expr.slice, ast.Slice):
                return self._expr_tainted(expr.value, at)
            return False
        if isinstance(expr, ast.Attribute):
            if expr.attr == "T":
                return self._expr_tainted(expr.value, at)
            return False
        if isinstance(expr, ast.IfExp):
            return self._expr_tainted(expr.body, at) or self._expr_tainted(
                expr.orelse, at
            )
        if isinstance(expr, (ast.Tuple, ast.List)):
            return any(self._expr_tainted(e, at) for e in expr.elts)
        return False

    # -- solving ------------------------------------------------------------

    def _all_statements(self) -> Iterator[ast.stmt]:
        for block in self.rdefs.cfg.blocks:
            for stmt in block.statements:
                yield stmt.stmt if isinstance(stmt, _HeaderMarker) else stmt

    def _solve_local(self) -> None:
        # Iterate assignment re-classification to a local fixpoint:
        # taint introduced by a later-seen def can flow through an
        # earlier-seen alias in loop bodies.
        for _ in range(len(self.rdefs.cfg.blocks) + 2):
            changed = False
            for stmt in self._all_statements():
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    value = _assigned_value(stmt)
                    if value is None:
                        continue
                    if not self._expr_tainted(value, stmt):
                        continue
                    for definition in statement_definitions(stmt):
                        if definition not in self._tainted_defs:
                            self._tainted_defs.add(definition)
                            self._taint_source_line[definition] = value.lineno
                            changed = True
            if not changed:
                break

    def any_return_tainted(self) -> bool:
        for stmt in self._all_statements():
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                if self._expr_tainted(stmt.value, stmt):
                    return True
        return False

    def _source_line_for(self, name: str) -> int:
        for definition in self.rdefs.definitions_of(name):
            if definition in self._tainted_defs:
                return self._taint_source_line.get(definition, definition.line)
        return 0

    def sinks(self) -> list[TaintSink]:
        """Every in-place write on a tainted array in this function."""
        out: list[TaintSink] = []
        for stmt in self._all_statements():
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for sub in _flatten(target):
                        if isinstance(sub, ast.Subscript):
                            root = attribute_root(sub)
                            base = sub.value
                            if isinstance(
                                base, ast.Name
                            ) and self._name_tainted(base.id, stmt):
                                out.append(
                                    TaintSink(
                                        sub.lineno, sub.col_offset,
                                        base.id, "subscript-store",
                                        self._source_line_for(base.id),
                                    )
                                )
                            del root
            elif isinstance(stmt, ast.AugAssign):
                target = stmt.target
                base: ast.expr | None = None
                if isinstance(target, ast.Name):
                    base = target
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    base = target.value
                if (
                    isinstance(base, ast.Name)
                    and self._name_tainted(base.id, stmt)
                ):
                    out.append(
                        TaintSink(
                            stmt.lineno, stmt.col_offset, base.id, "aug",
                            self._source_line_for(base.id),
                        )
                    )
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                for kw in node.keywords:
                    if kw.arg == "out" and isinstance(kw.value, ast.Name):
                        if self._name_tainted(kw.value.id, stmt):
                            out.append(
                                TaintSink(
                                    node.lineno, node.col_offset,
                                    kw.value.id, "out-kwarg",
                                    self._source_line_for(kw.value.id),
                                )
                            )
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in INPLACE_NDARRAY_METHODS
                    and isinstance(func.value, ast.Name)
                    and self._name_tainted(func.value.id, stmt)
                ):
                    out.append(
                        TaintSink(
                            node.lineno, node.col_offset,
                            func.value.id, "inplace-method",
                            self._source_line_for(func.value.id),
                        )
                    )
                if (
                    call_name(node) == "copyto"
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and self._name_tainted(node.args[0].id, stmt)
                ):
                    out.append(
                        TaintSink(
                            node.lineno, node.col_offset,
                            node.args[0].id, "inplace-method",
                            self._source_line_for(node.args[0].id),
                        )
                    )
        return out


# ---------------------------------------------------------------------------
# Submission-site discovery (shared by REP011 / REP015)
# ---------------------------------------------------------------------------


@dataclass
class SubmissionSite:
    """One callable handed to an executor-shaped seam."""

    seam: str  # 'map_ordered' | 'dispatch_sub_query'
    call: ast.Call
    callable_expr: ast.expr
    enclosing: FunctionInfo


def submission_sites(
    project: Project, rel_path: str
) -> Iterator[SubmissionSite]:
    """Executor submissions in one module: ``*.map_ordered(fn, ...)``
    and ``dispatch_sub_query(..., attempt_cost, ...)``."""
    model = project.model_for(rel_path)
    if model is None:
        return
    for fn in project.function_infos():
        if fn.rel_path != rel_path:
            continue
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "map_ordered":
                if node.args:
                    yield SubmissionSite("map_ordered", node, node.args[0], fn)
            elif call_name(func) == "dispatch_sub_query":
                target = None
                if len(node.args) >= 5:
                    target = node.args[4]
                for kw in node.keywords:
                    if kw.arg == "attempt_cost":
                        target = kw.value
                if target is not None:
                    yield SubmissionSite(
                        "dispatch_sub_query", node, target, fn
                    )


def resolve_callable(
    site: SubmissionSite, project: Project
) -> tuple[ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda | None, str]:
    """The function node a submitted callable expression denotes.

    Returns (node, label). Lambdas resolve to themselves; names resolve
    to nested ``def``s in the enclosing function, then module-level
    functions. Unresolvable expressions return (None, description).
    """
    expr = site.callable_expr
    if isinstance(expr, ast.Lambda):
        return expr, "lambda"
    if isinstance(expr, ast.Name):
        for node in ast.walk(site.enclosing.node):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == expr.id
                and node is not site.enclosing.node
            ):
                return node, expr.id
        model = project.model_for(site.enclosing.rel_path)
        if model is not None and expr.id in model.functions:
            return model.functions[expr.id].node, expr.id
        return None, expr.id
    if isinstance(expr, ast.Attribute):
        return None, f".{expr.attr}"
    return None, type(expr).__name__
