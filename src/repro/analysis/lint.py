"""The ``reprolint`` engine: rule registry, suppressions, file walking.

Rules are small classes registered with :func:`lint_rule`; each one
inspects a parsed module (:class:`ModuleInfo`) and yields raw findings.
The engine handles everything rule-independent: discovering ``.py``
files, parsing, inline suppressions, severity overrides and assembling
the :class:`~repro.analysis.findings.FindingsReport`.

Suppressions are source comments::

    raise AttributeError(...)  # reprolint: disable=REP001 -- why it is ok
    # reprolint: disable-file=REP005 -- whole-module opt-out

A line-level ``disable`` silences the listed codes on that line only; a
``disable-file`` silences them for the whole module. The ``-- reason``
trailer is encouraged (and what code review should look for) but not
enforced by the engine. Suppressions that no longer silence anything
are themselves flagged (REP016) on full runs, so dead opt-outs cannot
accumulate.

Comments are found with :mod:`tokenize`, not a per-line regex, so a
suppression *example inside a string or docstring* (like the ones
above) is never treated as a real suppression.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.analysis.findings import (
    FindingsReport,
    Severity,
    finding_fingerprint,
)
from repro.errors import AnalysisError
from repro.monitoring import counters

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable(?:-file)?)\s*=\s*([A-Z0-9,\s]+?)(?:\s*--.*)?$"
)


@dataclass(frozen=True)
class SuppressionComment:
    """One parsed ``# reprolint: disable[...]`` comment."""

    line: int
    kind: str  # 'line' | 'file'
    codes: frozenset[str]
    has_reason: bool


@dataclass
class ModuleInfo:
    """One parsed source module handed to every applicable rule."""

    path: str
    rel_path: str
    source: str
    tree: ast.Module
    line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    file_suppressions: set[str] = field(default_factory=set)
    suppression_comments: list[SuppressionComment] = field(
        default_factory=list
    )

    @property
    def in_package_root(self) -> bool:
        return "/" not in self.rel_path

    def top_dir(self) -> str:
        """First path segment below the lint root ('' for root files)."""
        return self.rel_path.split("/", 1)[0] if "/" in self.rel_path else ""

    _symbol_spans: list[tuple[int, int, str]] | None = None

    def qualified_symbol(self, line: int) -> str:
        """The innermost def/class enclosing ``line`` ('<module>' if none)."""
        if self._symbol_spans is None:
            spans: list[tuple[int, int, str]] = []

            def visit(node: ast.AST, prefix: str) -> None:
                for child in ast.iter_child_nodes(node):
                    if isinstance(
                        child,
                        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                    ):
                        qual = prefix + child.name
                        start = min(
                            [child.lineno]
                            + [d.lineno for d in child.decorator_list]
                        )
                        spans.append(
                            (start, child.end_lineno or child.lineno, qual)
                        )
                        visit(child, qual + ".")
                    else:
                        visit(child, prefix)

            visit(self.tree, "")
            self._symbol_spans = spans
        best = "<module>"
        best_size: int | None = None
        for start, end, qual in self._symbol_spans:
            if start <= line <= end:
                size = end - start
                if best_size is None or size < best_size:
                    best, best_size = qual, size
        return best


@dataclass(frozen=True)
class RawFinding:
    """A rule observation before suppression/severity resolution."""

    line: int
    col: int
    message: str


class LintRule:
    """Base class for reprolint rules.

    Subclasses set ``code``, ``name``, ``description`` and
    ``default_severity``, and implement :meth:`check`. Path scoping is
    declarative: ``only_dirs`` restricts a rule to top-level package
    directories, ``only_files`` to specific package-relative paths
    (matched by full relative path, or by basename so linting a single
    file directly still applies the rule), and ``exempt_files`` lists
    package-relative paths the rule never applies to.
    """

    code: str = ""
    name: str = ""
    description: str = ""
    default_severity: Severity = Severity.ERROR
    only_dirs: tuple[str, ...] | None = None
    only_files: tuple[str, ...] | None = None
    exempt_files: tuple[str, ...] = ()

    def applies_to(self, module: ModuleInfo) -> bool:
        if module.rel_path in self.exempt_files:
            return False
        if self.only_files is not None:
            basenames = {path.rsplit("/", 1)[-1] for path in self.only_files}
            return (
                module.rel_path in self.only_files
                or module.rel_path in basenames
            )
        if self.only_dirs is not None:
            return module.top_dir() in self.only_dirs
        return True

    def check(self, module: ModuleInfo) -> Iterable[RawFinding]:
        raise NotImplementedError


class ProjectRule(LintRule):
    """A rule that needs the whole-project dataflow model.

    Project rules run after every module is parsed, against the
    :class:`repro.analysis.dataflow.Project` built from all of them
    (call graph, taint summaries). They yield ``(rel_path, finding)``
    pairs instead of per-module findings; path scoping via
    ``applies_to`` is still honoured on the module each finding lands
    in, and suppressions work exactly as for per-module rules.
    """

    def check(self, module: ModuleInfo) -> Iterable[RawFinding]:
        return ()

    def check_project(
        self, project, modules: dict[str, ModuleInfo]
    ) -> Iterable[tuple[str, RawFinding]]:
        raise NotImplementedError


_REGISTRY: dict[str, type[LintRule]] = {}


def lint_rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator registering a rule under its ``code``."""
    if not cls.code:
        raise AnalysisError(f"rule {cls.__name__} has no code")
    if cls.code in _REGISTRY:
        raise AnalysisError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> list[type[LintRule]]:
    """Registered rule classes, ordered by code."""
    _ensure_rules_loaded()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> type[LintRule]:
    _ensure_rules_loaded()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise AnalysisError(
            f"unknown rule {code!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def _ensure_rules_loaded() -> None:
    # The built-in rules self-register on import; keep the import here
    # so ``lint`` stays importable from ``rules`` without a cycle.
    import repro.analysis.rules  # noqa: F401  (registration side effect)


# -- discovery & parsing ----------------------------------------------------


def iter_python_files(paths: Iterable[str]) -> Iterator[tuple[str, str]]:
    """Yield (absolute_path, rel_path) for every ``.py`` under ``paths``."""
    for root in paths:
        root = os.path.abspath(root)
        if os.path.isfile(root):
            yield root, os.path.basename(root)
            continue
        if not os.path.isdir(root):
            raise AnalysisError(f"lint path does not exist: {root}")
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                full = os.path.join(dirpath, filename)
                yield full, os.path.relpath(full, root).replace(os.sep, "/")


def _parse_suppressions(
    source: str,
) -> tuple[dict[int, set[str]], set[str], list[SuppressionComment]]:
    """Extract suppression comments via :mod:`tokenize`.

    Only real COMMENT tokens count — a suppression spelled inside a
    string or docstring is documentation, not a directive.
    """
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    comments: list[SuppressionComment] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            codes = {
                c.strip() for c in match.group(2).split(",") if c.strip()
            }
            if not codes:
                continue
            lineno = token.start[0]
            has_reason = "--" in token.string
            if match.group(1) == "disable-file":
                per_file |= codes
                comments.append(
                    SuppressionComment(
                        lineno, "file", frozenset(codes), has_reason
                    )
                )
            else:
                per_line.setdefault(lineno, set()).update(codes)
                comments.append(
                    SuppressionComment(
                        lineno, "line", frozenset(codes), has_reason
                    )
                )
    except tokenize.TokenError:  # pragma: no cover — ast.parse ran first
        pass
    return per_line, per_file, comments


def load_module(path: str, rel_path: str) -> ModuleInfo:
    """Read and parse one module, including its suppression comments."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        raise AnalysisError(f"cannot parse {path}: {error}") from error
    per_line, per_file, comments = _parse_suppressions(source)
    return ModuleInfo(
        path, rel_path, source, tree, per_line, per_file, comments
    )


# -- the run ----------------------------------------------------------------


@dataclass(frozen=True)
class _Pending:
    """A finding awaiting symbol resolution and fingerprinting."""

    code: str
    severity: Severity
    message: str
    rel_path: str
    line: int
    col: int


def run_lint(
    paths: Iterable[str] | str,
    select: Iterable[str] | None = None,
    severity_overrides: dict[str, Severity] | None = None,
) -> FindingsReport:
    """Lint every ``.py`` file under ``paths`` with the registered rules.

    ``select`` restricts the run to the given rule codes;
    ``severity_overrides`` maps rule codes to severities replacing each
    rule's default. Suppressed findings are counted but not reported.

    Per-module rules run first, file by file; :class:`ProjectRule`
    subclasses then run once against the whole-project dataflow model.
    On full runs (no ``select``), suppression comments that silenced
    nothing are reported as REP016 — a selective run leaves most rules
    un-run, so unused-ness cannot be judged there.
    """
    if isinstance(paths, str):
        paths = [paths]
    overrides = severity_overrides or {}
    for code in overrides:
        get_rule(code)  # validate early
    if select is not None:
        rules = [get_rule(code)() for code in select]
    else:
        rules = [cls() for cls in all_rules()]

    report = FindingsReport(tool="reprolint")
    modules: dict[str, ModuleInfo] = {}
    for path, rel_path in iter_python_files(paths):
        modules[rel_path] = load_module(path, rel_path)
        report.items_checked += 1
        counters.increment("analysis.lint.files_scanned")

    # (rel_path, line-or-None-for-file-level, code) of suppressions
    # that actually silenced a finding this run.
    used_suppressions: set[tuple[str, int | None, str]] = set()
    pending: list[_Pending] = []

    def record(rule: LintRule, module: ModuleInfo, raw: RawFinding) -> None:
        if rule.code in module.line_suppressions.get(raw.line, set()):
            used_suppressions.add((module.rel_path, raw.line, rule.code))
            report.suppressed += 1
            counters.increment("analysis.lint.suppressed")
            return
        if rule.code in module.file_suppressions:
            used_suppressions.add((module.rel_path, None, rule.code))
            report.suppressed += 1
            counters.increment("analysis.lint.suppressed")
            return
        pending.append(
            _Pending(
                rule.code,
                overrides.get(rule.code, rule.default_severity),
                raw.message,
                module.rel_path,
                raw.line,
                raw.col,
            )
        )
        counters.increment("analysis.lint.findings")

    module_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    for module in modules.values():
        for rule in module_rules:
            if not rule.applies_to(module):
                continue
            for raw in rule.check(module):
                record(rule, module, raw)

    if project_rules:
        from repro.analysis.dataflow import Project

        project = Project(
            (m.rel_path, m.tree) for m in modules.values()
        )
        for rule in project_rules:
            for rel_path, raw in rule.check_project(project, modules):
                module = modules.get(rel_path)
                if module is None or not rule.applies_to(module):
                    continue
                record(rule, module, raw)

    if select is None:
        hygiene = get_rule("REP016")()
        for module in modules.values():
            for comment in module.suppression_comments:
                line_key = comment.line if comment.kind == "line" else None
                for code in sorted(comment.codes):
                    if (module.rel_path, line_key, code) in used_suppressions:
                        continue
                    scope = (
                        "file-level suppression"
                        if comment.kind == "file"
                        else "suppression"
                    )
                    record(
                        hygiene,
                        module,
                        RawFinding(
                            comment.line,
                            0,
                            f"{scope} for {code} matches no finding; "
                            "delete the stale comment",
                        ),
                    )

    # Resolve symbols and occurrence-stable fingerprints in source
    # order so fingerprints do not depend on rule execution order.
    pending.sort(key=lambda p: (p.rel_path, p.line, p.col, p.code))
    occurrence: dict[tuple[str, str, str], int] = {}
    for item in pending:
        symbol = modules[item.rel_path].qualified_symbol(item.line)
        key = (item.code, item.rel_path, symbol)
        index = occurrence.get(key, 0)
        occurrence[key] = index + 1
        report.add(
            item.code,
            item.severity,
            item.message,
            where=f"{item.rel_path}:{item.line}:{item.col}",
            symbol=symbol,
            fingerprint=finding_fingerprint(
                item.code, item.rel_path, symbol, index
            ),
        )
    report.findings.sort(key=lambda f: (f.where, f.code))
    return report
