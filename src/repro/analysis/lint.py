"""The ``reprolint`` engine: rule registry, suppressions, file walking.

Rules are small classes registered with :func:`lint_rule`; each one
inspects a parsed module (:class:`ModuleInfo`) and yields raw findings.
The engine handles everything rule-independent: discovering ``.py``
files, parsing, inline suppressions, severity overrides and assembling
the :class:`~repro.analysis.findings.FindingsReport`.

Suppressions are source comments::

    raise AttributeError(...)  # reprolint: disable=REP001 -- why it is ok
    # reprolint: disable-file=REP005 -- whole-module opt-out

A line-level ``disable`` silences the listed codes on that line only; a
``disable-file`` silences them for the whole module. The ``-- reason``
trailer is encouraged (and what code review should look for) but not
enforced by the engine.
"""

from __future__ import annotations

import ast
import os
import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.analysis.findings import FindingsReport, Severity
from repro.errors import AnalysisError
from repro.monitoring import counters

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable(?:-file)?)\s*=\s*([A-Z0-9,\s]+?)(?:\s*--.*)?$"
)



@dataclass
class ModuleInfo:
    """One parsed source module handed to every applicable rule."""

    path: str
    rel_path: str
    source: str
    tree: ast.Module
    line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    file_suppressions: set[str] = field(default_factory=set)

    @property
    def in_package_root(self) -> bool:
        return "/" not in self.rel_path

    def top_dir(self) -> str:
        """First path segment below the lint root ('' for root files)."""
        return self.rel_path.split("/", 1)[0] if "/" in self.rel_path else ""


@dataclass(frozen=True)
class RawFinding:
    """A rule observation before suppression/severity resolution."""

    line: int
    col: int
    message: str


class LintRule:
    """Base class for reprolint rules.

    Subclasses set ``code``, ``name``, ``description`` and
    ``default_severity``, and implement :meth:`check`. Path scoping is
    declarative: ``only_dirs`` restricts a rule to top-level package
    directories, ``only_files`` to specific package-relative paths
    (matched by full relative path, or by basename so linting a single
    file directly still applies the rule), and ``exempt_files`` lists
    package-relative paths the rule never applies to.
    """

    code: str = ""
    name: str = ""
    description: str = ""
    default_severity: Severity = Severity.ERROR
    only_dirs: tuple[str, ...] | None = None
    only_files: tuple[str, ...] | None = None
    exempt_files: tuple[str, ...] = ()

    def applies_to(self, module: ModuleInfo) -> bool:
        if module.rel_path in self.exempt_files:
            return False
        if self.only_files is not None:
            basenames = {path.rsplit("/", 1)[-1] for path in self.only_files}
            return (
                module.rel_path in self.only_files
                or module.rel_path in basenames
            )
        if self.only_dirs is not None:
            return module.top_dir() in self.only_dirs
        return True

    def check(self, module: ModuleInfo) -> Iterable[RawFinding]:
        raise NotImplementedError


_REGISTRY: dict[str, type[LintRule]] = {}


def lint_rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator registering a rule under its ``code``."""
    if not cls.code:
        raise AnalysisError(f"rule {cls.__name__} has no code")
    if cls.code in _REGISTRY:
        raise AnalysisError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> list[type[LintRule]]:
    """Registered rule classes, ordered by code."""
    _ensure_rules_loaded()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> type[LintRule]:
    _ensure_rules_loaded()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise AnalysisError(
            f"unknown rule {code!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def _ensure_rules_loaded() -> None:
    # The built-in rules self-register on import; keep the import here
    # so ``lint`` stays importable from ``rules`` without a cycle.
    import repro.analysis.rules  # noqa: F401  (registration side effect)


# -- discovery & parsing ----------------------------------------------------


def iter_python_files(paths: Iterable[str]) -> Iterator[tuple[str, str]]:
    """Yield (absolute_path, rel_path) for every ``.py`` under ``paths``."""
    for root in paths:
        root = os.path.abspath(root)
        if os.path.isfile(root):
            yield root, os.path.basename(root)
            continue
        if not os.path.isdir(root):
            raise AnalysisError(f"lint path does not exist: {root}")
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                full = os.path.join(dirpath, filename)
                yield full, os.path.relpath(full, root).replace(os.sep, "/")


def _parse_suppressions(
    source: str,
) -> tuple[dict[int, set[str]], set[str]]:
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = {c.strip() for c in match.group(2).split(",") if c.strip()}
        if match.group(1) == "disable-file":
            per_file |= codes
        else:
            per_line.setdefault(lineno, set()).update(codes)
    return per_line, per_file


def load_module(path: str, rel_path: str) -> ModuleInfo:
    """Read and parse one module, including its suppression comments."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        raise AnalysisError(f"cannot parse {path}: {error}") from error
    per_line, per_file = _parse_suppressions(source)
    return ModuleInfo(path, rel_path, source, tree, per_line, per_file)


# -- the run ----------------------------------------------------------------


def run_lint(
    paths: Iterable[str] | str,
    select: Iterable[str] | None = None,
    severity_overrides: dict[str, Severity] | None = None,
) -> FindingsReport:
    """Lint every ``.py`` file under ``paths`` with the registered rules.

    ``select`` restricts the run to the given rule codes;
    ``severity_overrides`` maps rule codes to severities replacing each
    rule's default. Suppressed findings are counted but not reported.
    """
    if isinstance(paths, str):
        paths = [paths]
    overrides = severity_overrides or {}
    for code in overrides:
        get_rule(code)  # validate early
    if select is not None:
        rules = [get_rule(code)() for code in select]
    else:
        rules = [cls() for cls in all_rules()]

    report = FindingsReport(tool="reprolint")
    for path, rel_path in iter_python_files(paths):
        module = load_module(path, rel_path)
        report.items_checked += 1
        counters.increment("analysis.lint.files_scanned")
        for rule in rules:
            if not rule.applies_to(module):
                continue
            severity = overrides.get(rule.code, rule.default_severity)
            for raw in rule.check(module):
                suppressed_here = module.line_suppressions.get(
                    raw.line, set()
                )
                if (
                    rule.code in suppressed_here
                    or rule.code in module.file_suppressions
                ):
                    report.suppressed += 1
                    counters.increment("analysis.lint.suppressed")
                    continue
                report.add(
                    rule.code,
                    severity,
                    raw.message,
                    where=f"{rel_path}:{raw.line}:{raw.col}",
                )
                counters.increment("analysis.lint.findings")
    report.findings.sort(key=lambda f: (f.where, f.code))
    return report
