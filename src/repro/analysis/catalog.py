"""The invariant & rule catalog: every code the tooling can emit.

One authoritative table mapping each ``REP``/``FSCK`` code to what it
checks and why the invariant matters. The CLI renders it for
``repro lint --list-rules`` / ``repro fsck --list-checks`` and the
"Invariant catalog" section of DESIGN.md mirrors it; tests assert the
two stay in sync with what the tools actually emit.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CatalogEntry:
    """One checkable invariant or convention."""

    code: str
    name: str
    summary: str
    rationale: str


LINT_CATALOG: tuple[CatalogEntry, ...] = (
    CatalogEntry(
        "REP001",
        "raise-outside-hierarchy",
        "every raise uses the repro.errors hierarchy "
        "(NotImplementedError allowed for abstract interfaces)",
        "callers rely on `except ReproError` as the single error "
        "boundary; a stray ValueError escapes it",
    ),
    CatalogEntry(
        "REP002",
        "broad-except",
        "no bare except / except Exception outside cli.py",
        "blanket handlers swallow corruption signals the storage layer "
        "deliberately raises",
    ),
    CatalogEntry(
        "REP003",
        "direct-codec-import",
        "codec entry points resolved only via repro.compress.registry "
        "outside compress/",
        "the registry round-trip tests cover exactly the registered "
        "codecs; direct imports create untested compression paths",
    ),
    CatalogEntry(
        "REP004",
        "private-mutation",
        "no assignment to _-prefixed attributes of another module's "
        "objects",
        "ColumnChunk/Dictionary constructors validate sortedness and "
        "ranges; out-of-module mutation bypasses those checks",
    ),
    CatalogEntry(
        "REP005",
        "missing-annotations",
        "public functions in storage/, core/ and formats/ are fully "
        "type-annotated",
        "the storage API is the contract every optimization PR builds "
        "on; annotations keep it reviewable",
    ),
    CatalogEntry(
        "REP006",
        "print-in-library",
        "no print() in library code (cli.py exempt)",
        "library output goes through repro.monitoring so deployments "
        "control reporting",
    ),
    CatalogEntry(
        "REP007",
        "chunk-partial-mutates-self",
        "chunk_partial implementations never assign through self or "
        "call mutating container methods on self attributes",
        "the parallel executor runs chunk_partial concurrently across "
        "worker threads; mutable aggregator state is only safe in "
        "apply() on the merge thread",
    ),
    CatalogEntry(
        "REP008",
        "ad-hoc-retry",
        "no sleep() calls or except-then-continue retry loops outside "
        "distributed/faults.py",
        "delays and retries are simulated deterministically through "
        "the fault layer's backoff_delay/dispatch helpers; a real "
        "sleep or hand-rolled retry loop breaks reproducibility and "
        "hides failure accounting",
    ),
    CatalogEntry(
        "REP009",
        "scalar-import-loop",
        "no per-row .values loops or per-id .value(gid) calls inside "
        "loops in the hot import modules (partition/codes.py, "
        "storage/trie.py, storage/subdict.py)",
        "import throughput rests on the bulk kernels (factorize_list, "
        "the bulk trie builder, batched global_ids); a per-row Python "
        "loop silently reintroduces the scalar pipeline, and deliberate "
        "fallbacks must carry a justified suppression",
    ),
    CatalogEntry(
        "REP010",
        "per-byte-codec-loop",
        "no per-index buffer walks (cursor-advancing while loops or "
        "for-range loops subscripting with the loop variable) in "
        "repro/compress/* outside reference.py",
        "codec throughput rests on the numpy bulk kernels; a per-byte "
        "Python loop silently reintroduces the scalar path the frozen "
        "oracle in compress/reference.py exists to check against, and "
        "deliberate scalar loops must carry a justified suppression",
    ),
    CatalogEntry(
        "REP011",
        "executor-capture-mutation",
        "callables submitted to map_ordered / dispatch_sub_query never "
        "write through closed-over state and never capture module-level "
        "mutable bindings",
        "worker-side writes to shared objects are racy under threads "
        "and silently lost under processes; results must flow back as "
        "return values folded in on the merge thread",
    ),
    CatalogEntry(
        "REP012",
        "chunk-partial-transitive-impurity",
        "every project function reachable from a chunk_partial "
        "implementation is free of writes to self, module globals and "
        "module-level registries (interprocedural REP007)",
        "chunk_partial fans out across workers; one impure helper three "
        "calls down reintroduces the shared-state race REP007 bans at "
        "the surface",
    ),
    CatalogEntry(
        "REP013",
        "unordered-merge-iteration",
        "no set iteration without sorted() in merge/serialization "
        "functions or anything they call (dict iteration is "
        "insertion-ordered and exempt)",
        "parallel execution is only bit-identical to serial if merge "
        "order and encoded bytes never depend on PYTHONHASHSEED",
    ),
    CatalogEntry(
        "REP014",
        "buffer-view-mutation",
        "no in-place numpy mutation (subscript store, augmented assign, "
        "out=, in-place methods) on arrays derived from np.frombuffer "
        "views, traced through aliases and project-function returns",
        "the shared-memory chunk arena hands every worker the same "
        "decoded bytes; an in-place store on a view corrupts other "
        "workers' reads",
    ),
    CatalogEntry(
        "REP015",
        "unpicklable-capture",
        "executor submissions capture only picklable values: no locks, "
        "pools, open files or sockets, directly or via a captured self "
        "whose class lacks __getstate__/__reduce__",
        "swapping the ThreadPool for a ProcessPool requires every "
        "capture to cross a pickle boundary; one stray lock fails the "
        "whole scan",
    ),
    CatalogEntry(
        "REP016",
        "unused-suppression",
        "every # reprolint: disable comment still suppresses at least "
        "one finding (checked on full runs)",
        "stale suppressions hide the rules they once silenced; pruning "
        "them keeps each remaining opt-out a live, justified decision",
    ),
    CatalogEntry(
        "REP017",
        "unbounded-future-wait",
        "every .result()/.join() call in core/executor.py passes a "
        "bounded timeout",
        "an unbounded wait on a dead or hung worker wedges the "
        "supervisor forever — the exact failure the supervision layer "
        "exists to survive",
    ),
    CatalogEntry(
        "REP018",
        "hardcoded-codec-name",
        "no codec-name string literals in codec-selecting positions "
        "(registry calls, codec= keywords, codec-named assignments or "
        "comparisons) outside compress/registry.py, "
        "compress/advisor.py and declared defaults (parameter defaults, "
        "module-level ALL_CAPS constants)",
        "the encoding advisor owns codec choice; a codec name inlined "
        "at a call site silently pins a layout decision the advisor "
        "can no longer revisit, and renaming a codec breaks it",
    ),
    CatalogEntry(
        "REP019",
        "unbounded-service-queue",
        "no unbounded Queue/LifoQueue/PriorityQueue (missing or "
        "non-positive maxsize), deque without maxlen, or SimpleQueue "
        "anywhere under repro/service/",
        "the serving layer's contract is admission control: overload "
        "must surface as an explicit QueryRejected at offer() time, "
        "never as silent queue growth, memory pressure and unbounded "
        "tail latency",
    ),
)

FSCK_CATALOG: tuple[CatalogEntry, ...] = (
    CatalogEntry(
        "FSCK001",
        "global-dict-unsorted",
        "global dictionary values strictly ascending, NULL first",
        "global-ids are ranks; range restrictions map to id intervals "
        "only while the payload is sorted",
    ),
    CatalogEntry(
        "FSCK002",
        "global-dict-bijection",
        "value(gid) and global_id(value) are inverse for every id",
        "restriction compilation looks values up by id and ids up by "
        "value; a broken bijection misroutes both",
    ),
    CatalogEntry(
        "FSCK003",
        "chunk-dict-unsorted",
        "chunk-dictionaries strictly ascending",
        "chunk-id lookups binary-search the chunk-dictionary",
    ),
    CatalogEntry(
        "FSCK004",
        "chunk-dict-subset",
        "every chunk-dictionary entry is a valid global-id",
        "dereferencing an out-of-range global-id reads past the global "
        "dictionary",
    ),
    CatalogEntry(
        "FSCK005",
        "element-range",
        "element chunk-ids all fall in [0, n_distinct)",
        "the group-by inner loop indexes counts[elements[row]] without "
        "bounds checks",
    ),
    CatalogEntry(
        "FSCK006",
        "stale-bounds",
        "every chunk-dictionary slot is referenced by some row "
        "(min/max global-id reflect actual contents)",
        "chunk skipping trusts min/max; stale bounds make the engine "
        "scan (or worse, skip) the wrong chunks",
    ),
    CatalogEntry(
        "FSCK007",
        "row-count-mismatch",
        "per-chunk element row counts, the store header and the chunk "
        "count all agree",
        "aggregation merges partials positionally across fields of one "
        "chunk",
    ),
    CatalogEntry(
        "FSCK008",
        "partition-overlap",
        "first-partition-field global-id ranges of any two chunks are "
        "disjoint or the same single value",
        "composite range partitioning guarantees it; restriction "
        "skipping on partition fields assumes it",
    ),
    CatalogEntry(
        "FSCK009",
        "serde-roundtrip",
        "every dictionary, chunk-dictionary and elements array "
        "round-trips bit-exactly through the serde layer",
        "stores are persisted and reloaded; a lossy encoding corrupts "
        "data at rest",
    ),
    CatalogEntry(
        "FSCK010",
        "serde-parse",
        "the store file parses and passes its checksum",
        "truncated or bit-flipped files must fail loudly, never load "
        "as wrong data",
    ),
    CatalogEntry(
        "FSCK011",
        "arena-consistency",
        "a store's chunk arena round-trips bit-exactly: dictionaries, "
        "chunk-dictionaries and elements attached from the arena match "
        "the originals, and the layout has no overlapping or "
        "misaligned spans",
        "process workers answer queries from arena views; a divergent "
        "arena silently returns wrong results in parallel only",
    ),
    CatalogEntry(
        "FSCK012",
        "codec-choice-invalid",
        "every advisor-recorded field codec resolves in the registry "
        "and round-trips that field's serialized section byte-exactly",
        "save_store compresses field sections with the recorded codec; "
        "a stale name or lossy pipeline makes the saved store "
        "unreadable or silently wrong on reload",
    ),
)


def lint_codes() -> set[str]:
    return {entry.code for entry in LINT_CATALOG}


def fsck_codes() -> set[str]:
    return {entry.code for entry in FSCK_CATALOG}


def render_catalog(entries: tuple[CatalogEntry, ...]) -> str:
    """Human-readable catalog listing for the CLI."""
    lines = []
    for entry in entries:
        lines.append(f"{entry.code}  {entry.name}")
        lines.append(f"    checks:  {entry.summary}")
        lines.append(f"    because: {entry.rationale}")
    return "\n".join(lines)
