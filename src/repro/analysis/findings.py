"""The findings model shared by ``reprolint`` and ``fsck``.

Both tools report *findings* — typed, coded observations — instead of
raising on the first problem, so one run surfaces everything wrong and
callers (CLI, CI gates, tests) decide how to react. A finding carries a
stable code (``REP001``/``FSCK004``), a severity, a human message and a
location string (``path.py:12:3`` for lint, ``field 'country' chunk 7``
for fsck).
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import AnalysisError


def finding_fingerprint(
    code: str, rel_path: str, symbol: str, occurrence: int
) -> str:
    """A stable, line-independent identity for one finding.

    Hashes (rule code, package-relative path, qualified symbol,
    occurrence index within that triple). Moving a function inside a
    file — or the code above it growing — does not change the
    fingerprint, so CI can diff JSON runs across commits; renaming the
    symbol or adding a second same-rule finding inside it does.
    """
    payload = f"{code}\x00{rel_path}\x00{symbol}\x00{occurrence}"
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:12]


class Severity(enum.IntEnum):
    """Ordered severity levels; comparisons follow the int order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.strip().upper()]
        except KeyError:
            raise AnalysisError(
                f"unknown severity {name!r}; expected one of "
                f"{', '.join(s.name.lower() for s in cls)}"
            ) from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One coded observation from a lint or fsck run."""

    code: str
    severity: Severity
    message: str
    where: str = ""
    symbol: str = ""
    fingerprint: str = ""

    def render(self) -> str:
        location = f"{self.where}: " if self.where else ""
        return f"{location}{self.code} [{self.severity}] {self.message}"

    def to_dict(self) -> dict:
        payload = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "where": self.where,
        }
        if self.symbol:
            payload["symbol"] = self.symbol
        if self.fingerprint:
            payload["fingerprint"] = self.fingerprint
        return payload


@dataclass
class FindingsReport:
    """An ordered collection of findings plus run metadata."""

    tool: str
    findings: list[Finding] = field(default_factory=list)
    items_checked: int = 0
    suppressed: int = 0

    def add(
        self,
        code: str,
        severity: Severity,
        message: str,
        where: str = "",
        symbol: str = "",
        fingerprint: str = "",
    ) -> Finding:
        finding = Finding(code, severity, message, where, symbol, fingerprint)
        self.findings.append(finding)
        return finding

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)

    @property
    def ok(self) -> bool:
        """Whether the run is clean (no findings at any severity)."""
        return not self.findings

    @property
    def has_errors(self) -> bool:
        return any(f.severity >= Severity.ERROR for f in self.findings)

    def codes(self) -> set[str]:
        return {f.code for f in self.findings}

    def by_code(self, code: str) -> list[Finding]:
        return [f for f in self.findings if f.code == code]

    def counts_by_severity(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            key = str(finding.severity)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def summary(self) -> str:
        if self.ok:
            return (
                f"{self.tool}: clean — {self.items_checked} item(s) checked"
                + (f", {self.suppressed} suppressed" if self.suppressed else "")
            )
        counts = self.counts_by_severity()
        parts = ", ".join(f"{n} {sev}" for sev, n in sorted(counts.items()))
        return (
            f"{self.tool}: {len(self.findings)} finding(s) ({parts}) over "
            f"{self.items_checked} item(s)"
            + (f", {self.suppressed} suppressed" if self.suppressed else "")
        )

    def to_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "tool": self.tool,
                "ok": self.ok,
                "items_checked": self.items_checked,
                "suppressed": self.suppressed,
                "findings": [finding.to_dict() for finding in self.findings],
            },
            indent=2,
            sort_keys=True,
        )
