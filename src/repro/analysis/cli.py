"""CLI surface for the analysis tooling: ``repro lint`` / ``repro fsck``.

Both commands print a findings report (text or JSON) and exit non-zero
when findings are present, so they can gate CI directly. ``repro-lint``
is also installed as a standalone console script.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis.catalog import (
    FSCK_CATALOG,
    LINT_CATALOG,
    render_catalog,
)
from repro.analysis.findings import FindingsReport, Severity
from repro.analysis.fsck import fsck_file
from repro.analysis.lint import run_lint
from repro.errors import ReproError


def _parse_severity_overrides(pairs: list[str]) -> dict[str, Severity]:
    overrides: dict[str, Severity] = {}
    for pair in pairs:
        code, __, level = pair.partition("=")
        if not level:
            raise ReproError(
                f"bad --severity {pair!r}; expected CODE=LEVEL "
                "(e.g. REP005=warning)"
            )
        overrides[code.strip()] = Severity.parse(level)
    return overrides


def _emit(report: FindingsReport, fmt: str) -> int:
    if fmt == "json":
        print(report.to_json())
    else:
        print(report.to_text())
    return 1 if report.findings else 0


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(render_catalog(LINT_CATALOG))
        return 0
    fmt = "json" if getattr(args, "json", False) else args.format
    report = run_lint(
        args.paths,
        select=args.select or None,
        severity_overrides=_parse_severity_overrides(args.severity),
    )
    return _emit(report, fmt)


def _print_codec_choices(path: str) -> None:
    """Best-effort advisor-choice listing for the text fsck report."""
    from repro.storage.serde import load_store

    try:
        store = load_store(path)
    except ReproError:
        return  # the findings report already covers unreadable stores
    lines = []
    for name, field in sorted(store.fields.items()):
        if field.virtual or field.codec is None:
            continue
        choice = field.codec_choice or {}
        ratio = choice.get("actual_ratio")
        detail = (
            f" (ratio {ratio:.2f}, {choice.get('mode', '?')} mode)"
            if isinstance(ratio, (int, float))
            else ""
        )
        lines.append(f"  {name}: {field.codec}{detail}")
    if lines:
        print("advisor codec choices:")
        print("\n".join(lines))


def cmd_fsck(args: argparse.Namespace) -> int:
    if args.list_checks:
        print(render_catalog(FSCK_CATALOG))
        return 0
    if args.store is None:
        raise ReproError("fsck needs a store file (or --list-checks)")
    report = fsck_file(args.store, check_serde=not args.no_serde)
    status = _emit(report, args.format)
    if args.format == "text":
        _print_codec_choices(args.store)
    return status


def configure_lint_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="shorthand for --format json (machine-readable findings "
        "with stable fingerprints for CI diffing)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="CODE",
        help="run only the given rule (repeatable)",
    )
    parser.add_argument(
        "--severity",
        action="append",
        default=[],
        metavar="CODE=LEVEL",
        help="override a rule's severity, e.g. REP005=warning (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    parser.set_defaults(func=cmd_lint)


def configure_fsck_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "store", nargs="?", default=None, help="store file (.pds)"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    parser.add_argument(
        "--no-serde",
        action="store_true",
        help="skip the per-chunk serde round-trip checks",
    )
    parser.add_argument(
        "--list-checks", action="store_true", help="print the check catalog"
    )
    parser.set_defaults(func=cmd_fsck)


def lint_main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-lint`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="reprolint — the repo-specific static analyzer",
    )
    configure_lint_parser(parser)
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Pager/head closed the pipe early; exit quietly (see
        # repro.cli.main for the dup2 rationale).
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 1


if __name__ == "__main__":
    sys.exit(lint_main())
