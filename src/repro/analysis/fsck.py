"""``fsck`` — structural-integrity checking for datastores.

Walks a :class:`~repro.core.datastore.DataStore` (or a ``.pds`` file)
and verifies the invariant catalog the query engine silently relies
on: global dictionaries are sorted bijections, chunk-dictionaries are
sorted subsets of the global dictionary, elements index into their
chunk-dictionary, chunk value bounds reflect actual contents,
partition code ranges do not overlap across chunks, row counts agree
everywhere, every chunk round-trips through the serde layer, and any
advisor-recorded codec resolves in the registry and round-trips its
field's serialized section byte-exactly.

Every violated invariant becomes a :class:`~repro.analysis.findings.
Finding` with a stable ``FSCK0xx`` code (see
:mod:`repro.analysis.catalog`); the checker never raises on corrupt
data — one run reports everything wrong with a store.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.analysis.findings import FindingsReport, Severity
from repro.core.datastore import DataStore, FieldStore
from repro.errors import ReproError
from repro.monitoring import counters
from repro.storage import serde
from repro.storage.chunk import ColumnChunk

#: Cap on exhaustive per-gid dictionary bijection checks; larger
#: dictionaries are strided so fsck stays usable on big stores.
_MAX_BIJECTION_PROBES = 10_000


def _null_safe_key(value: Any) -> Any:
    if isinstance(value, tuple):
        return tuple(_null_safe_key(v) for v in value)
    return (value is not None, value)


def _check(report: FindingsReport, name: str) -> None:
    report.items_checked += 1
    counters.increment("analysis.fsck.checks_run")


def _finding(
    report: FindingsReport, code: str, message: str, where: str
) -> None:
    report.add(code, Severity.ERROR, message, where)
    counters.increment("analysis.fsck.findings")


# -- dictionary invariants --------------------------------------------------


def _check_dictionary(report: FindingsReport, field: FieldStore) -> None:
    where = f"field {field.name!r} dictionary"
    dictionary = field.dictionary

    _check(report, "dict-sorted")
    try:
        values = dictionary.values()
    except ReproError as error:
        _finding(
            report,
            "FSCK001",
            f"dictionary cannot enumerate its values: {error}",
            where,
        )
        return
    if dictionary.has_null and (not values or values[0] is not None):
        _finding(
            report,
            "FSCK001",
            "has_null dictionary does not place NULL at global-id 0",
            where,
        )
    non_null = values[1:] if dictionary.has_null else values
    offset = 1 if dictionary.has_null else 0
    try:
        keys = [_null_safe_key(v) for v in non_null]
        for index in range(len(keys) - 1):
            if keys[index] >= keys[index + 1]:
                _finding(
                    report,
                    "FSCK001",
                    f"dictionary values not strictly ascending at "
                    f"global-id {index + offset}: {non_null[index]!r} >= "
                    f"{non_null[index + 1]!r}",
                    where,
                )
                break
    except TypeError as error:
        _finding(
            report,
            "FSCK001",
            f"dictionary values are not mutually orderable: {error}",
            where,
        )

    _check(report, "dict-bijection")
    n = len(dictionary)
    stride = max(1, n // _MAX_BIJECTION_PROBES)
    for gid in range(0, n, stride):
        try:
            round_trip = dictionary.global_id(values[gid])
        except ReproError as error:
            _finding(
                report,
                "FSCK002",
                f"global_id lookup of value {values[gid]!r} failed: {error}",
                where,
            )
            break
        if round_trip != gid:
            _finding(
                report,
                "FSCK002",
                f"value {values[gid]!r} at global-id {gid} resolves back "
                f"to {round_trip}; the id<->value mapping is not a "
                "bijection",
                where,
            )
            break


# -- chunk invariants -------------------------------------------------------


def _check_chunk(
    report: FindingsReport,
    field: FieldStore,
    chunk_index: int,
    chunk: ColumnChunk,
    n_global: int,
    expected_rows: int,
) -> None:
    where = f"field {field.name!r} chunk {chunk_index}"
    chunk_dict = chunk.chunk_dict

    _check(report, "chunk-dict-sorted")
    if chunk_dict.size > 1 and not np.all(chunk_dict[:-1] < chunk_dict[1:]):
        position = int(np.argmax(chunk_dict[:-1] >= chunk_dict[1:]))
        _finding(
            report,
            "FSCK003",
            f"chunk-dictionary not strictly ascending at slot {position} "
            f"({int(chunk_dict[position])} >= {int(chunk_dict[position + 1])})",
            where,
        )

    _check(report, "chunk-dict-subset")
    if chunk_dict.size and int(chunk_dict.max()) >= n_global:
        _finding(
            report,
            "FSCK004",
            f"chunk-dictionary refers to global-id {int(chunk_dict.max())} "
            f"but the global dictionary has only {n_global} entries",
            where,
        )

    _check(report, "element-range")
    elements = chunk.elements.as_array()
    if elements.size and chunk_dict.size == 0:
        _finding(
            report,
            "FSCK005",
            f"{elements.size} element row(s) but an empty chunk-dictionary",
            where,
        )
    elif elements.size and int(elements.max()) >= chunk_dict.size:
        _finding(
            report,
            "FSCK005",
            f"element chunk-id {int(elements.max())} out of range "
            f"[0, {chunk_dict.size})",
            where,
        )
    else:
        _check(report, "chunk-bounds")
        if chunk_dict.size:
            used = np.bincount(elements, minlength=chunk_dict.size)
            unused = np.flatnonzero(used == 0)
            if unused.size:
                slot = int(unused[0])
                edge_slots = {0, int(chunk_dict.size) - 1}
                edge = (
                    " (min/max global-id bounds are stale)"
                    if edge_slots & set(unused.tolist())
                    else ""
                )
                _finding(
                    report,
                    "FSCK006",
                    f"chunk-dictionary slot {slot} (global-id "
                    f"{int(chunk_dict[slot])}) is referenced by no row; "
                    f"{unused.size} unused slot(s){edge}",
                    where,
                )

    _check(report, "row-count")
    if chunk.elements.n_rows != expected_rows:
        _finding(
            report,
            "FSCK007",
            f"elements hold {chunk.elements.n_rows} rows, store header "
            f"says {expected_rows}",
            where,
        )
    elif elements.size != expected_rows:
        _finding(
            report,
            "FSCK007",
            f"elements decode to {elements.size} rows, header says "
            f"{expected_rows}",
            where,
        )


# -- partition invariants ---------------------------------------------------


def _check_partition_codes(report: FindingsReport, store: DataStore) -> None:
    """Composite range partitioning invariant (FSCK008).

    Splits on the first partition field produce disjoint global-id
    ranges; chunks split on deeper fields inherit a single-valued
    first-field range. So any two chunks' [min, max] intervals on the
    first partition field are either disjoint or the same single point.
    """
    if not store.options.partition_fields:
        return
    first = store.options.partition_fields[0]
    field = store.fields.get(first)
    if field is None:
        _check(report, "partition-field")
        _finding(
            report,
            "FSCK008",
            f"partition field {first!r} is missing from the store",
            f"field {first!r}",
        )
        return
    _check(report, "partition-ranges")
    intervals = []
    for index, chunk in enumerate(field.chunks):
        if chunk.chunk_dict.size:
            intervals.append(
                (int(chunk.chunk_dict[0]), int(chunk.chunk_dict[-1]), index)
            )
    intervals.sort()
    for (lo_a, hi_a, idx_a), (lo_b, hi_b, idx_b) in zip(
        intervals, intervals[1:]
    ):
        if lo_b <= hi_a and not (lo_a == hi_a == lo_b == hi_b):
            _finding(
                report,
                "FSCK008",
                f"partition field {first!r}: chunks {idx_a} and {idx_b} "
                f"have overlapping global-id ranges [{lo_a}, {hi_a}] and "
                f"[{lo_b}, {hi_b}]",
                f"field {first!r}",
            )
            return


# -- serde round-trip -------------------------------------------------------


def _check_serde_dictionary(report: FindingsReport, field: FieldStore) -> None:
    where = f"field {field.name!r} dictionary"
    _check(report, "serde-dictionary")
    try:
        meta = serde.dictionary_meta(field.dictionary)
        payload = field.dictionary.to_bytes()
        decoded = serde.decode_dictionary(meta, payload)
        if decoded.values() != field.dictionary.values():
            _finding(
                report,
                "FSCK009",
                "dictionary does not round-trip through serde: decoded "
                "values differ",
                where,
            )
    except ReproError as error:
        _finding(
            report,
            "FSCK009",
            f"dictionary serde round-trip failed: {error}",
            where,
        )


def _check_serde_chunk(
    report: FindingsReport,
    field: FieldStore,
    chunk_index: int,
    chunk: ColumnChunk,
) -> None:
    where = f"field {field.name!r} chunk {chunk_index}"
    _check(report, "serde-chunk")
    try:
        encoded = serde.encode_chunk_dict(chunk.chunk_dict)
        decoded, end = serde.decode_chunk_dict(encoded, 0)
        if end != len(encoded) or not np.array_equal(decoded, chunk.chunk_dict):
            _finding(
                report,
                "FSCK009",
                "chunk-dictionary does not round-trip through serde",
                where,
            )
        encoded = serde.encode_elements(chunk.elements)
        elements, end = serde.decode_elements(encoded, 0)
        if end != len(encoded) or not np.array_equal(
            elements.as_array(), chunk.elements.as_array()
        ):
            _finding(
                report,
                "FSCK009",
                "elements do not round-trip through serde",
                where,
            )
    except ReproError as error:
        _finding(
            report, "FSCK009", f"chunk serde round-trip failed: {error}", where
        )


# -- advisor codec round-trip -----------------------------------------------


def _check_field_codec(
    report: FindingsReport, field: FieldStore, check_serde: bool
) -> None:
    """Advisor-codec invariant (FSCK012).

    A field that records an advisor-chosen codec must (a) name a codec
    that resolves in the registry, and (b) — when serde checks are on —
    round-trip its serialized section through that codec byte-exactly.
    A stale or bogus name would make the saved store unreadable, so
    fsck catches it while the store is still in memory.
    """
    from repro.compress.registry import get_codec

    if field.codec is None:
        return
    where = f"field {field.name!r} codec"
    _check(report, "codec-resolves")
    try:
        codec = get_codec(field.codec)
    except ReproError as error:
        _finding(
            report,
            "FSCK012",
            f"recorded codec {field.codec!r} does not resolve: {error}",
            where,
        )
        return
    if not check_serde:
        return
    _check(report, "codec-round-trip")
    try:
        section = serde.encode_field_section(field)
        decoded = codec.decompress(codec.compress(section))
    except ReproError as error:
        _finding(
            report,
            "FSCK012",
            f"codec {field.codec!r} failed on this field's section: {error}",
            where,
        )
        return
    if decoded != section:
        _finding(
            report,
            "FSCK012",
            f"codec {field.codec!r} does not round-trip this field's "
            f"section byte-exactly ({len(section)} bytes in, "
            f"{len(decoded)} bytes back)",
            where,
        )


# -- arena round-trip -------------------------------------------------------


def _check_arena(report: FindingsReport, store: DataStore) -> None:
    """Arena consistency invariant (FSCK011).

    Process workers answer queries from read-only arena views, so the
    arena must reproduce every original field bit-for-bit and its
    layout must keep buffers aligned and non-overlapping. Delegates to
    :func:`repro.storage.arena.verify_arena`, which round-trips the
    store through an anonymous local arena.
    """
    from repro.storage.arena import verify_arena

    _check(report, "arena-consistency")
    try:
        problems = verify_arena(store)
    except ReproError as error:
        _finding(
            report,
            "FSCK011",
            f"arena round-trip raised instead of reporting: {error}",
            "arena",
        )
        return
    for problem in problems:
        _finding(report, "FSCK011", problem, "arena")


# -- entry points -----------------------------------------------------------


def fsck_store(store: DataStore, check_serde: bool = True) -> FindingsReport:
    """Verify the full invariant catalog over an in-memory store.

    Returns a :class:`FindingsReport`; an empty report means every
    checked invariant holds. ``check_serde=False`` skips the (slower)
    per-chunk serde round-trip checks.
    """
    report = FindingsReport(tool="fsck")
    counters.increment("analysis.fsck.stores_checked")

    _check(report, "store-row-counts")
    if sum(store.chunk_row_counts) != store.n_rows:
        _finding(
            report,
            "FSCK007",
            f"chunk row counts sum to {sum(store.chunk_row_counts)}, "
            f"store claims {store.n_rows} rows",
            "store header",
        )

    for name, field in store.fields.items():
        _check(report, "field-chunk-count")
        if len(field.chunks) != store.n_chunks:
            _finding(
                report,
                "FSCK007",
                f"field has {len(field.chunks)} chunks, store has "
                f"{store.n_chunks}",
                f"field {name!r}",
            )
        _check_dictionary(report, field)
        n_global = len(field.dictionary)
        for chunk_index, chunk in enumerate(field.chunks):
            expected = (
                store.chunk_row_counts[chunk_index]
                if chunk_index < len(store.chunk_row_counts)
                else chunk.elements.n_rows
            )
            _check_chunk(report, field, chunk_index, chunk, n_global, expected)
            if check_serde and not field.virtual:
                _check_serde_chunk(report, field, chunk_index, chunk)
        if check_serde and not field.virtual:
            _check_serde_dictionary(report, field)
        if not field.virtual:
            _check_field_codec(report, field, check_serde)

    _check_partition_codes(report, store)
    if check_serde:
        _check_arena(report, store)
    report.findings.sort(key=lambda f: (f.where, f.code))
    return report


def fsck_file(path: str, check_serde: bool = True) -> FindingsReport:
    """Load a ``.pds`` store file and fsck it.

    Parse failures (truncated file, checksum mismatch, bad magic, ...)
    become ``FSCK010`` findings instead of exceptions, so corrupt files
    still produce a report.
    """
    try:
        store = serde.load_store(path)
    except ReproError as error:
        report = FindingsReport(tool="fsck", items_checked=1)
        counters.increment("analysis.fsck.stores_checked")
        _finding(
            report,
            "FSCK010",
            f"store file cannot be parsed: {error}",
            path,
        )
        return report
    except OSError as error:
        report = FindingsReport(tool="fsck", items_checked=1)
        _finding(report, "FSCK010", f"store file unreadable: {error}", path)
        return report
    return fsck_store(store, check_serde=check_serde)
