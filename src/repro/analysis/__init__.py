"""Correctness tooling: the ``reprolint`` static analyzer and ``fsck``.

The storage layer only works because a web of structural invariants
holds everywhere — per-chunk dictionaries are sorted subsets of the
global dictionary, element arrays index into their chunk dictionary,
partition code ranges are consistent with chunk contents, and codecs
round-trip bytes exactly. This package makes those invariants explicit
and checkable:

- :mod:`repro.analysis.lint` + :mod:`repro.analysis.rules` — an
  AST-based static analyzer (``reprolint``) enforcing repo conventions
  (error hierarchy, codec resolution through the registry, no private
  mutation across modules, annotations on public storage APIs, ...).
- :mod:`repro.analysis.fsck` — a runtime structural-integrity checker
  that walks a :class:`~repro.core.datastore.DataStore` (or a ``.pds``
  file) and verifies the invariant catalog, returning a typed findings
  report instead of raising on the first error.
- :mod:`repro.analysis.catalog` — the machine-readable invariant and
  rule catalog backing the docs and ``--list-rules`` output.

Both tools share the findings model of :mod:`repro.analysis.findings`
and surface through ``repro lint`` / ``repro fsck`` (see
:mod:`repro.analysis.cli`), exiting non-zero on findings so they can
gate CI.
"""

from repro.analysis.findings import Finding, FindingsReport, Severity
from repro.analysis.fsck import fsck_file, fsck_store
from repro.analysis.lint import LintRule, all_rules, get_rule, run_lint

__all__ = [
    "Finding",
    "FindingsReport",
    "LintRule",
    "Severity",
    "all_rules",
    "fsck_file",
    "fsck_store",
    "get_rule",
    "run_lint",
]
