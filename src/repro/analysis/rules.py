"""The built-in reprolint rules (REP001 — REP019).

Each rule encodes one repo convention that keeps the storage layer's
invariants enforceable:

- REP001 — raises stay inside the :mod:`repro.errors` hierarchy so
  callers can rely on ``except ReproError``.
- REP002 — no blanket ``except Exception`` that would swallow
  corruption signals.
- REP003 — codecs are resolved via :mod:`repro.compress.registry`
  only, so every codec in use is covered by the registry round-trip
  tests.
- REP004 — no cross-module mutation of ``_``-private state (chunk
  dictionaries, dictionary payloads, ...).
- REP005 — public storage/core/formats functions carry type
  annotations.
- REP006 — library code reports through :mod:`repro.monitoring`, not
  ``print``.
- REP007 — ``chunk_partial`` implementations never mutate ``self``:
  the parallel executor calls them concurrently; mutable state belongs
  in ``apply()`` on the merge thread.
- REP008 — no ``time.sleep`` and no ad-hoc retry loops outside the
  sanctioned backoff helper in :mod:`repro.distributed.faults`: delays
  and retries are *simulated* and deterministic, never slept for real.
- REP009 — the hot import modules stay vectorized: no per-row loops
  over ``column.values`` and no per-id ``.value(gid)`` calls inside
  loops there; bulk kernels (``factorize_list``, the bulk trie
  builder, ``Dictionary.global_ids``/``values()``) are the sanctioned
  replacements, and deliberate scalar fallbacks carry a justified
  suppression.
- REP010 — the codec modules stay vectorized: no per-byte index
  walks (``while`` cursor loops or ``for i in range(...)`` loops
  subscripting buffers element-by-element) in ``repro/compress/*``;
  the numpy bulk kernels are the sanctioned replacements, the frozen
  scalar oracles live in ``compress/reference.py`` (exempt), and the
  few deliberate scalar loops (greedy LZ parses, the Huffman heap
  merge) carry justified suppressions.

REP011 — REP015 are the *dataflow* rules certifying the engine
process-parallel-ready (ROADMAP item 2). They run on the whole-project
model from :mod:`repro.analysis.dataflow` — call graph, reaching
definitions, buffer taint — instead of per-node patterns:

- REP011 — callables submitted to an executor seam (``map_ordered``,
  ``dispatch_sub_query``'s ``attempt_cost``) never *write* through
  closed-over state, and never capture a module-level mutable binding:
  worker-side writes to shared objects are lost or racy the moment the
  pool is processes, not threads.
- REP012 — transitive purity: every project function reachable from a
  ``chunk_partial`` implementation is free of writes to ``self``,
  module globals and module-level registries (the interprocedural
  generalization of REP007).
- REP013 — merge determinism: functions on merge/serialization paths
  never iterate a ``set`` without an explicit ``sorted(...)`` — set
  order varies with PYTHONHASHSEED, so it must never feed merge order
  or serialized bytes. (Dict iteration is insertion-ordered and
  deterministic; it is deliberately not flagged.)
- REP014 — shared-buffer safety: no in-place numpy mutation (subscript
  stores, augmented assigns, ``out=``, in-place methods) on arrays
  derived from ``np.frombuffer`` views, traced through aliases, views
  and project-function returns — the invariant the mmap/shared-memory
  arena will require.
- REP015 — executor-submission captures restricted to known-picklable
  values: no captured locks, pools, open files or sockets (directly or
  as attributes of a captured ``self`` whose class lacks
  ``__getstate__``/``__reduce__``) — the ProcessPool precondition.

- REP016 — suppression hygiene: a ``# reprolint: disable=...`` comment
  that silences nothing is itself flagged (full runs only), so dead
  opt-outs cannot accumulate. The detection lives in the engine
  (:func:`repro.analysis.lint.run_lint`), which alone knows which
  suppressions matched.

- REP017 — bounded waits on the execution hot path: inside
  ``core/executor.py`` every ``.result()``/``.join()`` call must pass
  a timeout, so no wait can outlive the supervision deadline — an
  unbounded wait on a dead or hung worker is exactly the wedge the
  supervisor exists to survive.

- REP018 — codec choice belongs to the encoding advisor: no registered
  codec-name string literal may appear in a codec-selecting position
  (registry-call arguments, ``codec=`` keywords, assignments to or
  comparisons with ``codec``-named bindings) outside
  ``compress/registry.py``, ``compress/advisor.py`` and *declared
  defaults* — function parameter defaults and module-level ALL_CAPS
  constants, which are the sanctioned way to name a static fallback.

- REP019 — the serving layer admits by policy, not by memory: every
  queue or deque constructed under ``repro/service/`` must carry an
  explicit bound (``Queue(maxsize=n)`` with ``n > 0``,
  ``deque(maxlen=n)``), and ``SimpleQueue`` — unboundable by
  construction — is banned there outright. An unbounded buffer turns
  overload into memory growth and tail latency; the service's contract
  is an explicit ``QueryRejected`` at admission instead.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

import repro.errors as _errors
from repro.analysis import dataflow as _df
from repro.analysis.findings import Severity
from repro.analysis.lint import (
    LintRule,
    ModuleInfo,
    ProjectRule,
    RawFinding,
    lint_rule,
)

#: Exception names a library ``raise`` may use: the repro hierarchy,
#: plus NotImplementedError (the abstract-interface idiom).
ALLOWED_RAISES = {
    name
    for name, obj in vars(_errors).items()
    if isinstance(obj, type) and issubclass(obj, Exception)
} | {"NotImplementedError"}

#: Codec implementation modules whose entry points must not be imported
#: directly outside ``compress/`` — resolve through the registry instead.
CODEC_MODULES = {
    "repro.compress.zippy",
    "repro.compress.lzo_like",
    "repro.compress.huffman",
    "repro.compress.rle",
    "repro.compress.transforms",
}

#: The codec entry-point functions covered by the registry.
CODEC_FUNCTIONS = {
    "zippy_compress",
    "zippy_decompress",
    "lzo_compress",
    "lzo_decompress",
    "huffman_compress",
    "huffman_decompress",
    "rle_encode_bytes",
    "rle_decode_bytes",
    "delta_encode_bytes",
    "delta_decode_bytes",
    "wordpack_encode_bytes",
    "wordpack_decode_bytes",
    "bytedict_encode_bytes",
    "bytedict_decode_bytes",
}


def _exception_name(node: ast.expr | None) -> str | None:
    """The exception class name a ``raise``/``except`` refers to."""
    if node is None:
        return None
    if isinstance(node, ast.Call):
        return _exception_name(node.func)
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@lint_rule
class RaiseHierarchyRule(LintRule):
    """REP001: every raise must use the repro.errors hierarchy."""

    code = "REP001"
    name = "raise-outside-hierarchy"
    description = (
        "raise statements in library code must raise repro.errors "
        "classes (NotImplementedError is allowed for abstract interfaces)"
    )
    default_severity = Severity.ERROR

    def check(self, module: ModuleInfo) -> Iterable[RawFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise):
                continue
            if node.exc is None:
                continue  # bare re-raise keeps the original type
            name = _exception_name(node.exc)
            if name is None:
                yield RawFinding(
                    node.lineno,
                    node.col_offset,
                    "raise of a dynamic expression; raise a repro.errors "
                    "class directly so callers can catch ReproError",
                )
            elif name not in ALLOWED_RAISES:
                yield RawFinding(
                    node.lineno,
                    node.col_offset,
                    f"raise {name} is outside the repro.errors hierarchy; "
                    "use a ReproError subclass",
                )


@lint_rule
class BroadExceptRule(LintRule):
    """REP002: no ``except Exception`` / bare ``except`` in the library."""

    code = "REP002"
    name = "broad-except"
    description = (
        "bare except / except Exception swallow corruption signals; "
        "catch ReproError subclasses (cli.py is exempt as the top-level "
        "error boundary)"
    )
    default_severity = Severity.ERROR
    exempt_files = ("cli.py",)

    def _broad_names(self, node: ast.expr | None) -> Iterator[str]:
        if node is None:
            yield "bare except"
            return
        targets = node.elts if isinstance(node, ast.Tuple) else [node]
        for target in targets:
            name = _exception_name(target)
            if name in ("Exception", "BaseException"):
                yield f"except {name}"

    def check(self, module: ModuleInfo) -> Iterable[RawFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            for label in self._broad_names(node.type):
                yield RawFinding(
                    node.lineno,
                    node.col_offset,
                    f"{label} in library code; catch specific "
                    "repro.errors classes",
                )


@lint_rule
class CodecImportRule(LintRule):
    """REP003: codecs are resolved via the registry, never imported."""

    code = "REP003"
    name = "direct-codec-import"
    description = (
        "codec entry points (zippy_compress, ...) may only be reached "
        "through repro.compress.registry outside compress/"
    )
    default_severity = Severity.ERROR

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.top_dir() != "compress"

    def check(self, module: ModuleInfo) -> Iterable[RawFinding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module not in CODEC_MODULES:
                    continue
                bad = [
                    alias.name
                    for alias in node.names
                    if alias.name in CODEC_FUNCTIONS or alias.name == "*"
                ]
                if bad:
                    yield RawFinding(
                        node.lineno,
                        node.col_offset,
                        f"direct import of codec function(s) "
                        f"{', '.join(bad)} from {node.module}; use "
                        "repro.compress.registry.get_codec instead",
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in CODEC_MODULES:
                        yield RawFinding(
                            node.lineno,
                            node.col_offset,
                            f"direct import of codec module {alias.name}; "
                            "use repro.compress.registry.get_codec instead",
                        )


def _is_self_or_cls(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id in ("self", "cls")


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


@lint_rule
class PrivateMutationRule(LintRule):
    """REP004: no mutation of another module's ``_``-private attributes.

    ColumnChunk / Dictionary internals (``_values``, ``_buf``, ...) are
    only assignable from the module that defines them. A module "owns"
    a private attribute when any of its classes assigns it via
    ``self._attr`` / ``cls._attr``; assignments through any other base
    expression are flagged unless the attribute is owned locally.
    """

    code = "REP004"
    name = "private-mutation"
    description = (
        "assignment to a _-prefixed attribute of a non-self object "
        "outside the attribute's defining module"
    )
    default_severity = Severity.ERROR

    def _owned_attrs(self, module: ModuleInfo) -> set[str]:
        owned: set[str] = set()
        for node in ast.walk(module.tree):
            for target in _assignment_targets(node):
                if (
                    isinstance(target, ast.Attribute)
                    and _is_self_or_cls(target.value)
                    and target.attr.startswith("_")
                ):
                    owned.add(target.attr)
        return owned

    def check(self, module: ModuleInfo) -> Iterable[RawFinding]:
        owned = self._owned_attrs(module)
        for node in ast.walk(module.tree):
            for target in _assignment_targets(node):
                if not isinstance(target, ast.Attribute):
                    continue
                attr = target.attr
                if not attr.startswith("_") or _is_dunder(attr):
                    continue
                if _is_self_or_cls(target.value) or attr in owned:
                    continue
                yield RawFinding(
                    target.lineno,
                    target.col_offset,
                    f"mutation of private attribute .{attr} from outside "
                    "its defining module; add a constructor or method "
                    "instead",
                )


def _assignment_targets(node: ast.AST) -> Iterator[ast.expr]:
    if isinstance(node, ast.Assign):
        for target in node.targets:
            yield from _flatten_target(target)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        yield from _flatten_target(node.target)


def _flatten_target(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_target(element)
    else:
        yield target


@lint_rule
class AnnotationRule(LintRule):
    """REP005: public storage/core/formats functions are annotated."""

    code = "REP005"
    name = "missing-annotations"
    description = (
        "public functions in storage/, core/ and formats/ must annotate "
        "every parameter and the return type"
    )
    default_severity = Severity.ERROR
    only_dirs = ("storage", "core", "formats")

    def check(self, module: ModuleInfo) -> Iterable[RawFinding]:
        yield from self._check_body(module.tree.body, in_class=None)

    def _check_body(
        self, body: list[ast.stmt], in_class: str | None
    ) -> Iterator[RawFinding]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if not node.name.startswith("_"):
                    yield from self._check_body(node.body, in_class=node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = node.name
                if name.startswith("_") and not _is_dunder(name):
                    continue
                yield from self._check_function(node, in_class)

    def _check_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, in_class: str | None
    ) -> Iterator[RawFinding]:
        missing: list[str] = []
        args = list(node.args.posonlyargs) + list(node.args.args)
        if in_class is not None and args and args[0].arg in ("self", "cls"):
            args = args[1:]
        for arg in args + list(node.args.kwonlyargs):
            if arg.annotation is None:
                missing.append(arg.arg)
        if node.returns is None:
            missing.append("return")
        if missing:
            label = f"{in_class}.{node.name}" if in_class else node.name
            yield RawFinding(
                node.lineno,
                node.col_offset,
                f"public function {label} missing annotations for: "
                f"{', '.join(missing)}",
            )


#: Method names that mutate the common containers aggregators hold
#: (lists, sets, dicts) — calling one on a ``self`` attribute inside
#: ``chunk_partial`` is a thread-safety violation.
MUTATING_METHODS = {
    "add",
    "append",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "sort",
    "update",
}


def _attribute_root(node: ast.expr) -> ast.expr:
    """Strip attribute/subscript chains: self.x[k].y -> the Name self."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


@lint_rule
class ChunkPartialMutationRule(LintRule):
    """REP007: ``chunk_partial`` must not mutate ``self``.

    The parallel executor (:mod:`repro.core.executor`) calls
    ``chunk_partial`` concurrently from worker threads; the aggregator
    contract keeps all mutable state in ``apply()``, which runs on the
    merge thread in deterministic chunk order. Any class defining a
    ``chunk_partial`` method is held to the contract: no assignment to
    (or through) a ``self`` attribute, and no calls to mutating
    container methods on ``self`` attributes, inside that method.
    """

    code = "REP007"
    name = "chunk-partial-mutates-self"
    description = (
        "chunk_partial implementations must be read-only on self; "
        "mutable aggregator state belongs in apply() on the merge thread"
    )
    default_severity = Severity.ERROR

    def check(self, module: ModuleInfo) -> Iterable[RawFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "chunk_partial"
                ):
                    yield from self._check_method(node.name, item)

    def _check_method(
        self, class_name: str, method: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[RawFinding]:
        for node in ast.walk(method):
            for target in _assignment_targets(node):
                root = _attribute_root(target)
                if isinstance(target, (ast.Attribute, ast.Subscript)) and (
                    _is_self_or_cls(root)
                ):
                    yield RawFinding(
                        target.lineno,
                        target.col_offset,
                        f"{class_name}.chunk_partial assigns through self; "
                        "move mutable state into apply() (REP007 "
                        "executor thread-safety contract)",
                    )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS
                and isinstance(node.func.value, (ast.Attribute, ast.Subscript))
                and _is_self_or_cls(_attribute_root(node.func.value))
            ):
                yield RawFinding(
                    node.lineno,
                    node.col_offset,
                    f"{class_name}.chunk_partial calls mutating "
                    f".{node.func.attr}() on a self attribute; move "
                    "mutable state into apply() (REP007 executor "
                    "thread-safety contract)",
                )


@lint_rule
class SleepRetryRule(LintRule):
    """REP008: no bare sleeps or ad-hoc retry loops in library code.

    Retry/backoff behaviour must go through the sanctioned, *simulated*
    backoff helper in :mod:`repro.distributed.faults` (which is exempt,
    being that helper's home). Two patterns are flagged:

    - any call to a ``sleep`` function (``time.sleep(...)``, a bare
      ``sleep(...)``, ``asyncio.sleep(...)``): real delays make the
      deterministic simulation and the test suite wall-clock-dependent;
    - an *attempt* loop (``while ...`` or ``for ... in range(...)``)
      whose body catches an exception and ``continue``s — the classic
      hand-rolled retry loop, which hides unbounded retries and
      swallows the failure accounting the fault layer centralizes.
      Loops over data (``for kind in (int, float)`` fallback chains)
      are not retry loops and are left alone.
    """

    code = "REP008"
    name = "ad-hoc-retry"
    description = (
        "time.sleep / bare sleep calls and except-then-continue retry "
        "loops are banned outside distributed/faults.py; use the "
        "sanctioned simulated backoff helper (backoff_delay)"
    )
    default_severity = Severity.ERROR
    exempt_files = ("distributed/faults.py",)

    def _is_sleep_call(self, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "sleep"
        if isinstance(func, ast.Attribute):
            return func.attr == "sleep"
        return False

    def _is_attempt_loop(self, node: ast.stmt) -> bool:
        """While loops and ``for ... in range(...)`` count attempts."""
        if isinstance(node, ast.While):
            return True
        if isinstance(node, (ast.For, ast.AsyncFor)):
            call = node.iter
            return (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Name)
                and call.func.id == "range"
            )
        return False

    def check(self, module: ModuleInfo) -> Iterable[RawFinding]:
        flagged_handlers: set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and self._is_sleep_call(node):
                yield RawFinding(
                    node.lineno,
                    node.col_offset,
                    "sleep() call in library code; delays are simulated "
                    "via repro.distributed.faults.backoff_delay (REP008)",
                )
            elif self._is_attempt_loop(node):
                yield from self._check_loop(node, flagged_handlers)

    def _check_loop(
        self, loop: ast.For | ast.While | ast.AsyncFor,
        flagged_handlers: set[int],
    ) -> Iterator[RawFinding]:
        for node in ast.walk(loop):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if id(node) in flagged_handlers:
                continue
            if any(
                isinstance(stmt, ast.Continue)
                for body_node in node.body
                for stmt in ast.walk(body_node)
            ):
                flagged_handlers.add(id(node))
                yield RawFinding(
                    node.lineno,
                    node.col_offset,
                    "ad-hoc retry loop (except-then-continue); route "
                    "retries through the fault layer's dispatch/backoff "
                    "helpers (REP008)",
                )


@lint_rule
class NoPrintRule(LintRule):
    """REP006: library code must not print; use repro.monitoring."""

    code = "REP006"
    name = "print-in-library"
    description = (
        "print() in library code; report via repro.monitoring or return "
        "data (the cli modules are exempt as the user-facing surface)"
    )
    default_severity = Severity.ERROR
    exempt_files = ("cli.py", "analysis/cli.py")

    def check(self, module: ModuleInfo) -> Iterable[RawFinding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield RawFinding(
                    node.lineno,
                    node.col_offset,
                    "print() in library code; use repro.monitoring "
                    "counters/reports instead",
                )


#: Import-pipeline modules held to the vectorized-kernel contract.
HOT_IMPORT_MODULES = (
    "partition/codes.py",
    "storage/trie.py",
    "storage/subdict.py",
)


@lint_rule
class ScalarImportLoopRule(LintRule):
    """REP009: hot import modules must not fall back to per-row loops.

    The import pipeline's throughput rests on three bulk kernels
    (factorize, the bulk trie builder, batched dictionary lookups).
    Inside the modules that implement them, a ``for``-loop or
    comprehension iterating a ``.values`` attribute (one Python
    iteration per row), or a single-argument ``.value(gid)`` call
    inside a loop (one dictionary probe per id), silently reintroduces
    the scalar behaviour this PR removed. Deliberate scalar fallbacks
    (the equivalence oracles) carry a line suppression with a reason.
    """

    code = "REP009"
    name = "scalar-import-loop"
    description = (
        "per-row loop over a .values attribute, or per-id .value(gid) "
        "call inside a loop, in a hot import module; use the bulk "
        "kernels (factorize_list, bulk trie build, global_ids) instead"
    )
    default_severity = Severity.ERROR
    only_files = HOT_IMPORT_MODULES

    def _is_values_attribute(self, node: ast.expr) -> bool:
        """``something.values`` as a bare attribute (not a ``.values()``)."""
        return isinstance(node, ast.Attribute) and node.attr == "values"

    def _iter_loop_iterables(
        self, node: ast.AST
    ) -> Iterator[tuple[ast.expr, int, int]]:
        """(iterable, line, col) for every loop/comprehension at ``node``."""
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, node.lineno, node.col_offset
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                yield gen.iter, node.lineno, node.col_offset

    def _is_scalar_value_call(self, node: ast.AST) -> bool:
        """A single-argument ``.value(x)`` call — one probe per id."""
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "value"
            and len(node.args) == 1
            and not node.keywords
        )

    def check(self, module: ModuleInfo) -> Iterable[RawFinding]:
        flagged_calls: set[int] = set()
        for node in ast.walk(module.tree):
            for iterable, line, col in self._iter_loop_iterables(node):
                if self._is_values_attribute(iterable):
                    yield RawFinding(
                        line,
                        col,
                        "per-row loop over .values in a hot import "
                        "module; use a bulk kernel (REP009)",
                    )
            if isinstance(
                node,
                (
                    ast.For,
                    ast.AsyncFor,
                    ast.While,
                    ast.ListComp,
                    ast.SetComp,
                    ast.DictComp,
                    ast.GeneratorExp,
                ),
            ):
                for inner in ast.walk(node):
                    if (
                        self._is_scalar_value_call(inner)
                        and id(inner) not in flagged_calls
                    ):
                        flagged_calls.add(id(inner))
                        yield RawFinding(
                            inner.lineno,
                            inner.col_offset,
                            "per-id .value() call inside a loop in a hot "
                            "import module; batch through "
                            "Dictionary.global_ids/values() (REP009)",
                        )


def _is_simple_scalar_index(node: ast.expr) -> bool:
    """An index expression built only from names, constants and arithmetic.

    ``data[pos]``, ``out[i + 1]``, ``buf[-k]`` qualify; anything
    involving a call, an attribute, another subscript or a numpy-style
    fancy index (tuple/array expressions) does not — those are how the
    bulk kernels legitimately subscript.
    """
    return all(
        isinstance(
            sub, (ast.Name, ast.Constant, ast.BinOp, ast.UnaryOp,
                  ast.operator, ast.unaryop, ast.expr_context)
        )
        for sub in ast.walk(node)
    )


def _walk_own_body(loop: ast.While | ast.For | ast.AsyncFor) -> Iterator[ast.AST]:
    """Walk a loop's subtree without descending into nested loops.

    Nested loops are separate ``check`` subjects — judging (and
    suppressing) each at its own header line keeps findings precise.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(loop))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
            stack.extend(ast.iter_child_nodes(node))


@lint_rule
class PerByteCodecLoopRule(LintRule):
    """REP010: codec modules must not walk buffers one index at a time.

    The compression kernels' throughput rests on numpy bulk operations
    (see :mod:`repro.compress.bulk` and the vectorized codecs). Two
    shapes reintroduce the scalar behaviour:

    - a ``while`` loop that advances a cursor (``pos += ...``) and
      subscripts with a plain scalar index (``data[pos]``) — the
      classic per-byte decode walk;
    - a ``for i in range(...)`` loop subscripting with its loop
      variable (``out[i] = ...``).

    Slices (``data[a:b]``) are always fine: slice-based loops advance
    by whole matches/runs, not bytes. ``compress/reference.py`` — the
    frozen scalar oracle — is exempt, and the deliberate scalar loops
    that remain (greedy LZ parses, the Huffman heap merge) carry
    same-line suppressions with reasons.
    """

    code = "REP010"
    name = "per-byte-codec-loop"
    description = (
        "per-index while/for walk over a buffer in repro/compress/*; "
        "use the numpy bulk kernels (reference.py, the scalar oracle, "
        "is exempt)"
    )
    default_severity = Severity.ERROR
    only_dirs = ("compress",)
    exempt_files = ("compress/reference.py", "reference.py")

    def _scalar_subscripts(
        self, loop: ast.While | ast.For | ast.AsyncFor
    ) -> Iterator[ast.Subscript]:
        for node in _walk_own_body(loop):
            if (
                isinstance(node, ast.Subscript)
                and not isinstance(node.slice, ast.Slice)
                and _is_simple_scalar_index(node.slice)
            ):
                yield node

    def _check_while(self, loop: ast.While) -> Iterator[RawFinding]:
        has_cursor = any(
            isinstance(node, ast.AugAssign)
            and isinstance(node.target, ast.Name)
            for node in _walk_own_body(loop)
        )
        if not has_cursor:
            return
        for node in self._scalar_subscripts(loop):
            yield RawFinding(
                loop.lineno,
                loop.col_offset,
                "while loop advances a cursor and subscripts "
                f"element-by-element (line {node.lineno}); use a numpy "
                "bulk kernel (REP010)",
            )
            return  # one finding per loop header

    def _check_for(self, loop: ast.For | ast.AsyncFor) -> Iterator[RawFinding]:
        if not (
            isinstance(loop.iter, ast.Call)
            and isinstance(loop.iter.func, ast.Name)
            and loop.iter.func.id == "range"
            and isinstance(loop.target, ast.Name)
        ):
            return
        loop_var = loop.target.id
        for node in self._scalar_subscripts(loop):
            if any(
                isinstance(sub, ast.Name) and sub.id == loop_var
                for sub in ast.walk(node.slice)
            ):
                yield RawFinding(
                    loop.lineno,
                    loop.col_offset,
                    "for-range loop subscripts with its loop variable "
                    f"(line {node.lineno}); use a numpy bulk kernel "
                    "(REP010)",
                )
                return  # one finding per loop header

    def check(self, module: ModuleInfo) -> Iterable[RawFinding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.While):
                yield from self._check_while(node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_for(node)


# -- the dataflow rules (REP011 — REP015) -----------------------------------


def _module_global_names(
    model: "_df.ModuleModel", fn: "_df.FunctionInfo"
) -> set[str]:
    """Module-level bindings visible (and writable-through) in ``fn``."""
    names = set(model.globals)
    names |= set(model.import_names)
    names |= set(model.import_modules)
    return names - _df.bound_names(fn.node)


@lint_rule
class ExecutorCaptureMutationRule(ProjectRule):
    """REP011: submitted callables never write through captured state.

    For every executor submission (``*.map_ordered(fn, ...)`` and the
    ``attempt_cost`` callback of ``dispatch_sub_query``) whose callable
    resolves to a lambda, nested ``def`` or module function, two shapes
    are flagged:

    - a write *through* any closed-over name inside the callable —
      attribute/subscript stores, augmented assigns, mutating container
      method calls, ``nonlocal``/``global`` rebinds. Worker-side writes
      to shared objects are racy under threads and silently lost under
      processes;
    - capture of a module-level binding whose value is a known-mutable
      container (a module registry) — shared-registry reads diverge
      across processes once any worker writes.

    Read-only capture of mutable objects is legal here (the runtime
    sanitizer in :mod:`repro.testing` cross-checks it dynamically);
    unresolvable callables (``self.method`` references, callables
    received as parameters) are skipped — a documented false-negative
    boundary of the call resolver.
    """

    code = "REP011"
    name = "executor-capture-mutation"
    description = (
        "callable submitted to map_ordered/dispatch_sub_query writes "
        "through closed-over state or captures a module-level mutable "
        "binding; workers must not mutate shared objects"
    )
    default_severity = Severity.ERROR

    def check_project(
        self, project: "_df.Project", modules: dict[str, ModuleInfo]
    ) -> Iterable[tuple[str, RawFinding]]:
        for rel_path in sorted(modules):
            if project.model_for(rel_path) is None:
                continue
            for site in _df.submission_sites(project, rel_path):
                yield from self._check_site(project, rel_path, site)

    def _check_site(
        self,
        project: "_df.Project",
        rel_path: str,
        site: "_df.SubmissionSite",
    ) -> Iterator[tuple[str, RawFinding]]:
        node, label = _df.resolve_callable(site, project)
        if node is None:
            return
        free = _df.free_names(node)
        if not free:
            return
        for mutation in _df.mutations_through(node, free):
            detail = f".{mutation.detail}()" if mutation.kind == "method" else ""
            yield rel_path, RawFinding(
                mutation.line,
                mutation.col,
                f"callable {label!r} submitted to {site.seam} writes "
                f"through captured {mutation.name!r} "
                f"({mutation.kind}{detail}); workers must not mutate "
                "shared state — return the value and fold it in on the "
                "merge thread (REP011)",
            )
        model = project.model_for(rel_path)
        if model is None:
            return
        for name in sorted(free):
            values = model.globals.get(name, [])
            if any(_df.mutable_value_expr(v) for v in values):
                yield rel_path, RawFinding(
                    site.call.lineno,
                    site.call.col_offset,
                    f"callable {label!r} submitted to {site.seam} "
                    f"captures module-level mutable binding {name!r}; "
                    "pass an immutable snapshot instead (REP011)",
                )


@lint_rule
class TransitivePurityRule(ProjectRule):
    """REP012: everything reachable from ``chunk_partial`` stays pure.

    The interprocedural generalization of REP007: for each class
    defining ``chunk_partial``, the call-graph closure of that method
    (scoped to ``src/repro``; unresolvable receivers are skipped) must
    be free of writes to ``self``/``cls``, to module globals and to
    module-level registries. ``__init__``/``__post_init__`` are exempt
    from the self-write check — constructing a fresh local object
    writes its *own* ``self``, which shares nothing.
    """

    code = "REP012"
    name = "chunk-partial-transitive-impurity"
    description = (
        "a function reachable from a chunk_partial implementation "
        "writes to self, a module global or a module-level registry; "
        "worker-side code must be pure — fold state in apply() on the "
        "merge thread"
    )
    default_severity = Severity.ERROR

    def check_project(
        self, project: "_df.Project", modules: dict[str, ModuleInfo]
    ) -> Iterable[tuple[str, RawFinding]]:
        roots = [
            fn
            for fn in project.function_infos()
            if fn.name == "chunk_partial" and fn.class_name is not None
        ]
        reported: set[tuple[str, int, int, str]] = set()
        for root in sorted(roots, key=lambda f: (f.rel_path, f.qualname)):
            targets: list[tuple["_df.FunctionInfo", list[str] | None]] = [
                (root, None)
            ]
            for key, chain in sorted(project.reachable_from(root).items()):
                info = project.info_by_key(key)
                if info is not None:
                    targets.append((info, chain))
            for fn, chain in targets:
                for finding in self._impure_writes(project, fn, chain):
                    dedup = (
                        fn.rel_path,
                        finding.line,
                        finding.col,
                        finding.message.split(" (reached", 1)[0],
                    )
                    if dedup in reported:
                        continue
                    reported.add(dedup)
                    yield fn.rel_path, finding

    def _impure_writes(
        self,
        project: "_df.Project",
        fn: "_df.FunctionInfo",
        chain: list[str] | None,
    ) -> Iterator[RawFinding]:
        model = project.model_for(fn.rel_path)
        if model is None:
            return
        watched = _module_global_names(model, fn)
        allow_self = fn.name in ("__init__", "__post_init__", "__new__")
        if not allow_self:
            watched |= {"self", "cls"}
        via = (
            " (reached via " + " -> ".join(chain) + ")" if chain else ""
        )
        for mutation in _df.mutations_through(fn.node, watched):
            if mutation.name in ("self", "cls"):
                what = f"writes to {mutation.name}"
            else:
                what = f"writes to module-level {mutation.name!r}"
            detail = (
                f" via .{mutation.detail}()"
                if mutation.kind == "method"
                else f" ({mutation.kind})"
            )
            yield RawFinding(
                mutation.line,
                mutation.col,
                f"{fn.qualname} {what}{detail} on a chunk_partial "
                f"path{via}; worker-side code must be pure (REP012)",
            )


#: Name fragments marking a function as merge-order / byte-stream
#: sensitive: its iteration order reaches merged results or encoded
#: bytes. Matched against the bare method/function name.
_ORDER_SENSITIVE_FRAGMENTS = (
    "merge", "finalize", "apply", "serialize", "to_bytes", "encode",
    "write", "dump", "fingerprint",
)


@lint_rule
class MergeDeterminismRule(ProjectRule):
    """REP013: no hash-ordered ``set`` iteration on merge/serde paths.

    Roots are functions whose names mark them order-sensitive (merge*,
    finalize*, apply, serialize*, to_bytes, encode*, write*, dump*,
    fingerprint*) plus everything they transitively call. Inside those,
    iterating a set — ``for``-loops, comprehensions, ``list``/
    ``tuple``/``join``/``enumerate`` arguments — is flagged unless the
    expression is wrapped in ``sorted(...)``. Set-ness is judged from
    the expression shape, the reaching definitions of a plain name, and
    ``self.attr`` assignments on the enclosing class. Feeding a set
    into ``set()``/``frozenset()`` or membership tests stays legal
    (order cannot leak), and dict iteration is deliberately exempt:
    Python dicts are insertion-ordered, hence deterministic.
    """

    code = "REP013"
    name = "unordered-merge-iteration"
    description = (
        "iteration over a set without sorted() in a merge/serialization "
        "function; set order varies with PYTHONHASHSEED and must never "
        "feed merge order or encoded bytes"
    )
    default_severity = Severity.ERROR

    def check_project(
        self, project: "_df.Project", modules: dict[str, ModuleInfo]
    ) -> Iterable[tuple[str, RawFinding]]:
        sensitive: dict[tuple[str, str], "_df.FunctionInfo"] = {}
        for fn in project.function_infos():
            if any(f in fn.name for f in _ORDER_SENSITIVE_FRAGMENTS):
                sensitive.setdefault((fn.rel_path, fn.qualname), fn)
                for key in project.reachable_from(fn):
                    info = project.info_by_key(key)
                    if info is not None:
                        sensitive.setdefault(key, info)
        for key in sorted(sensitive):
            fn = sensitive[key]
            yield from self._check_function(project, fn)

    def _iteration_exprs(
        self, fn: "_df.FunctionInfo"
    ) -> Iterator[tuple[ast.expr, int, int, str]]:
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield node.iter, node.lineno, node.col_offset, "for-loop"
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                for gen in node.generators:
                    yield (
                        gen.iter, node.lineno, node.col_offset,
                        "comprehension",
                    )
            elif isinstance(node, ast.Call):
                name = _df.call_name(node)
                if name in ("list", "tuple", "enumerate") and node.args:
                    yield (
                        node.args[0], node.lineno, node.col_offset,
                        f"{name}()",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                ):
                    yield (
                        node.args[0], node.lineno, node.col_offset,
                        "join()",
                    )

    def _check_function(
        self, project: "_df.Project", fn: "_df.FunctionInfo"
    ) -> Iterator[tuple[str, RawFinding]]:
        rdefs: "_df.ReachingDefs | None" = None
        cls = (
            project.class_named(fn.class_name)
            if fn.class_name is not None
            else None
        )
        for expr, line, col, context in self._iteration_exprs(fn):
            if _df.sorted_wrapped(expr):
                continue
            is_set = _df.set_typed_expr(expr)
            if not is_set and isinstance(expr, ast.Name):
                if rdefs is None:
                    rdefs = _df.reaching_definitions(fn.node)
                is_set = any(
                    _df.set_typed_expr(d.value)
                    for d in rdefs.definitions_of(expr.id)
                )
            if (
                not is_set
                and isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id in ("self", "cls")
                and cls is not None
            ):
                is_set = any(
                    _df.set_typed_expr(v)
                    for v in cls.attr_assigns.get(expr.attr, [])
                )
            if is_set:
                yield fn.rel_path, RawFinding(
                    line,
                    col,
                    f"{fn.qualname} iterates a set in a {context} on a "
                    "merge/serialization path; wrap the iterable in "
                    "sorted(...) so order never depends on "
                    "PYTHONHASHSEED (REP013)",
                )


@lint_rule
class BufferMutationRule(ProjectRule):
    """REP014: no in-place writes on ``np.frombuffer``-derived arrays.

    The shared-memory arena planned for ROADMAP item 2 hands every
    worker the *same* decoded bytes; an in-place store on a view of
    them corrupts other workers' reads. The taint analysis
    (:class:`repro.analysis.dataflow.TaintAnalysis`) seeds at
    ``frombuffer`` calls and at calls to project functions whose
    returns are (transitively) tainted, follows aliases and
    view-preserving operations, and reports subscript stores,
    augmented assigns, ``out=`` keywords and in-place ndarray methods
    on tainted names. Copying operations (arithmetic, ``astype()``
    without ``copy=False``, fancy indexing) launder the taint — they
    allocate fresh memory.
    """

    code = "REP014"
    name = "buffer-view-mutation"
    description = (
        "in-place numpy mutation (subscript store, augmented assign, "
        "out=, in-place method) on an array derived from an "
        "np.frombuffer view; decoded chunk buffers are shared and "
        "must stay immutable"
    )
    default_severity = Severity.ERROR

    _SINK_LABEL = {
        "subscript-store": "subscript store into",
        "aug": "augmented assign on",
        "out-kwarg": "out= targeting",
        "inplace-method": "in-place method call on",
    }

    def check_project(
        self, project: "_df.Project", modules: dict[str, ModuleInfo]
    ) -> Iterable[tuple[str, RawFinding]]:
        for fn in sorted(
            project.function_infos(), key=lambda f: (f.rel_path, f.qualname)
        ):
            analysis = _df.TaintAnalysis(fn, project)
            for sink in analysis.sinks():
                label = self._SINK_LABEL.get(sink.kind, sink.kind)
                origin = (
                    f" (buffer view from line {sink.source_line})"
                    if sink.source_line
                    else ""
                )
                yield fn.rel_path, RawFinding(
                    sink.line,
                    sink.col,
                    f"{fn.qualname}: {label} {sink.name!r}, a "
                    f"frombuffer-derived array{origin}; copy before "
                    "writing — decoded chunk buffers are shared "
                    "(REP014)",
                )


@lint_rule
class UnpicklableCaptureRule(ProjectRule):
    """REP015: executor submissions capture only picklable values.

    Swapping the ThreadPool for a ProcessPool requires every submitted
    callable's captures to cross a pickle boundary. Flagged captures:

    - a name whose reaching definition constructs a known-unpicklable
      value (locks, conditions, pools, threads, open files, sockets,
      generators);
    - ``self``, when the enclosing class (or a project base) assigns a
      known-unpicklable value to an attribute and defines no
      ``__getstate__``/``__reduce__`` to drop it;
    - a name bound to a constructor call of such a class.

    The submitted callable *itself* being a closure (unpicklable as
    such) is out of scope here — the ProcessPool migration will ship
    its own submission shim — and unresolvable callables are skipped;
    both are documented false-negative boundaries.
    """

    code = "REP015"
    name = "unpicklable-capture"
    description = (
        "executor submission captures a value that cannot cross a "
        "process boundary (lock, pool, open file, socket, or an object "
        "of a class holding one without __getstate__)"
    )
    default_severity = Severity.ERROR

    def check_project(
        self, project: "_df.Project", modules: dict[str, ModuleInfo]
    ) -> Iterable[tuple[str, RawFinding]]:
        for rel_path in sorted(modules):
            if project.model_for(rel_path) is None:
                continue
            for site in _df.submission_sites(project, rel_path):
                yield from self._check_site(project, rel_path, site)

    def _check_site(
        self,
        project: "_df.Project",
        rel_path: str,
        site: "_df.SubmissionSite",
    ) -> Iterator[tuple[str, RawFinding]]:
        node, label = _df.resolve_callable(site, project)
        if node is None:
            return
        free = _df.free_names(node)
        if not free:
            return
        enclosing = site.enclosing
        rdefs = _df.reaching_definitions(enclosing.node)
        model = project.model_for(rel_path)
        for name in sorted(free):
            for reason in self._unpicklable_reasons(
                project, model, enclosing, rdefs, name
            ):
                yield rel_path, RawFinding(
                    site.call.lineno,
                    site.call.col_offset,
                    f"callable {label!r} submitted to {site.seam} "
                    f"captures {name!r}, which {reason}; a ProcessPool "
                    "cannot pickle it — drop it in __getstate__ or "
                    "pass picklable data instead (REP015)",
                )

    def _unpicklable_reasons(
        self,
        project: "_df.Project",
        model: "_df.ModuleModel",
        enclosing: "_df.FunctionInfo",
        rdefs: "_df.ReachingDefs",
        name: str,
    ) -> Iterator[str]:
        if name in ("self", "cls"):
            if enclosing.class_name is not None:
                yield from self._class_reasons(
                    project, enclosing.class_name, f"is the enclosing"
                )
            return
        definitions = rdefs.definitions_of(name)
        seen: set[str] = set()
        for definition in definitions:
            ctor = _df.unpicklable_value_expr(definition.value)
            if ctor is not None and ctor not in seen:
                seen.add(ctor)
                yield f"is bound to {ctor}() — unpicklable by construction"
                continue
            if isinstance(definition.value, ast.Call):
                cls_name = _df.call_name(definition.value)
                if cls_name is not None and project.class_named(cls_name):
                    yield from self._class_reasons(
                        project, cls_name, "is an instance of"
                    )
        if not definitions:
            for value in model.globals.get(name, []):
                ctor = _df.unpicklable_value_expr(value)
                if ctor is not None and ctor not in seen:
                    seen.add(ctor)
                    yield (
                        f"is a module-level binding of {ctor}() — "
                        "unpicklable by construction"
                    )

    def _class_reasons(
        self, project: "_df.Project", class_name: str, prefix: str
    ) -> Iterator[str]:
        queue = [class_name]
        visited: set[str] = set()
        while queue:
            current = queue.pop(0)
            if current in visited:
                continue
            visited.add(current)
            cls = project.class_named(current)
            if cls is None:
                continue
            if cls.has_pickle_protocol():
                continue  # the class curates its own pickled state
            for attr in sorted(cls.attr_assigns):
                for value in cls.attr_assigns[attr]:
                    ctor = _df.unpicklable_value_expr(value)
                    if ctor is not None:
                        yield (
                            f"{prefix} {current}, whose .{attr} holds "
                            f"{ctor}() and which defines no __getstate__"
                        )
                        break
                else:
                    continue
                break
            queue.extend(cls.bases)


@lint_rule
class UnusedSuppressionRule(LintRule):
    """REP016: suppression comments must still suppress something.

    The detection itself lives in :func:`repro.analysis.lint.run_lint`
    — only the engine knows which suppressions matched a finding across
    *all* rules, so this class is the registration/catalog anchor and
    carries the severity. It only fires on full runs (no ``--select``):
    under a selective run most rules never execute, and their
    suppressions would all look dead.
    """

    code = "REP016"
    name = "unused-suppression"
    description = (
        "a # reprolint: disable comment that silences no finding; "
        "delete it so dead opt-outs cannot accumulate (detected by the "
        "engine on full runs)"
    )
    default_severity = Severity.WARNING

    def check(self, module: ModuleInfo) -> Iterable[RawFinding]:
        return ()  # engine-driven; see run_lint


@lint_rule
class UnboundedFutureWaitRule(LintRule):
    """REP017: hot-path future waits must carry a bounded timeout.

    The process supervisor's whole fault model rests on one mechanical
    guarantee: no wait in ``core/executor.py`` can outlive the task
    deadline. A bare ``future.result()`` blocks forever on a hung
    worker, and a bare ``worker.join()`` blocks forever on one that
    never exits — either reintroduces exactly the wedge the
    supervision layer exists to survive, silently, on the module most
    likely to be edited under pressure. Every ``.result``/``.join``
    call there must pass a timeout (``str.join`` always takes its one
    iterable argument, so zero-argument calls cannot be it). The one
    sanctioned exception — the thread strategy, whose workers cannot
    be killed so a deadline adds no recovery path — carries a line
    suppression with that reason.
    """

    code = "REP017"
    name = "unbounded-future-wait"
    description = (
        "a zero-argument .result() or .join() call in core/executor.py "
        "can block forever on a dead or hung worker; pass a bounded "
        "timeout (see SupervisionConfig.task_deadline_seconds)"
    )
    default_severity = Severity.ERROR
    only_files = ("core/executor.py",)

    def check(self, module: ModuleInfo) -> Iterable[RawFinding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("result", "join")
                and not node.args
                and not node.keywords
            ):
                yield RawFinding(
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"unbounded .{node.func.attr}() wait on the "
                        "execution hot path; pass timeout= so a dead or "
                        "hung worker cannot wedge the supervisor"
                    ),
                )


def _registered_codec_names() -> frozenset[str]:
    """The live registry's codec names (imported lazily: the registry
    pulls in numpy-heavy codec modules the other rules never need)."""
    from repro.compress.registry import available_codecs

    return frozenset(available_codecs())


@lint_rule
class HardcodedCodecNameRule(LintRule):
    """REP018: codec choice belongs to the encoding advisor.

    A registered codec name inlined at a call site pins a layout
    decision the advisor can no longer revisit — and silently breaks
    if the codec is renamed. The rule flags string literals matching a
    registered codec name whenever they sit in a *codec-selecting
    position*: a positional argument to a registry entry point
    (``get_codec``, ``compress``, ``decompress``, ...), any ``codec``
    keyword, an assignment to a ``codec``-named binding, or a
    comparison against one. Two kinds of *declared defaults* are
    sanctioned and exempt: function parameter defaults (the documented
    static fallback of ``write_columnio``/``HybridLayerStore``) and
    module-level ALL_CAPS constants (a bench's pinned baseline).
    ``compress/registry.py`` and ``compress/advisor.py`` — the two
    modules whose job *is* naming codecs — are exempt wholesale.
    """

    code = "REP018"
    name = "hardcoded-codec-name"
    description = (
        "registered codec-name string literal in a codec-selecting "
        "position; route the choice through the encoding advisor, a "
        "parameter default, or a module-level ALL_CAPS constant"
    )
    default_severity = Severity.ERROR
    exempt_files = ("compress/registry.py", "compress/advisor.py")

    #: Registry entry points whose positional string args select codecs.
    _REGISTRY_CALLS = {
        "get_codec",
        "compress",
        "decompress",
        "compression_stats",
        "register_cascade",
        "cascade_stages",
    }

    @staticmethod
    def _terminal_name(node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    @staticmethod
    def _declared_default_nodes(tree: ast.Module) -> set[int]:
        """Node ids inside sanctioned declared-default expressions."""
        exempt: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                for default in [
                    *node.args.defaults,
                    *node.args.kw_defaults,
                ]:
                    if default is not None:
                        exempt.update(id(sub) for sub in ast.walk(default))
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if (
                value is not None
                and names
                and len(names) == len(targets)
                and all(name == name.upper() for name in names)
            ):
                exempt.update(id(sub) for sub in ast.walk(value))
        return exempt

    def check(self, module: ModuleInfo) -> Iterable[RawFinding]:
        watched = _registered_codec_names()

        def is_watched(node: ast.expr) -> bool:
            return (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value in watched
            )

        def finding(node: ast.expr, context: str) -> RawFinding:
            return RawFinding(
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"hardcoded codec name {node.value!r} {context}; "
                    "let the encoding advisor choose, or declare it as "
                    "a parameter default / module-level ALL_CAPS "
                    "constant"
                ),
            )

        exempt = self._declared_default_nodes(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func_name = self._terminal_name(node.func)
                if func_name in self._REGISTRY_CALLS:
                    for arg in node.args:
                        if is_watched(arg) and id(arg) not in exempt:
                            yield finding(
                                arg, f"passed to {func_name}()"
                            )
                for keyword in node.keywords:
                    if (
                        keyword.arg is not None
                        and "codec" in keyword.arg.lower()
                        and is_watched(keyword.value)
                        and id(keyword.value) not in exempt
                    ):
                        yield finding(
                            keyword.value, f"as keyword {keyword.arg}="
                        )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                value = node.value
                if value is None or not is_watched(value):
                    continue
                if id(value) in exempt:
                    continue
                for target in targets:
                    target_name = self._terminal_name(target)
                    if target_name and "codec" in target_name.lower():
                        yield finding(
                            value, f"assigned to {target_name}"
                        )
                        break
            elif isinstance(node, ast.Compare):
                sides = [node.left, *node.comparators]
                codec_named = any(
                    (name := self._terminal_name(side)) is not None
                    and "codec" in name.lower()
                    for side in sides
                )
                if not codec_named:
                    continue
                for side in sides:
                    if is_watched(side) and id(side) not in exempt:
                        yield finding(
                            side, "compared against a codec binding"
                        )
                        break


@lint_rule
class UnboundedServiceQueueRule(LintRule):
    """REP019: the serving layer admits by policy, not by memory.

    Every queue the service layer buffers work in must carry an
    explicit capacity, because admission control is the layer's whole
    contract: overload surfaces as an explicit ``QueryRejected`` at
    ``offer()`` time, never as silent queue growth. The rule flags,
    inside ``repro/service/`` only:

    - ``Queue()``/``LifoQueue()``/``PriorityQueue()`` constructed with
      no ``maxsize``, or with a literal ``maxsize <= 0`` (the stdlib's
      spelling of *infinite*);
    - ``deque()`` constructed without a ``maxlen`` (positional second
      argument or keyword), or with a literal ``maxlen`` of ``None``
      or ``<= 0``;
    - ``SimpleQueue()`` anywhere — it is unboundable by construction.

    A non-literal bound (``Queue(maxsize=config.queue_depth)``) is
    accepted: the rule enforces that a bound is *plumbed*, validation
    of its value belongs to the config's ``__post_init__``.
    """

    code = "REP019"
    name = "unbounded-service-queue"
    description = (
        "unbounded Queue/deque/SimpleQueue in repro/service/*; pass an "
        "explicit maxsize/maxlen so overload sheds at admission "
        "instead of growing memory"
    )
    default_severity = Severity.ERROR
    only_dirs = ("service",)

    _BOUNDED_QUEUES = {"Queue", "LifoQueue", "PriorityQueue"}

    @staticmethod
    def _terminal_name(node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    @staticmethod
    def _is_unbounded_literal(node: ast.expr | None) -> bool:
        """True when the bound expression is literally no bound."""
        if node is None:
            return True
        if isinstance(node, ast.Constant):
            if node.value is None:
                return True
            if isinstance(node.value, (int, float)) and node.value <= 0:
                return True
        return False

    def check(self, module: ModuleInfo) -> Iterable[RawFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = self._terminal_name(node.func)
            keywords = {
                kw.arg: kw.value
                for kw in node.keywords
                if kw.arg is not None
            }
            if name == "SimpleQueue":
                yield RawFinding(
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "SimpleQueue cannot be bounded; use "
                        "Queue(maxsize=...) so the service sheds at "
                        "admission"
                    ),
                )
            elif name in self._BOUNDED_QUEUES:
                bound = keywords.get("maxsize")
                if bound is None and node.args:
                    bound = node.args[0]
                if self._is_unbounded_literal(bound):
                    yield RawFinding(
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{name}() without a positive maxsize is "
                            "an unbounded buffer; the serving layer "
                            "must bound every queue and reject at "
                            "admission"
                        ),
                    )
            elif name == "deque":
                bound = keywords.get("maxlen")
                if bound is None and len(node.args) >= 2:
                    bound = node.args[1]
                if self._is_unbounded_literal(bound):
                    yield RawFinding(
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            "deque() without a positive maxlen is an "
                            "unbounded buffer; the serving layer must "
                            "bound every queue and reject at admission"
                        ),
                    )
