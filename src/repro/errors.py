"""Exception hierarchy for the PowerDrill reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Sub-hierarchies mirror the major subsystems: storage,
SQL parsing/binding, query execution, and the distributed layer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class StorageError(ReproError):
    """A storage data-structure was used incorrectly or is corrupt."""


class DictionaryError(StorageError):
    """A dictionary lookup or construction failed."""


class EncodingError(StorageError):
    """An element/trie/compression encoding could not be built or decoded."""


class CompressionError(ReproError):
    """A compressed buffer is malformed or a codec is unknown."""


class PartitionError(ReproError):
    """Partitioning was configured or applied incorrectly."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class SqlSyntaxError(SqlError):
    """The query text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class BindError(SqlError):
    """A parsed query references unknown fields or misuses functions."""


class ExecutionError(ReproError):
    """Query evaluation failed at runtime."""


class UnsupportedQueryError(ExecutionError):
    """The query is valid SQL but outside the supported dialect."""


class ChunkUnavailableError(ExecutionError):
    """A chunk task stayed unserved after the supervisor's retry budget.

    The local analogue of :class:`ShardUnavailableError`: raised only in
    strict mode (``DataStoreOptions.degrade=False``); with degradation
    enabled the query is answered from the chunks that finished, marked
    ``complete=False`` with exact ``row_coverage``.
    """


class DistributedError(ReproError):
    """The simulated cluster was misconfigured or a sub-query failed."""


class ShardUnavailableError(DistributedError):
    """Every replica of a shard is dead or unresponsive.

    Only raised when the cluster runs with ``degrade=False``; the
    default behaviour is to serve the query anyway, marked incomplete
    (``complete=False`` plus an exact ``row_coverage`` fraction).
    """


class ResponseCorruptionError(DistributedError):
    """A sub-query response failed its checksum and was quarantined."""


class TableError(ReproError):
    """An in-memory table was constructed or accessed incorrectly."""


class ServiceError(ReproError):
    """The multi-tenant serving layer was misconfigured or misused.

    Raised for invalid :class:`~repro.service.ServiceConfig` values,
    submissions to a closed :class:`~repro.service.QueryService`, and
    ticket waits that exceed their timeout. Load shedding is *not* an
    error: over-admission returns an explicit
    :class:`~repro.service.QueryRejected` outcome instead.
    """


class AnalysisError(ReproError):
    """The lint/fsck tooling was misconfigured or given bad input."""
