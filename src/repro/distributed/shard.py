"""Quasi-random sharding — Section 4 "Distributing Data to many Machines".

"A better and actually very common approach is to start by sharding
(i.e., distributing) the data quasi randomly across the machines. Each
shard is on one machine and is then partitioned into chunks as
described in Section 2.2. This achieves very good load balancing."

``shard_table`` deals rows to shards with a seeded permutation;
:class:`Shard` wraps the per-shard datastore plus the bookkeeping the
cluster simulation needs (per-field byte sizes for the memory model).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.datastore import DataStore, DataStoreOptions
from repro.core.table import Table
from repro.errors import DistributedError


def shard_table(table: Table, n_shards: int, seed: int = 0) -> list[Table]:
    """Split ``table`` into ``n_shards`` quasi-random row subsets."""
    if n_shards < 1:
        raise DistributedError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards > table.n_rows:
        raise DistributedError(
            f"cannot spread {table.n_rows} rows over {n_shards} shards"
        )
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(table.n_rows)
    pieces = np.array_split(permutation, n_shards)
    return [table.take(np.sort(piece)) for piece in pieces]


@dataclass
class Shard:
    """One shard: its datastore and identity within the cluster."""

    shard_id: int
    store: DataStore

    @classmethod
    def build(
        cls, shard_id: int, table: Table, options: DataStoreOptions
    ) -> "Shard":
        return cls(shard_id=shard_id, store=DataStore.from_table(table, options))

    @property
    def n_rows(self) -> int:
        return self.store.n_rows

    def field_bytes(self, field_names: tuple[str, ...]) -> int:
        """Encoded bytes of the given fields on this shard."""
        return sum(self.store.field(name).size_bytes() for name in field_names)
