"""A deterministic simulation of the production cluster — Sections 4 & 6.

The paper's productionized system runs on >1000 machines holding >4 TB
of column data in memory. We reproduce its *behaviour* — which machine
does what, what must be loaded from disk, how replication tames
stragglers — with a deterministic cost model, while all query *results*
are computed for real on per-shard datastores.

Model, mirroring the paper:

- shards are assigned to machines quasi-randomly; each sub-query is
  sent to a **primary and a replica** and "answered" by whichever
  simulated machine finishes first. Both always compute (keeping their
  caches in sync), and both pay their own disk loads — exactly the
  scheme of Section 4 "Reliable Distributed Execution".
- each machine has a RAM budget for column data. A sub-query needs its
  accessed fields resident; missing ones are loaded at disk bandwidth
  (the paper assumes ">= 100 MB/second") and kept under LRU.
- machine load fluctuates (log-normal), with occasional stragglers that
  replication hides; scan time is proportional to rows scanned.
- partials are merged up a fan-in computation tree; the root finalizes.

The per-query :class:`QueryMetrics` expose latency, cumulative bytes
loaded from disk (Figure 5's x-axis) and the skipped/cached/scanned
split (the Section 6 92.41% / 5.02% / 2.66% statistic).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.datastore import DataStoreOptions
from repro.core.executor import make_executor
from repro.core.result import QueryResult, ScanStats
from repro.core.table import Table
from repro.distributed.shard import Shard, shard_table
from repro.distributed.tree import (
    ComputationTree,
    finalize_partials,
    merge_group_partials,
)
from repro.core.result import finalize as finalize_rows
from repro.errors import DistributedError
from repro.sql.ast_nodes import Query
from repro.sql.parser import parse_query


@dataclass(frozen=True)
class MachineConfig:
    """Per-machine capacities (paper-scale C++ rates, deliberately)."""

    memory_bytes: float = 64 * 1024 * 1024
    scan_rate_rows_per_second: float = 50e6
    disk_bandwidth_bytes_per_second: float = 100e6  # the paper's assumption
    merge_rate_groups_per_second: float = 2e6
    base_overhead_seconds: float = 0.005


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster topology and variability knobs."""

    n_machines: int = 8
    replication: int = 2
    fanout: int = 8
    seed: int = 0
    machine: MachineConfig = field(default_factory=MachineConfig)
    load_sigma: float = 0.35
    straggler_probability: float = 0.05
    straggler_slowdown: float = 12.0
    # How shard sub-queries evaluate in *this* process: 'parallel' fans
    # execute_partials out over worker threads (one task per shard, the
    # real concurrency behind the simulated machines), 'serial' runs
    # them inline. Results are identical either way — the cost model's
    # RNG draws happen on the merge thread in shard order regardless.
    executor: str = "serial"
    workers: int | None = None

    def __post_init__(self) -> None:
        if self.n_machines < 1:
            raise DistributedError("cluster needs at least one machine")
        if not 1 <= self.replication <= self.n_machines:
            raise DistributedError(
                "replication must be between 1 and n_machines"
            )


@dataclass
class QueryMetrics:
    """Simulated execution metrics for one distributed query."""

    latency_seconds: float = 0.0
    bytes_loaded_from_disk: int = 0
    sub_queries: int = 0
    replica_wins: int = 0
    merge_operations: int = 0
    stats: ScanStats = field(default_factory=ScanStats)

    @property
    def served_from_memory(self) -> bool:
        """True when no server had to touch disk (the >70% case)."""
        return self.bytes_loaded_from_disk == 0


class _MachineMemory:
    """LRU residency of (shard, field) column data on one machine."""

    def __init__(self, capacity_bytes: float) -> None:
        self.capacity = capacity_bytes
        self._resident: OrderedDict[tuple, int] = OrderedDict()
        self._used = 0

    def touch(self, key: tuple, size: int) -> int:
        """Mark ``key`` used; returns bytes that had to come from disk."""
        if key in self._resident:
            self._resident.move_to_end(key)
            return 0
        self._resident[key] = size
        self._used += size
        while self._used > self.capacity and len(self._resident) > 1:
            __, evicted = self._resident.popitem(last=False)
            self._used -= evicted
        return size


class SimulatedCluster:
    """Shards + machines + replication + a deterministic cost model."""

    def __init__(
        self,
        shards: list[Shard],
        config: ClusterConfig,
    ) -> None:
        self.shards = shards
        self.config = config
        self._executor = make_executor(config.executor, config.workers)
        self._rng = np.random.default_rng(config.seed)
        self._memories = [
            _MachineMemory(config.machine.memory_bytes)
            for __ in range(config.n_machines)
        ]
        # Quasi-random placement: primary and replicas on distinct machines.
        placement_rng = np.random.default_rng(config.seed + 1)
        self._placement: list[list[int]] = []
        for shard in shards:
            machines = placement_rng.permutation(config.n_machines)[
                : config.replication
            ]
            self._placement.append([int(m) for m in machines])
        self._query_count = 0

    # -- construction ---------------------------------------------------------
    @classmethod
    def build(
        cls,
        table: Table,
        n_shards: int,
        store_options: DataStoreOptions | None = None,
        config: ClusterConfig | None = None,
    ) -> "SimulatedCluster":
        """Shard ``table`` and build one datastore per shard."""
        config = config or ClusterConfig()
        store_options = store_options or DataStoreOptions()
        pieces = shard_table(table, n_shards, seed=config.seed)
        shards = [
            Shard.build(index, piece, store_options)
            for index, piece in enumerate(pieces)
        ]
        return cls(shards, config)

    # -- cost model ------------------------------------------------------------
    def _load_multiplier(self) -> float:
        multiplier = float(
            np.exp(self._rng.normal(0.0, self.config.load_sigma))
        )
        if self._rng.random() < self.config.straggler_probability:
            multiplier *= self.config.straggler_slowdown
        return multiplier

    def _machine_time(
        self, machine_index: int, shard: Shard, stats: ScanStats
    ) -> tuple[float, int]:
        """Simulated (seconds, disk bytes) for one machine's sub-query."""
        machine = self.config.machine
        disk_bytes = 0
        for name in stats.fields_accessed:
            size = shard.store.field(name).size_bytes()
            disk_bytes += self._memories[machine_index].touch(
                (shard.shard_id, name), size
            )
        compute = (
            machine.base_overhead_seconds
            + stats.rows_scanned / machine.scan_rate_rows_per_second
        )
        # Load fluctuation slows CPU work; disk bandwidth is unaffected.
        seconds = (
            disk_bytes / machine.disk_bandwidth_bytes_per_second
            + compute * self._load_multiplier()
        )
        return seconds, disk_bytes

    # -- execution ---------------------------------------------------------------
    def execute(self, query: Query | str) -> tuple[QueryResult, QueryMetrics]:
        """Run a query across all shards; returns result + sim metrics."""
        parsed = parse_query(query) if isinstance(query, str) else query
        self._query_count += 1
        metrics = QueryMetrics()
        merged_stats = ScanStats()

        leaf_partials = []
        leaf_rows: list | None = None
        slowest_sub_query = 0.0
        # Shard partials are independent (each shard owns its store);
        # fan them out over the executor. The deterministic cost model
        # below stays on the merge thread, consuming results in shard
        # order, so simulated timings are identical either way.
        shard_results = self._executor.map_ordered(
            lambda shard: shard.store.execute_partials(parsed), self.shards
        )
        for shard, (stats, partial) in zip(self.shards, shard_results):
            merged_stats = merged_stats.merge(stats)
            # The sub-query goes to the primary and every replica; all
            # of them compute, the fastest answer wins.
            times = []
            for machine_index in self._placement[shard.shard_id]:
                seconds, disk_bytes = self._machine_time(
                    machine_index, shard, stats
                )
                metrics.bytes_loaded_from_disk += disk_bytes
                times.append(seconds)
            winner = int(np.argmin(times))
            metrics.replica_wins += 1 if winner > 0 else 0
            metrics.sub_queries += 1
            slowest_sub_query = max(slowest_sub_query, min(times))
            if isinstance(partial, list):
                leaf_rows = (leaf_rows or []) + partial
            else:
                leaf_partials.append(partial)

        if leaf_rows is not None:
            table = finalize_rows(leaf_rows, parsed)
            merge_seconds = 0.0
            metrics.merge_operations = len(self.shards)
        else:
            tree = ComputationTree(len(self.shards), fanout=self.config.fanout)
            merged, operations = tree.merge_levels(leaf_partials)
            metrics.merge_operations = operations
            n_groups = max(len(merged), 1)
            merge_seconds = tree.depth * (
                self.config.machine.base_overhead_seconds
                + n_groups / self.config.machine.merge_rate_groups_per_second
            )
            table = finalize_partials(parsed, merged)

        metrics.latency_seconds = slowest_sub_query + merge_seconds
        metrics.stats = merged_stats
        result = QueryResult(
            table=table,
            stats=merged_stats,
            elapsed_seconds=metrics.latency_seconds,
        )
        return result, metrics

    # -- inspection ----------------------------------------------------------------
    @property
    def n_machines(self) -> int:
        return self.config.n_machines

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def total_rows(self) -> int:
        return sum(shard.n_rows for shard in self.shards)

    def placement_of(self, shard_id: int) -> list[int]:
        """Machines holding (primary first) a shard."""
        return list(self._placement[shard_id])
