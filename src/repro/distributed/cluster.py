"""A deterministic simulation of the production cluster — Sections 4 & 6.

The paper's productionized system runs on >1000 machines holding >4 TB
of column data in memory. We reproduce its *behaviour* — which machine
does what, what must be loaded from disk, how replication tames
stragglers — with a deterministic cost model, while all query *results*
are computed for real on per-shard datastores.

Model, mirroring the paper:

- shards are assigned to machines quasi-randomly; each sub-query is
  sent to a **primary and a replica** and "answered" by whichever
  simulated machine finishes first. Both always compute (keeping their
  caches in sync), and both pay their own disk loads — exactly the
  scheme of Section 4 "Reliable Distributed Execution".
- the reliability half of that section lives in
  :mod:`repro.distributed.faults`: a seeded :class:`FaultPlan`
  (``ClusterConfig.faults``) can crash machines, time out / slow down /
  corrupt sub-query responses, and every sub-query then runs through
  hedged dispatch, deadlines, CRC verification and bounded retry with
  exponential backoff. When every replica of a shard is lost the query
  **degrades gracefully**: the merge proceeds without that shard and
  the result carries ``complete=False`` plus an exact ``row_coverage``
  fraction (set ``degrade=False`` to get
  :class:`~repro.errors.ShardUnavailableError` instead).
- each machine has a RAM budget for column data. A sub-query needs its
  accessed fields resident; missing ones are loaded at disk bandwidth
  (the paper assumes ">= 100 MB/second") and kept under LRU.
- machine load fluctuates (log-normal), with occasional stragglers that
  replication hides; scan time is proportional to rows scanned.
- partials are merged up a fan-in computation tree; the root finalizes.

The per-query :class:`QueryMetrics` expose latency, cumulative bytes
loaded from disk (Figure 5's x-axis) and the skipped/cached/scanned
split (the Section 6 92.41% / 5.02% / 2.66% statistic).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.datastore import DataStoreOptions
from repro.core.executor import (
    SupervisionConfig,
    executor_names,
    make_executor,
    supervision_knob_problem,
)
from repro.core.result import QueryResult, ScanStats
from repro.core.table import Table
from repro.distributed.faults import (
    NO_FAULTS,
    FaultConfig,
    FaultEvent,
    FaultPlan,
    dispatch_sub_query,
)
from repro.distributed.shard import Shard, shard_table
from repro.distributed.tree import (
    ComputationTree,
    finalize_partials,
    merge_group_partials,
)
from repro.core.result import finalize as finalize_rows
from repro.errors import DistributedError, ShardUnavailableError
from repro.monitoring import counters
from repro.sql.ast_nodes import Query
from repro.sql.parser import parse_query


@dataclass(frozen=True)
class MachineConfig:
    """Per-machine capacities (paper-scale C++ rates, deliberately)."""

    memory_bytes: float = 64 * 1024 * 1024
    scan_rate_rows_per_second: float = 50e6
    disk_bandwidth_bytes_per_second: float = 100e6  # the paper's assumption
    merge_rate_groups_per_second: float = 2e6
    base_overhead_seconds: float = 0.005


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster topology and variability knobs."""

    n_machines: int = 8
    replication: int = 2
    fanout: int = 8
    seed: int = 0
    machine: MachineConfig = field(default_factory=MachineConfig)
    load_sigma: float = 0.35
    straggler_probability: float = 0.05
    straggler_slowdown: float = 12.0
    # How shard sub-queries evaluate in *this* process: 'parallel' fans
    # execute_partials out over worker threads (one task per shard, the
    # real concurrency behind the simulated machines), 'serial' runs
    # them inline. Results are identical either way — the cost model's
    # RNG draws happen on the merge thread in shard order regardless.
    executor: str = "serial"
    workers: int | None = None
    # Fault model (None = the inert plan: nothing ever fails) and the
    # degradation policy when a shard loses every replica: serve an
    # incomplete result (True) or raise ShardUnavailableError (False).
    faults: FaultConfig | None = None
    degrade: bool = True
    # Supervision knobs for the *local* shard fan-out (real faults, not
    # simulated ones): used when executor='process' loses a worker to
    # the OS mid-sub-query. Same semantics as DataStoreOptions.
    task_deadline_seconds: float = 30.0
    task_max_retries: int = 2
    task_backoff_base_seconds: float = 0.05
    task_backoff_multiplier: float = 2.0
    watchdog_interval_seconds: float = 0.1

    def supervision(self) -> SupervisionConfig:
        """The executor-facing view of the supervision knobs."""
        return SupervisionConfig(
            task_deadline_seconds=self.task_deadline_seconds,
            max_retries=self.task_max_retries,
            backoff_base_seconds=self.task_backoff_base_seconds,
            backoff_multiplier=self.task_backoff_multiplier,
            watchdog_interval_seconds=self.watchdog_interval_seconds,
        )

    def __post_init__(self) -> None:
        if self.n_machines < 1:
            raise DistributedError("cluster needs at least one machine")
        if not 1 <= self.replication <= self.n_machines:
            raise DistributedError(
                "replication must be between 1 and n_machines"
            )
        if self.executor not in executor_names():
            raise DistributedError(
                f"unknown executor {self.executor!r}; choose from "
                f"{executor_names()}"
            )
        if self.workers is not None and self.workers < 1:
            raise DistributedError(
                f"workers must be >= 1 when given, got {self.workers}"
            )
        if self.fanout < 2:
            raise DistributedError(
                f"fanout must be >= 2, got {self.fanout}"
            )
        if self.load_sigma < 0:
            raise DistributedError(
                f"load_sigma must be >= 0, got {self.load_sigma}"
            )
        if not 0.0 <= self.straggler_probability <= 1.0:
            raise DistributedError(
                "straggler_probability must be in [0, 1], got "
                f"{self.straggler_probability}"
            )
        if self.straggler_slowdown < 1.0:
            raise DistributedError(
                f"straggler_slowdown must be >= 1, got "
                f"{self.straggler_slowdown}"
            )
        problem = supervision_knob_problem(
            self.task_deadline_seconds,
            self.task_max_retries,
            self.task_backoff_base_seconds,
            self.task_backoff_multiplier,
            self.watchdog_interval_seconds,
        )
        if problem is not None:
            raise DistributedError(problem)


@dataclass
class QueryMetrics:
    """Simulated execution metrics for one distributed query."""

    latency_seconds: float = 0.0
    bytes_loaded_from_disk: int = 0
    sub_queries: int = 0
    replica_wins: int = 0
    merge_operations: int = 0
    stats: ScanStats = field(default_factory=ScanStats)
    # Fault handling (all zero / complete on a fault-free run).
    retries: int = 0
    failovers: int = 0
    timeouts: int = 0
    quarantines: int = 0
    crashes: int = 0
    machines_down: int = 0
    backoff_seconds: float = 0.0
    complete: bool = True
    row_coverage: float = 1.0
    unavailable_shards: tuple[int, ...] = ()
    fault_events: list[FaultEvent] = field(default_factory=list)

    @property
    def served_from_memory(self) -> bool:
        """True when no server had to touch disk (the >70% case)."""
        return self.bytes_loaded_from_disk == 0


class _MachineMemory:
    """LRU residency of (shard, field) column data on one machine."""

    def __init__(self, capacity_bytes: float) -> None:
        self.capacity = capacity_bytes
        self._resident: OrderedDict[tuple, int] = OrderedDict()
        self._used = 0

    def touch(self, key: tuple, size: int) -> int:
        """Mark ``key`` used; returns bytes that had to come from disk."""
        if key in self._resident:
            self._resident.move_to_end(key)
            return 0
        if size > self.capacity:
            # An entry that alone overflows the budget must never be
            # admitted: it would stay resident forever (eviction keeps
            # one entry) and permanently blow the byte accounting.
            # It streams from disk on every access instead.
            return size
        self._resident[key] = size
        self._used += size
        while self._used > self.capacity and len(self._resident) > 1:
            __, evicted = self._resident.popitem(last=False)
            self._used -= evicted
        return size


class _ShardPartialTask:
    """The shard fan-out callable (a lambda would not pickle).

    Captures only the parsed query (frozen AST dataclasses, picklable);
    the shard arrives as the mapped item, so under the process strategy
    the worker unpickles a Shard whose arena-backed store attaches by
    handle rather than shipping column data.
    """

    def __init__(self, parsed: Query) -> None:
        self.parsed = parsed

    def __call__(self, shard: Shard) -> tuple[ScanStats, object]:
        return shard.store.execute_partials(self.parsed)


class SimulatedCluster:
    """Shards + machines + replication + a deterministic cost model."""

    def __init__(
        self,
        shards: list[Shard],
        config: ClusterConfig,
    ) -> None:
        self.shards = shards
        self.config = config
        self._executor = make_executor(
            config.executor, config.workers, supervision=config.supervision()
        )
        self._fault_plan = FaultPlan(
            config.faults if config.faults is not None else NO_FAULTS,
            config.n_machines,
        )
        self._rng = np.random.default_rng(config.seed)
        self._memories = [
            _MachineMemory(config.machine.memory_bytes)
            for __ in range(config.n_machines)
        ]
        # Quasi-random placement: primary and replicas on distinct machines.
        placement_rng = np.random.default_rng(config.seed + 1)
        self._placement: list[list[int]] = []
        for shard in shards:
            machines = placement_rng.permutation(config.n_machines)[
                : config.replication
            ]
            self._placement.append([int(m) for m in machines])
        self._query_count = 0

    # -- construction ---------------------------------------------------------
    @classmethod
    def build(
        cls,
        table: Table,
        n_shards: int,
        store_options: DataStoreOptions | None = None,
        config: ClusterConfig | None = None,
    ) -> "SimulatedCluster":
        """Shard ``table`` and build one datastore per shard."""
        config = config or ClusterConfig()
        store_options = store_options or DataStoreOptions()
        pieces = shard_table(table, n_shards, seed=config.seed)
        shards = [
            Shard.build(index, piece, store_options)
            for index, piece in enumerate(pieces)
        ]
        return cls(shards, config)

    def close(self) -> None:
        """Release the in-process executor (and any shard arenas it owns)."""
        self._executor.close()

    # -- cost model ------------------------------------------------------------
    def _load_multiplier(self) -> float:
        multiplier = float(
            np.exp(self._rng.normal(0.0, self.config.load_sigma))
        )
        if self._rng.random() < self.config.straggler_probability:
            multiplier *= self.config.straggler_slowdown
        return multiplier

    def _machine_time(
        self, machine_index: int, shard: Shard, stats: ScanStats
    ) -> tuple[float, int]:
        """Simulated (seconds, disk bytes) for one machine's sub-query."""
        machine = self.config.machine
        disk_bytes = 0
        for name in stats.fields_accessed:
            size = shard.store.field(name).size_bytes()
            disk_bytes += self._memories[machine_index].touch(
                (shard.shard_id, name), size
            )
        compute = (
            machine.base_overhead_seconds
            + stats.rows_scanned / machine.scan_rate_rows_per_second
        )
        # Load fluctuation slows CPU work; disk bandwidth is unaffected.
        seconds = (
            disk_bytes / machine.disk_bandwidth_bytes_per_second
            + compute * self._load_multiplier()
        )
        return seconds, disk_bytes

    # -- execution ---------------------------------------------------------------
    def execute(self, query: Query | str) -> tuple[QueryResult, QueryMetrics]:
        """Run a query across all shards; returns result + sim metrics.

        Every sub-query runs through the fault-handling engine
        (:func:`repro.distributed.faults.dispatch_sub_query`): hedged
        primary+replica dispatch, deadlines, CRC verification, bounded
        retry with backoff. Shards whose every replica is dead or
        unresponsive are dropped from the merge; the result is then
        marked ``complete=False`` with an exact ``row_coverage``
        fraction (or, with ``degrade=False``, the query raises
        :class:`~repro.errors.ShardUnavailableError`).
        """
        parsed = parse_query(query) if isinstance(query, str) else query
        query_index = self._query_count
        self._query_count += 1
        plan = self._fault_plan
        metrics = QueryMetrics()
        merged_stats = ScanStats()

        leaf_partials = []
        leaf_rows: list | None = None
        slowest_sub_query = 0.0
        # Shards with no live replica cannot answer; skip computing
        # their partials entirely (nobody is up to compute them).
        if plan.config.crash_rate > 0.0:
            metrics.machines_down = len(plan.down_machines(query_index))
            reachable = [
                shard
                for shard in self.shards
                if any(
                    not plan.is_down(m, query_index)
                    for m in self._placement[shard.shard_id]
                )
            ]
        else:
            reachable = self.shards
        # Shard partials are independent (each shard owns its store);
        # fan them out over the executor. The deterministic cost model
        # and every fault draw stay on the merge thread, consuming
        # results in shard order, so simulated timings, fault events
        # and counters are identical under any executor. Under the
        # process strategy each shard store is materialized into a
        # shared-memory arena first, so the pickled Shard carries only
        # an attach handle (segments unlink when this cluster closes).
        if self._executor.wants_picklable_tasks and len(reachable) > 1:
            for shard in reachable:
                shard.store.ensure_arena(self._executor)
        # Supervised fan-out: a worker the OS kills mid-sub-query is a
        # *real* fault folded into the same degradation machinery as
        # the simulated ones — shards whose partial stayed unserved
        # after the local retry budget count as unavailable.
        fanout = self._executor.map_supervised(
            _ShardPartialTask(parsed), reachable
        )
        lost_positions = set(fanout.unserved)
        lost_shard_ids = {
            reachable[position].shard_id for position in lost_positions
        }
        shard_results = {
            shard.shard_id: result
            for position, (shard, result) in enumerate(
                zip(reachable, fanout.results)
            )
            if position not in lost_positions
        }
        metrics.retries += fanout.retries
        metrics.timeouts += fanout.timeouts
        metrics.crashes += fanout.crashes
        metrics.backoff_seconds += fanout.backoff_seconds
        for event in fanout.events:
            # Local supervision events index tasks; remap to the shard
            # ids and query index this dispatch was serving.
            shard_id = (
                reachable[event.shard_id].shard_id
                if 0 <= event.shard_id < len(reachable)
                else -1
            )
            metrics.fault_events.append(
                replace(event, query_index=query_index, shard_id=shard_id)
            )
        unavailable: list[int] = []
        covered_rows = 0
        for shard in self.shards:
            metrics.sub_queries += 1
            if shard.shard_id in lost_shard_ids:
                # The local supervisor exhausted its retries for this
                # shard's partial; no replica simulation can serve what
                # was never computed.
                unavailable.append(shard.shard_id)
                continue
            stats_partial = shard_results.get(shard.shard_id)
            if stats_partial is None:
                stats, partial = None, None
            else:
                stats, partial = stats_partial

            def attempt_cost(machine_index: int) -> tuple[float, int]:
                # Pure cost callback (REP011): disk bytes travel back in
                # DispatchOutcome.disk_bytes, not via captured metrics.
                return self._machine_time(machine_index, shard, stats)

            outcome = dispatch_sub_query(
                plan,
                query_index,
                shard.shard_id,
                self._placement[shard.shard_id],
                attempt_cost,
                response=partial,
            )
            metrics.replica_wins += 1 if outcome.replica_win else 0
            metrics.retries += outcome.retries
            metrics.failovers += 1 if outcome.failover else 0
            metrics.timeouts += outcome.timeouts
            metrics.quarantines += outcome.quarantines
            metrics.crashes += outcome.crashes
            metrics.bytes_loaded_from_disk += outcome.disk_bytes
            metrics.backoff_seconds += outcome.backoff_seconds
            metrics.fault_events.extend(outcome.events)
            slowest_sub_query = max(slowest_sub_query, outcome.seconds)
            if not outcome.served:
                unavailable.append(shard.shard_id)
                continue
            covered_rows += shard.n_rows
            merged_stats = merged_stats.merge(stats)
            if isinstance(partial, list):
                leaf_rows = (leaf_rows or []) + partial
            else:
                leaf_partials.append(partial)

        metrics.unavailable_shards = tuple(unavailable)
        metrics.complete = not unavailable
        total_rows = self.total_rows()
        metrics.row_coverage = (
            covered_rows / total_rows if total_rows else 1.0
        )
        self._publish_fault_counters(metrics)
        if unavailable and not self.config.degrade:
            raise ShardUnavailableError(
                f"shards {unavailable} lost every replica (query "
                f"{query_index}); re-run with degrade=True to accept an "
                f"incomplete result covering "
                f"{metrics.row_coverage:.1%} of rows"
            )

        if leaf_rows is not None or (not leaf_partials and unavailable):
            # Projection queries — and the fully-degraded case where no
            # shard produced a partial at all — merge plain output rows.
            table = finalize_rows(leaf_rows or [], parsed)
            merge_seconds = 0.0
            metrics.merge_operations = len(self.shards)
        else:
            tree = ComputationTree(len(self.shards), fanout=self.config.fanout)
            merged, operations = tree.merge_levels(leaf_partials)
            metrics.merge_operations = operations
            n_groups = max(len(merged), 1)
            merge_seconds = tree.depth * (
                self.config.machine.base_overhead_seconds
                + n_groups / self.config.machine.merge_rate_groups_per_second
            )
            table = finalize_partials(parsed, merged)

        metrics.latency_seconds = slowest_sub_query + merge_seconds
        metrics.stats = merged_stats
        result = QueryResult(
            table=table,
            stats=merged_stats,
            elapsed_seconds=metrics.latency_seconds,
            complete=metrics.complete,
            row_coverage=metrics.row_coverage,
        )
        return result, metrics

    def _publish_fault_counters(self, metrics: QueryMetrics) -> None:
        """Bump the process-wide fault counters for one query."""
        for name, amount in (
            ("distributed.faults.retries", metrics.retries),
            ("distributed.faults.failovers", metrics.failovers),
            ("distributed.faults.timeouts", metrics.timeouts),
            ("distributed.faults.quarantines", metrics.quarantines),
            ("distributed.faults.crashes", metrics.crashes),
            (
                "distributed.faults.shards_unavailable",
                len(metrics.unavailable_shards),
            ),
            ("distributed.faults.degraded_queries", 0 if metrics.complete else 1),
        ):
            if amount:
                counters.increment(name, amount)

    # -- inspection ----------------------------------------------------------------
    @property
    def n_machines(self) -> int:
        return self.config.n_machines

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def total_rows(self) -> int:
        return sum(shard.n_rows for shard in self.shards)

    def placement_of(self, shard_id: int) -> list[int]:
        """Machines holding (primary first) a shard."""
        return list(self._placement[shard_id])
