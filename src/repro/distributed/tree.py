"""The computation tree — Section 4's multi-level group-by execution.

Two complementary pieces live here:

1. :func:`decompose_query` — the *SQL-level* rewrite the paper shows:

   ``SELECT a, SUM(x) FROM (S1 UNION ALL S2) GROUP BY a`` becomes inner
   selects per shard and an outer merge select. COUNT(*) merges as
   SUM of partial counts, AVG as SUM/SUM, MIN/MAX as themselves.
   Exact COUNT DISTINCT is *not* decomposable this way — the function
   raises, mirroring "We cannot support count distinct by that.
   Therefore, we use an approximative technique".

2. :class:`ComputationTree` / :func:`merge_group_partials` — the
   *engine-level* execution used by the cluster simulation: shards
   produce mergeable per-group states
   (:meth:`repro.core.datastore.DataStore.execute_partials`), interior
   nodes merge them level by level ("the leaf level machines execute
   the inner select in parallel and send the result to the root"), and
   the root finalizes with the shared HAVING/ORDER BY/LIMIT tail
   ("the servers at the leaf level execute 'where' clauses and the
   root executes any 'having' statements"). Merging states handles
   every aggregate including exact COUNT DISTINCT (sets union) and the
   KMV sketches.
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.expr_eval import evaluate
from repro.core.plan import plan_group_query, resolve_group_aliases
from repro.core.result import finalize
from repro.core.table import Table
from repro.errors import DistributedError, UnsupportedQueryError
from repro.sql.ast_nodes import (
    Aggregate,
    BinaryOp,
    FieldRef,
    OrderItem,
    Query,
    SelectItem,
    walk,
)

GroupPartials = dict[tuple, tuple[tuple, list]]


# -- SQL-level decomposition ---------------------------------------------------


def decompose_query(query: Query) -> tuple[Query, Query]:
    """Rewrite a grouped query into (leaf_query, merge_query).

    The leaf query runs on each shard; the merge query runs over the
    UNION ALL of leaf results (its FROM table is named ``partials``).
    Raises :class:`UnsupportedQueryError` for aggregates that are not
    associative-decomposable (exact COUNT DISTINCT).
    """
    query = resolve_group_aliases(query)
    plan = plan_group_query(query)
    for agg in plan.aggregates:
        if agg.distinct and not agg.approximate:
            raise UnsupportedQueryError(
                "COUNT DISTINCT cannot be computed by multi-level "
                "associative aggregation; use APPROX_COUNT_DISTINCT"
            )
        if agg.approximate:
            raise UnsupportedQueryError(
                "APPROX_COUNT_DISTINCT merges sketches, not SQL rows; "
                "use the engine-level ComputationTree"
            )

    leaf_items: list[SelectItem] = []
    merge_inner: dict[str, Aggregate] = {}
    for index, expr in enumerate(plan.group_exprs):
        leaf_items.append(SelectItem(expr, f"g{index}"))
    for index, agg in enumerate(plan.aggregates):
        name = f"a{index}"
        if agg.name == "COUNT":
            leaf_items.append(SelectItem(agg, name))
            merge_inner[name] = Aggregate("SUM", FieldRef(name))
        elif agg.name in ("SUM", "MIN", "MAX"):
            leaf_items.append(SelectItem(agg, name))
            merge_inner[name] = Aggregate(agg.name, FieldRef(name))
        elif agg.name == "AVG":
            # AVG(x) = SUM(x) / SUM(1): ship sum and count separately.
            leaf_items.append(
                SelectItem(Aggregate("SUM", agg.arg), f"{name}_sum")
            )
            leaf_items.append(
                SelectItem(Aggregate("COUNT", agg.arg), f"{name}_count")
            )
            merge_inner[name] = None  # marker: handled below
        else:
            raise UnsupportedQueryError(f"cannot decompose {agg.sql()}")

    leaf_query = Query(
        select=tuple(leaf_items),
        table=query.table,
        where=query.where,
        group_by=plan.group_exprs,
    )

    merge_items: list[SelectItem] = []
    for index in range(len(plan.group_exprs)):
        merge_items.append(SelectItem(FieldRef(f"g{index}"), f"g{index}"))
    for index, agg in enumerate(plan.aggregates):
        name = f"a{index}"
        if agg.name == "AVG":
            merge_items.append(
                SelectItem(
                    BinaryOp(
                        "/",
                        Aggregate("SUM", FieldRef(f"{name}_sum")),
                        Aggregate("SUM", FieldRef(f"{name}_count")),
                    ),
                    name,
                )
            )
        else:
            merge_items.append(SelectItem(merge_inner[name], name))
    merge_query = Query(
        select=tuple(merge_items),
        table="partials",
        group_by=tuple(
            FieldRef(f"g{index}") for index in range(len(plan.group_exprs))
        ),
    )
    return leaf_query, merge_query


# -- engine-level merging ----------------------------------------------------------


def merge_group_partials(parts: list[GroupPartials]) -> GroupPartials:
    """Union per-group states from several sub-trees (one tree level)."""
    if not parts:
        return {}
    merged: GroupPartials = {}
    for part in parts:
        for key, (values, states) in part.items():
            existing = merged.get(key)
            if existing is None:
                # States are mutated on merge: keep shared inputs safe.
                # AggState.copy() is a cheap per-class clone (deepcopy
                # only as the base-class fallback).
                merged[key] = (values, [s.copy() for s in states])
            else:
                for mine, theirs in zip(existing[1], states):
                    mine.merge(theirs)
    return merged


def finalize_partials(query: Query, merged: GroupPartials) -> Table:
    """Root step: evaluate select items per group and apply the shared
    HAVING / ORDER BY / LIMIT tail."""
    query = resolve_group_aliases(query)
    plan = plan_group_query(query)
    out_rows: list[dict[str, Any]] = []
    for values, states in merged.values():
        env: dict[str, Any] = {}
        for index, value in enumerate(values):
            env[f"__group_{index}"] = value
        for index, state in enumerate(states):
            env[f"__agg_{index}"] = state.result()
        out_rows.append(
            {
                name: evaluate(expr, env.__getitem__)
                for name, expr in plan.items
            }
        )
    return finalize(out_rows, query)


class ComputationTree:
    """A fan-in tree over leaf tasks, merging partials level by level."""

    def __init__(self, n_leaves: int, fanout: int = 8) -> None:
        if n_leaves < 1:
            raise DistributedError("tree needs at least one leaf")
        if fanout < 2:
            raise DistributedError("tree fanout must be >= 2")
        self.n_leaves = n_leaves
        self.fanout = fanout

    @property
    def depth(self) -> int:
        """Number of merge levels above the leaves."""
        if self.n_leaves == 1:
            return 1
        return max(1, math.ceil(math.log(self.n_leaves, self.fanout)))

    def merge_levels(
        self, leaf_partials: list[GroupPartials]
    ) -> tuple[GroupPartials, int]:
        """Merge leaf partials up the tree.

        Returns (root partial, number of merge operations performed) —
        the operation count drives the simulation's merge-time model.
        """
        level = leaf_partials
        operations = 0
        while len(level) > 1:
            next_level: list[GroupPartials] = []
            for start in range(0, len(level), self.fanout):
                group = level[start : start + self.fanout]
                next_level.append(merge_group_partials(group))
                operations += len(group)
            level = next_level
        if len(level) == 1 and operations == 0:
            operations = 1
        return (level[0] if level else {}), operations
