"""Deterministic fault injection and fault handling — Section 4's
"Reliable Distributed Execution", made to actually fail.

The happy-path cluster simulation assumes every machine is up and every
response arrives intact. This module supplies the reliability half of
the paper's story: a seeded :class:`FaultPlan` decides — fully
deterministically — which machines are crashed during which query,
which sub-query attempts time out, run slow or arrive corrupted; and
:func:`dispatch_sub_query` is the fault-*handling* engine the cluster
runs every sub-query through:

- **hedged dispatch**: the sub-query goes to the primary and every
  live replica at once; the fastest valid answer wins (stragglers and
  slow-machine episodes are hidden, exactly the paper's scheme).
- **deadlines**: an attempt that exceeds ``deadline_seconds`` (or draws
  an injected timeout fault) is abandoned at the deadline.
- **corruption detection**: responses are sealed with the same CRC32
  tag the PDS2 file format uses (:func:`repro.storage.serde.crc32_tag`
  over the pickled partial); a corrupted response fails verification,
  raises :class:`~repro.errors.ResponseCorruptionError` internally and
  quarantines that replica for the rest of the sub-query.
- **bounded retry with exponential backoff**: when a whole wave fails,
  the dispatcher waits :func:`backoff_delay` (simulated — never a real
  ``time.sleep``; reprolint REP008 bans those) and retries against the
  surviving, non-quarantined replicas, up to ``max_retries`` waves.
  The local process supervisor reuses the same schedule through
  :func:`real_backoff_sleep`, the one place a genuine sleep is
  sanctioned, because its faults are real OS events.
- **graceful degradation**: when every replica is dead or every wave
  fails, the sub-query is reported unserved; the cluster merges
  without that shard and accounts for the missing rows.

Determinism contract: all randomness derives from
``numpy.random.SeedSequence`` keyed by ``(seed, query_index, shard,
machine, attempt)`` (attempt faults) or ``(seed, machine)`` (crash
schedules), so the same ``(query, fault seed)`` pair reproduces the
identical fault schedule, events, counters and simulated latency on
every run — serial and parallel executors alike, because every draw
happens on the merge thread in shard order.
"""

from __future__ import annotations

import pickle
import time
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DistributedError, ResponseCorruptionError
from repro.storage.serde import crc32_tag, verify_crc32_tag

#: Fault-event kinds a :class:`FaultEvent` may carry.  The first six
#: are emitted by the simulated cluster dispatch below;
#: ``task-unserved`` is emitted by the local process supervisor
#: (:meth:`repro.core.executor.ProcessExecutor.map_supervised`) when a
#: chunk task is abandoned after its retry budget — the local and
#: distributed fault models share this one vocabulary.
EVENT_KINDS = (
    "crash",
    "slow",
    "timeout",
    "corrupt",
    "retry",
    "shard-unavailable",
    "task-unserved",
)


@dataclass(frozen=True)
class FaultConfig:
    """Knobs of the seeded fault model (all rates are probabilities).

    ``crash_rate`` is the per-machine, per-query probability of going
    down; a crashed machine stays down for a geometric number of
    queries with mean ``mean_downtime_queries``. ``timeout_rate``,
    ``slow_rate`` and ``corruption_rate`` are per-attempt faults:
    a lost response, a ``slow_factor``-times slowdown episode, and a
    bit-flipped response payload respectively.
    """

    seed: int = 0
    crash_rate: float = 0.0
    mean_downtime_queries: float = 2.0
    timeout_rate: float = 0.0
    slow_rate: float = 0.0
    slow_factor: float = 8.0
    corruption_rate: float = 0.0
    deadline_seconds: float | None = 0.5
    max_retries: int = 2
    backoff_base_seconds: float = 0.01
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "timeout_rate", "slow_rate", "corruption_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise DistributedError(f"{name} must be in [0, 1], got {rate}")
        if self.mean_downtime_queries < 1.0:
            raise DistributedError(
                "mean_downtime_queries must be >= 1 (a crash lasts at "
                f"least the query it hits), got {self.mean_downtime_queries}"
            )
        if self.slow_factor < 1.0:
            raise DistributedError(
                f"slow_factor must be >= 1, got {self.slow_factor}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise DistributedError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}"
            )
        if self.timeout_rate > 0 and self.deadline_seconds is None:
            raise DistributedError(
                "timeout faults need a deadline to be detected; set "
                "deadline_seconds"
            )
        if self.max_retries < 0:
            raise DistributedError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_seconds < 0:
            raise DistributedError(
                f"backoff_base_seconds must be >= 0, got "
                f"{self.backoff_base_seconds}"
            )
        if self.backoff_multiplier < 1.0:
            raise DistributedError(
                f"backoff_multiplier must be >= 1, got "
                f"{self.backoff_multiplier}"
            )


#: The no-faults configuration the cluster uses when none is given.
#: ``deadline_seconds=None`` keeps legacy behaviour bit-identical: the
#: fault layer is inert, honest stragglers are never killed.
NO_FAULTS = FaultConfig(deadline_seconds=None)


@dataclass(frozen=True)
class FaultEvent:
    """One injected or handled fault, attributed to a sub-query."""

    kind: str
    query_index: int
    shard_id: int
    machine: int
    attempt: int

    def describe(self) -> str:
        where = f"shard {self.shard_id}"
        if self.machine >= 0:
            where += f" machine {self.machine}"
        return f"q{self.query_index} {self.kind}: {where} wave {self.attempt}"


@dataclass(frozen=True)
class AttemptFaults:
    """The injected faults one (sub-query, machine, wave) attempt draws."""

    timeout: bool = False
    slow: bool = False
    corrupt: bool = False


_NO_ATTEMPT_FAULTS = AttemptFaults()


def backoff_delay(
    retry_index: int, base_seconds: float, multiplier: float
) -> float:
    """Simulated exponential-backoff delay before retry ``retry_index``.

    This is the **sanctioned backoff helper** (reprolint REP008): the
    delay is added to the simulated clock, never slept for real. Retry
    0 waits ``base_seconds``, each further retry ``multiplier``× more.
    """
    if retry_index < 0:
        raise DistributedError(
            f"retry_index must be >= 0, got {retry_index}"
        )
    return base_seconds * multiplier**retry_index


def real_backoff_sleep(
    retry_index: int, base_seconds: float, multiplier: float
) -> float:
    """Sleep the exponential-backoff delay for real, and return it.

    The simulated cluster only ever *accounts* for backoff on its
    virtual clock (:func:`backoff_delay`).  Local process supervision
    cannot: the faults it recovers from are genuine OS events — a
    SIGKILLed worker, a wedged pool — and the respawned pool needs real
    wall-clock headroom before the next dispatch wave.  This is the one
    sanctioned real sleep in the tree, which is why it lives in this
    REP008-exempt module; call it instead of ``time.sleep`` anywhere a
    supervisor must wait out a retry.
    """
    delay = backoff_delay(retry_index, base_seconds, multiplier)
    if delay > 0:
        time.sleep(delay)
    return delay


class FaultPlan:
    """The seeded, deterministic fault schedule for one cluster.

    Crash/recover schedules are lazy per-machine streams from a
    dedicated RNG (same seed ⇒ same schedule, however queries
    interleave); per-attempt faults are stateless draws keyed by
    ``(seed, query_index, shard, machine, attempt)`` so dispatch order
    cannot perturb them.
    """

    def __init__(self, config: FaultConfig, n_machines: int) -> None:
        if n_machines < 1:
            raise DistributedError("fault plan needs at least one machine")
        self.config = config
        self.n_machines = n_machines
        self._schedules: list[list[bool]] = [[] for __ in range(n_machines)]
        self._schedule_rngs = [
            np.random.default_rng(np.random.SeedSequence((config.seed, 7, m)))
            for m in range(n_machines)
        ]

    @property
    def active(self) -> bool:
        """False when the plan can never inject anything."""
        cfg = self.config
        return (
            cfg.crash_rate > 0
            or cfg.timeout_rate > 0
            or cfg.slow_rate > 0
            or cfg.corruption_rate > 0
            or cfg.deadline_seconds is not None
        )

    # -- crash schedule ------------------------------------------------------
    def is_down(self, machine: int, query_index: int) -> bool:
        """True when ``machine`` is crashed during query ``query_index``."""
        if self.config.crash_rate == 0.0:
            return False
        schedule = self._schedules[machine]
        rng = self._schedule_rngs[machine]
        while len(schedule) <= query_index:
            was_down = schedule[-1] if schedule else False
            if was_down:
                recovers = rng.random() < 1.0 / self.config.mean_downtime_queries
                schedule.append(not recovers)
            else:
                schedule.append(rng.random() < self.config.crash_rate)
        return schedule[query_index]

    def down_machines(self, query_index: int) -> list[int]:
        """Machines crashed during ``query_index`` (ascending)."""
        return [
            m for m in range(self.n_machines) if self.is_down(m, query_index)
        ]

    # -- per-attempt faults --------------------------------------------------
    def attempt_faults(
        self, query_index: int, shard_id: int, machine: int, attempt: int
    ) -> AttemptFaults:
        """The injected faults for one dispatch attempt (stateless)."""
        cfg = self.config
        if (
            cfg.timeout_rate == 0.0
            and cfg.slow_rate == 0.0
            and cfg.corruption_rate == 0.0
        ):
            return _NO_ATTEMPT_FAULTS
        rng = np.random.default_rng(
            np.random.SeedSequence(
                (cfg.seed, 11, query_index, shard_id, machine, attempt)
            )
        )
        draws = rng.random(3)
        return AttemptFaults(
            timeout=bool(draws[0] < cfg.timeout_rate),
            slow=bool(draws[1] < cfg.slow_rate),
            corrupt=bool(draws[2] < cfg.corruption_rate),
        )

    # -- response integrity --------------------------------------------------
    def verify_response(
        self,
        query_index: int,
        shard_id: int,
        machine: int,
        attempt: int,
        response: object,
        corrupt: bool,
    ) -> None:
        """CRC-check one sub-query response, corrupting it when injected.

        The response is sealed exactly like a PDS2 store body: the
        pickled partial plus its :func:`~repro.storage.serde.crc32_tag`.
        An injected corruption fault flips one deterministic bit of the
        payload in flight; verification then fails (CRC32 detects every
        single-bit flip) and :class:`ResponseCorruptionError` is raised
        so the dispatcher quarantines this replica and fails over.
        """
        if self.config.corruption_rate == 0.0:
            return
        payload = pickle.dumps(response, protocol=pickle.HIGHEST_PROTOCOL)
        tag = crc32_tag(payload)
        if corrupt:
            rng = np.random.default_rng(
                np.random.SeedSequence(
                    (self.config.seed, 13, query_index, shard_id, machine, attempt)
                )
            )
            payload = flip_bit(payload, int(rng.integers(len(payload) * 8)))
        if not verify_crc32_tag(tag, payload):
            raise ResponseCorruptionError(
                f"sub-query response for shard {shard_id} from machine "
                f"{machine} failed its checksum (query {query_index}, "
                f"wave {attempt}); quarantining the replica"
            )


def flip_bit(payload: bytes, bit_index: int) -> bytes:
    """Return ``payload`` with one bit flipped (the corruption fault)."""
    if not payload:
        raise DistributedError("cannot corrupt an empty payload")
    byte_index, bit = divmod(bit_index % (len(payload) * 8), 8)
    corrupted = bytearray(payload)
    corrupted[byte_index] ^= 1 << bit
    return bytes(corrupted)


# -- the dispatch engine --------------------------------------------------------


@dataclass
class DispatchOutcome:
    """What happened to one sub-query under the fault plan."""

    shard_id: int
    served: bool
    seconds: float
    winner: int | None = None
    replica_win: bool = False
    failover: bool = False
    retries: int = 0
    timeouts: int = 0
    quarantines: int = 0
    crashes: int = 0
    backoff_seconds: float = 0.0
    disk_bytes: int = 0
    events: list[FaultEvent] = field(default_factory=list)


def dispatch_sub_query(
    plan: FaultPlan,
    query_index: int,
    shard_id: int,
    replicas: list[int],
    attempt_cost: Callable[[int], tuple[float, int]],
    response: object = None,
) -> DispatchOutcome:
    """Run one sub-query through hedging, deadlines, retries, failover.

    ``replicas`` lists the machines holding the shard, primary first.
    ``attempt_cost(machine)`` returns the simulated ``(seconds,
    disk_bytes)`` one machine's attempt costs (the caller's cost model);
    it is called once per attempted machine per wave, in placement
    order, on the calling thread — which is what keeps the simulation
    deterministic under any executor. The callback must be *pure*: it
    reports costs through its return value, never by mutating captured
    state (reprolint REP011) — the dispatcher accumulates the bytes of
    every attempt into ``DispatchOutcome.disk_bytes`` for the caller to
    fold into its metrics.

    Wave semantics: wave 0 is the hedged dispatch to every live
    replica at simulated time 0. If no attempt of a wave succeeds, the
    dispatcher learns of the failure at the slowest failure-detection
    time, backs off exponentially, and retries the surviving,
    non-quarantined replicas — up to ``max_retries`` extra waves. The
    sub-query is served at the earliest valid response of the first
    successful wave; otherwise it is unserved and ``seconds`` is the
    time wasted discovering that.
    """
    cfg = plan.config
    outcome = DispatchOutcome(shard_id=shard_id, served=False, seconds=0.0)
    live = []
    for machine in replicas:
        if plan.is_down(machine, query_index):
            outcome.crashes += 1
            outcome.events.append(
                FaultEvent("crash", query_index, shard_id, machine, 0)
            )
        else:
            live.append(machine)
    quarantined: set[int] = set()
    wave_start = 0.0
    wave = 0
    primary = replicas[0] if replicas else None
    while True:
        candidates = [m for m in live if m not in quarantined]
        if not candidates:
            break
        successes: list[tuple[float, int]] = []
        failures: list[float] = []
        for machine in candidates:
            seconds, attempt_disk_bytes = attempt_cost(machine)
            outcome.disk_bytes += attempt_disk_bytes
            faults = plan.attempt_faults(query_index, shard_id, machine, wave)
            if faults.slow:
                seconds *= cfg.slow_factor
                outcome.events.append(
                    FaultEvent("slow", query_index, shard_id, machine, wave)
                )
            deadline = cfg.deadline_seconds
            if faults.timeout or (deadline is not None and seconds > deadline):
                # An injected timeout loses the response outright; an
                # honest overrun is abandoned when the deadline fires.
                outcome.timeouts += 1
                outcome.events.append(
                    FaultEvent("timeout", query_index, shard_id, machine, wave)
                )
                failures.append(deadline if deadline is not None else seconds)
                continue
            try:
                plan.verify_response(
                    query_index, shard_id, machine, wave, response,
                    corrupt=faults.corrupt,
                )
            except ResponseCorruptionError:
                quarantined.add(machine)
                outcome.quarantines += 1
                outcome.events.append(
                    FaultEvent("corrupt", query_index, shard_id, machine, wave)
                )
                failures.append(seconds)
                continue
            successes.append((seconds, machine))
        if successes:
            best_seconds, winner = min(successes, key=lambda pair: pair[0])
            outcome.served = True
            outcome.seconds = wave_start + best_seconds
            outcome.winner = winner
            outcome.replica_win = winner != primary
            outcome.failover = all(m != primary for __, m in successes)
            return outcome
        wave_end = wave_start + (max(failures) if failures else 0.0)
        if wave >= cfg.max_retries:
            wave_start = wave_end
            break
        delay = backoff_delay(
            wave, cfg.backoff_base_seconds, cfg.backoff_multiplier
        )
        outcome.backoff_seconds += delay
        outcome.retries += 1
        outcome.events.append(
            FaultEvent("retry", query_index, shard_id, -1, wave + 1)
        )
        wave_start = wave_end + delay
        wave += 1
    outcome.seconds = wave_start
    outcome.events.append(
        FaultEvent("shard-unavailable", query_index, shard_id, -1, wave)
    )
    return outcome
