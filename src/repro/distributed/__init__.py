"""Distributed execution — Section 4, and the Section 6 production setup.

- :mod:`repro.distributed.shard` -- quasi-random sharding of a table
  ("start by sharding the data quasi randomly across the machines"),
  each shard partitioned into chunks independently.
- :mod:`repro.distributed.tree` -- the computation tree: the group-by
  rewrite (leaf/merge query decomposition) and multi-level merging of
  mergeable partial states.
- :mod:`repro.distributed.cluster` -- a deterministic simulation of the
  production cluster: machines with fluctuating load, an in-memory /
  on-disk residency model, primary+replica sub-queries, and the
  latency/disk metrics behind Figure 5 and the Section 6 statistics.
- :mod:`repro.distributed.faults` -- Section 4's reliability story:
  seeded fault injection (crashes, timeouts, slow episodes, corrupted
  responses) and the handling engine (hedged dispatch, deadlines, CRC
  verification, bounded retry with backoff, graceful degradation with
  exact row-coverage accounting).
"""

from repro.distributed.cluster import (
    ClusterConfig,
    MachineConfig,
    QueryMetrics,
    SimulatedCluster,
)
from repro.distributed.faults import (
    FaultConfig,
    FaultEvent,
    FaultPlan,
    backoff_delay,
    dispatch_sub_query,
)
from repro.distributed.shard import Shard, shard_table
from repro.distributed.tree import (
    ComputationTree,
    decompose_query,
    merge_group_partials,
)

__all__ = [
    "ClusterConfig",
    "ComputationTree",
    "FaultConfig",
    "FaultEvent",
    "FaultPlan",
    "MachineConfig",
    "QueryMetrics",
    "Shard",
    "SimulatedCluster",
    "backoff_delay",
    "decompose_query",
    "dispatch_sub_query",
    "merge_group_partials",
    "shard_table",
]
