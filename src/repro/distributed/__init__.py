"""Distributed execution — Section 4, and the Section 6 production setup.

- :mod:`repro.distributed.shard` -- quasi-random sharding of a table
  ("start by sharding the data quasi randomly across the machines"),
  each shard partitioned into chunks independently.
- :mod:`repro.distributed.tree` -- the computation tree: the group-by
  rewrite (leaf/merge query decomposition) and multi-level merging of
  mergeable partial states.
- :mod:`repro.distributed.cluster` -- a deterministic simulation of the
  production cluster: machines with fluctuating load, an in-memory /
  on-disk residency model, primary+replica sub-queries, and the
  latency/disk metrics behind Figure 5 and the Section 6 statistics.
"""

from repro.distributed.cluster import (
    ClusterConfig,
    MachineConfig,
    QueryMetrics,
    SimulatedCluster,
)
from repro.distributed.shard import Shard, shard_table
from repro.distributed.tree import (
    ComputationTree,
    decompose_query,
    merge_group_partials,
)

__all__ = [
    "ClusterConfig",
    "ComputationTree",
    "MachineConfig",
    "QueryMetrics",
    "Shard",
    "SimulatedCluster",
    "decompose_query",
    "merge_group_partials",
]
