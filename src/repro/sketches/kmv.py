"""The k-minimum-values (KMV) distinct-count sketch.

Section 5: "The basic idea of the algorithm is to compute hash values
of the field to count distinctly. Of these hashes, the m smallest are
determined in a single pass. The threshold m is given by the user and
is typically in the order of a couple of thousand. The largest of these
m hashes, say v, can be used to approximate the count distinct results
by m/v, assuming that the hash values are normalized to be in [0, 1]."

The sketch here follows that description exactly (estimator ``m / v``),
keeps the m smallest *distinct* hashes, and supports merging — needed
both for per-chunk accumulation and for the distributed execution tree.

The paper notes it profits "from a very useful property of both the
global- as well as the chunk-dictionaries: the underlying values are
sorted ascendingly", which enabled "a highly optimized data-structure
for collecting and storing the smallest m hash values".
:meth:`KmvSketch.add_hash_array` is that path: dictionary-resident
hashes arrive as one vector and are folded in with a single partition
instead of item-by-item comparisons.
"""

from __future__ import annotations

import bisect
from typing import Any

import numpy as np

from repro.errors import ExecutionError
from repro.sketches.hashing import hash_to_unit


class KmvSketch:
    """Keep the ``m`` smallest distinct hashes in [0, 1)."""

    __slots__ = ("m", "_hashes", "_members")

    def __init__(self, m: int = 4096) -> None:
        if m < 1:
            raise ExecutionError(f"KMV sketch size must be >= 1, got {m}")
        self.m = m
        self._hashes: list[float] = []  # sorted ascending
        self._members: set[float] = set()

    def __len__(self) -> int:
        return len(self._hashes)

    @property
    def threshold(self) -> float:
        """Largest retained hash (1.0 while the sketch is not full)."""
        if len(self._hashes) < self.m:
            return 1.0
        return self._hashes[-1]

    def add(self, value: Any) -> None:
        """Add a raw value (hashed internally)."""
        self.add_hash(hash_to_unit(value))

    def add_hash(self, hashed: float) -> None:
        """Add one pre-computed hash in [0, 1)."""
        if hashed >= self.threshold or hashed in self._members:
            return
        bisect.insort(self._hashes, hashed)
        self._members.add(hashed)
        if len(self._hashes) > self.m:
            evicted = self._hashes.pop()
            self._members.discard(evicted)

    def add_hash_array(self, hashes: np.ndarray) -> None:
        """Fold in a whole vector of hashes (the sorted-dictionary path).

        Used when a chunk's distinct values are known from its
        (sorted) chunk-dictionary: their hashes arrive as one array and
        only the candidate survivors are inserted.
        """
        if not hashes.size:
            return
        candidates = hashes[hashes < self.threshold]
        if not candidates.size:
            return
        if candidates.size > self.m:
            candidates = np.partition(candidates, self.m - 1)[: self.m]
        for hashed in np.unique(candidates):
            self.add_hash(float(hashed))

    def copy(self) -> "KmvSketch":
        """A detached clone (cheap: one list + one set copy)."""
        out = KmvSketch(self.m)
        out._hashes = list(self._hashes)
        out._members = set(self._members)
        return out

    def merge(self, other: "KmvSketch") -> None:
        """Union another sketch into this one (sizes must match)."""
        if other.m != self.m:
            raise ExecutionError(
                f"cannot merge KMV sketches of sizes {self.m} and {other.m}"
            )
        for hashed in other._hashes:
            self.add_hash(hashed)

    def estimate(self) -> int:
        """Estimated number of distinct values added."""
        if len(self._hashes) < self.m:
            # Not yet full: the sketch has seen every distinct hash.
            return len(self._hashes)
        return int(round(self.m / self._hashes[-1]))
