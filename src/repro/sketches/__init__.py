"""Approximate distinct counting — Section 5 "Count Distinct".

The paper implements the k-minimum-values algorithm of Flajolet &
Martin as analysed by Bar-Yossef et al.: hash every value, keep the m
smallest hashes, and estimate the cardinality from the largest of them.
"""

from repro.sketches.hashing import hash_to_unit, hash_value
from repro.sketches.kmv import KmvSketch

__all__ = ["KmvSketch", "hash_to_unit", "hash_value"]
