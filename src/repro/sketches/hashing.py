"""Deterministic value hashing shared by sketches and backends.

All backends (column-store and row-store baselines) must produce
identical APPROX_COUNT_DISTINCT results, so they share this single
hash: BLAKE2b over a canonical byte rendering, reduced to 64 bits and
optionally normalized to [0, 1).
"""

from __future__ import annotations

import hashlib
from typing import Any

_SCALE = float(1 << 64)


def _canonical_bytes(value: Any) -> bytes:
    """A type-tagged byte rendering so 1 and '1' hash differently."""
    if value is None:
        return b"N"
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    if isinstance(value, bool):
        return b"b" + (b"1" if value else b"0")
    if isinstance(value, int):
        return b"i" + str(value).encode("ascii")
    if isinstance(value, float):
        # Integral floats hash like ints so 3 == 3.0 across backends.
        if value.is_integer():
            return b"i" + str(int(value)).encode("ascii")
        return b"f" + repr(value).encode("ascii")
    return b"o" + repr(value).encode("utf-8")


def hash_value(value: Any) -> int:
    """A 64-bit hash of ``value``."""
    digest = hashlib.blake2b(_canonical_bytes(value), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def hash_to_unit(value: Any) -> float:
    """Hash ``value`` into [0, 1)."""
    return hash_value(value) / _SCALE
