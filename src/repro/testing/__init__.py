"""Comparison helpers and the runtime shared-state sanitizer.

Two families of helpers live here:

- **Float-tolerant result comparison** (:func:`values_equal`,
  :func:`rows_equal`, :func:`results_equal`,
  :func:`assert_results_equal`): all backends produce identical results
  *up to floating-point summation order* — SUM/AVG accumulate in
  different orders (row order vs. per-chunk vectorized bincounts), and
  FP addition is not associative — so floats compare with a relative
  tolerance, everything else exactly.

- **The shared-state sanitizer** (:class:`SanitizingExecutor`): the
  dynamic half of the process-parallel certification the reprolint
  dataflow rules (REP011 — REP015) make statically. Wrapping any
  :class:`~repro.core.executor.ExecutionStrategy`, it fingerprints
  every object the submitted callable closes over *before* the fan-out
  and re-fingerprints *after*; any observed mutation of captured state
  fails the test with an attribute-level diff. What the static rules
  claim ("submitted callables never write through captured state"),
  the sanitizer observes — running both over the same suites keeps the
  two from diverging.
"""

from __future__ import annotations

import functools
import hashlib
import math
import types
from collections.abc import Callable, Sequence
from typing import Any

from repro.core.executor import ExecutionStrategy

_DEFAULT_REL_TOL = 1e-9
_DEFAULT_ABS_TOL = 1e-12


def values_equal(
    a: Any,
    b: Any,
    rel_tol: float = _DEFAULT_REL_TOL,
    abs_tol: float = _DEFAULT_ABS_TOL,
) -> bool:
    """Equality with float tolerance; ints and floats may mix."""
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, float) or isinstance(b, float):
        if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
            return False
        return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
    if isinstance(a, tuple) and isinstance(b, tuple):
        return rows_equal(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
    return a == b


def rows_equal(
    row_a: Sequence[Any],
    row_b: Sequence[Any],
    rel_tol: float = _DEFAULT_REL_TOL,
    abs_tol: float = _DEFAULT_ABS_TOL,
) -> bool:
    """Tuple equality with per-value float tolerance."""
    if len(row_a) != len(row_b):
        return False
    return all(
        values_equal(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
        for a, b in zip(row_a, row_b)
    )


def results_equal(
    rows_a: Sequence[Sequence[Any]],
    rows_b: Sequence[Sequence[Any]],
    rel_tol: float = _DEFAULT_REL_TOL,
    abs_tol: float = _DEFAULT_ABS_TOL,
) -> bool:
    """Row-list equality with float tolerance (order-sensitive)."""
    if len(rows_a) != len(rows_b):
        return False
    return all(
        rows_equal(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
        for a, b in zip(rows_a, rows_b)
    )


def assert_results_equal(
    rows_a: Sequence[Sequence[Any]],
    rows_b: Sequence[Sequence[Any]],
    rel_tol: float = _DEFAULT_REL_TOL,
    abs_tol: float = _DEFAULT_ABS_TOL,
    context: str = "",
) -> None:
    """Assert row-list equality with a helpful diff on failure."""
    if len(rows_a) != len(rows_b):
        # Test helpers must raise AssertionError so pytest renders the
        # failure as an assertion, not a library error.
        raise AssertionError(  # reprolint: disable=REP001 -- test assertion
            f"{context}: {len(rows_a)} rows vs {len(rows_b)} rows\n"
            f"  a: {list(rows_a)[:5]}\n  b: {list(rows_b)[:5]}"
        )
    for index, (a, b) in enumerate(zip(rows_a, rows_b)):
        if not rows_equal(a, b, rel_tol=rel_tol, abs_tol=abs_tol):
            raise AssertionError(  # reprolint: disable=REP001 -- test assertion
                f"{context}: rows differ at index {index}:\n"
                f"  a: {a}\n  b: {b}"
            )


# -- the runtime shared-state sanitizer -------------------------------------

#: Lazily-memoized attributes the sanitizer deliberately ignores,
#: keyed by class name (any class in the object's MRO matches).
#:
#: These slots fill *during* worker execution by design: chunk scans
#: never share a chunk index across executor workers, so each memo has
#: exactly one writer, and every fill is an idempotent decode of
#: immutable encoded state (``FieldStore.row_global_ids``,
#: ``Elements.as_array``). They are caches of derived data, not shared
#: mutable state, and fingerprinting them would fail every parallel
#: scan for behaviour that is correct by construction.
LAZY_MEMO_ATTRS: dict[str, frozenset[str]] = {
    "FieldStore": frozenset(
        {"_row_gids", "_value_array", "_numeric_values", "_hash_units"}
    ),
    "Elements": frozenset({"_dense"}),
}

_MAX_FINGERPRINT_DEPTH = 10

#: Modules whose instances are runtime machinery, not data: their
#: internal state legitimately changes across a fan-out (pool threads
#: spin up, locks toggle) and never feeds results.
_OPAQUE_MODULES = (
    "_thread",
    "threading",
    "concurrent",
    "queue",
    "_io",
    "io",
    "multiprocessing",
    "mmap",
)


def captured_objects(fn: Callable[..., Any]) -> dict[str, Any]:
    """The objects ``fn`` will carry into an executor submission.

    Covers closure cells (by free-variable name), the ``__self__`` of
    bound methods, and the pieces of a :func:`functools.partial`
    (wrapped callable, positional and keyword arguments). Plain
    module-level functions capture nothing and return ``{}``.
    """
    captured: dict[str, Any] = {}
    if isinstance(fn, functools.partial):
        captured["partial.func"] = fn.func
        for index, value in enumerate(fn.args):
            captured[f"partial.args[{index}]"] = value
        for key, value in fn.keywords.items():
            captured[f"partial.keywords[{key}]"] = value
        inner = captured_objects(fn.func)
        for name, value in inner.items():
            captured.setdefault(name, value)
        return captured
    bound_self = getattr(fn, "__self__", None)
    if bound_self is not None:
        captured["self"] = bound_self
        return captured
    code = getattr(fn, "__code__", None)
    closure = getattr(fn, "__closure__", None)
    if code is not None and closure is not None:
        for name, cell in zip(code.co_freevars, closure):
            try:
                captured[name] = cell.cell_contents
            except ValueError:
                continue  # still-empty cell (recursive def)
    elif code is None and not isinstance(
        fn,
        (
            types.FunctionType,
            types.BuiltinFunctionType,
            types.MethodType,
            type,
        ),
    ):
        # A callable instance (e.g. a picklable scan task): everything
        # it carries lives on the instance itself.
        captured["self"] = fn
    return captured


def _is_opaque(obj: Any) -> bool:
    obj_type = type(obj)
    module = obj_type.__module__ or ""
    if module.split(".")[0] in _OPAQUE_MODULES:
        return True
    return isinstance(
        obj,
        (
            types.ModuleType,
            types.FunctionType,
            types.BuiltinFunctionType,
            types.MethodType,
            types.GeneratorType,
            type,
            ExecutionStrategy,
        ),
    )


def state_fingerprint(
    obj: Any,
    _depth: int = 0,
    _on_path: frozenset[int] = frozenset(),
) -> Any:
    """A structural, order-insensitive-where-unordered snapshot of ``obj``.

    Numpy arrays hash their raw bytes (shape + dtype + sha1), dicts
    compare sorted by key representation, sets by sorted element
    fingerprints, ordinary objects by type name plus their attribute
    dict (minus :data:`LAZY_MEMO_ATTRS`). Runtime machinery — locks,
    pools, modules, functions, executors — fingerprints as its type
    name only: its internals legitimately change across a fan-out.
    Cycles and over-deep nesting degrade to type-name stubs rather
    than recursing forever.
    """
    if isinstance(obj, float):
        # NaN != NaN would flag an unchanged NaN as a mutation.
        return ("nan",) if math.isnan(obj) else obj
    if obj is None or isinstance(obj, (bool, int, complex, str, bytes)):
        return obj
    if _depth >= _MAX_FINGERPRINT_DEPTH:
        return ("max-depth", type(obj).__name__)
    if id(obj) in _on_path:
        return ("cycle", type(obj).__name__)
    if _is_opaque(obj):
        return ("opaque", type(obj).__name__)
    on_path = _on_path | {id(obj)}
    nxt = _depth + 1
    type_name = type(obj).__name__
    if type_name == "ChunkArena" and hasattr(obj, "fingerprint_key"):
        # The arena's backing handles (SharedMemory, mmap) are runtime
        # machinery; its mapped *bytes* are what workers must never
        # write. Hash the contents instead of walking the wrapper.
        return ("arena", obj.fingerprint_key())
    if type_name == "ndarray":  # numpy, without importing it here
        if obj.dtype == object:
            return (
                "ndarray-object",
                obj.shape,
                tuple(
                    state_fingerprint(item, nxt, on_path)
                    for item in obj.ravel().tolist()
                ),
            )
        import numpy as np

        data = np.ascontiguousarray(obj)
        return (
            "ndarray",
            tuple(obj.shape),
            str(obj.dtype),
            hashlib.sha1(data.tobytes()).hexdigest(),
        )
    if isinstance(obj, dict):
        entries = [
            (repr(key), state_fingerprint(value, nxt, on_path))
            for key, value in obj.items()
        ]
        return ("dict", tuple(sorted(entries, key=lambda e: e[0])))
    if isinstance(obj, (list, tuple)):
        kind = "list" if isinstance(obj, list) else "tuple"
        return (
            kind,
            tuple(state_fingerprint(item, nxt, on_path) for item in obj),
        )
    if isinstance(obj, (set, frozenset)):
        members = [
            repr(state_fingerprint(item, nxt, on_path)) for item in obj
        ]
        return ("set", tuple(sorted(members)))
    if isinstance(obj, (bytearray, memoryview)):
        return ("buffer", hashlib.sha1(bytes(obj)).hexdigest())
    skipped = _skipped_attrs(type(obj))
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None:
        entries = [
            (name, state_fingerprint(value, nxt, on_path))
            for name, value in attrs.items()
            if name not in skipped
        ]
        return ("object", type_name, tuple(sorted(entries, key=lambda e: e[0])))
    slots = getattr(type(obj), "__slots__", None)
    if slots is not None:
        names = [slots] if isinstance(slots, str) else list(slots)
        entries = [
            (name, state_fingerprint(getattr(obj, name, None), nxt, on_path))
            for name in sorted(names)
            if name not in skipped
        ]
        return ("object", type_name, tuple(entries))
    return ("repr", type_name, repr(obj))


def _skipped_attrs(obj_type: type) -> frozenset[str]:
    skipped: set[str] = set()
    for klass in obj_type.__mro__:
        skipped |= LAZY_MEMO_ATTRS.get(klass.__name__, frozenset())
    return frozenset(skipped)


def _diff_fingerprints(before: Any, after: Any, path: str) -> list[str]:
    """Human-readable paths where two fingerprints diverge."""
    if before == after:
        return []
    if (
        isinstance(before, tuple)
        and isinstance(after, tuple)
        and before[:1] == after[:1]
        and before
        and before[0] in ("dict", "object", "list", "tuple")
    ):
        if before[0] in ("dict", "object"):
            b_entries = dict(before[-1])
            a_entries = dict(after[-1])
            diffs: list[str] = []
            for key in sorted(set(b_entries) | set(a_entries)):
                if key not in b_entries:
                    diffs.append(f"{path}.{key} (added)")
                elif key not in a_entries:
                    diffs.append(f"{path}.{key} (removed)")
                else:
                    diffs.extend(
                        _diff_fingerprints(
                            b_entries[key], a_entries[key], f"{path}.{key}"
                        )
                    )
            return diffs or [path]
        b_items, a_items = before[1], after[1]
        if len(b_items) != len(a_items):
            return [f"{path} (length {len(b_items)} -> {len(a_items)})"]
        diffs = []
        for index, (b, a) in enumerate(zip(b_items, a_items)):
            diffs.extend(_diff_fingerprints(b, a, f"{path}[{index}]"))
        return diffs or [path]
    return [path]


class CapturedStateMutation(AssertionError):
    """A submitted callable's captured state changed during fan-out."""


class SanitizingExecutor(ExecutionStrategy):
    """An :class:`ExecutionStrategy` decorator that fails on mutation.

    Wrap any executor (``store.executor =
    SanitizingExecutor(store.executor)``); every ``map_ordered``
    fingerprints the submitted callable's captured objects before the
    fan-out and re-fingerprints them after the last result is
    collected. A difference means a worker (or the callable itself)
    mutated shared state — precisely what reprolint REP011/REP012
    certify never happens — and raises
    :class:`CapturedStateMutation` with the diverging attribute paths.

    ``checked_submissions`` / ``checked_captures`` count what was
    actually verified, so tests can assert the sanitizer saw real work.
    """

    name = "sanitizing"

    def __init__(self, inner: ExecutionStrategy) -> None:
        self.inner = inner
        self.checked_submissions = 0
        self.checked_captures = 0
        self._tracked_arenas: list[Any] = []

    @property
    def wants_picklable_tasks(self) -> bool:
        """Forwarded so a wrapped process pool still gets arena tasks."""
        return self.inner.wants_picklable_tasks

    def track_arena(self, arena: Any) -> None:
        """Adopt the arena for lifecycle *and* put it under watch."""
        if all(existing is not arena for existing in self._tracked_arenas):
            self._tracked_arenas.append(arena)
        self.inner.track_arena(arena)

    def map_ordered(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
    ) -> list[Any]:
        return self._checked_fanout(
            fn, lambda: self.inner.map_ordered(fn, items), "map_ordered"
        )

    def map_supervised(self, fn: Callable[[Any], Any], items: Sequence[Any]):
        """Supervised fan-out under the same mutation watch.

        Forwarded (not re-derived from ``map_ordered``) so the wrapped
        strategy's real recovery/degradation path is what runs — and is
        itself certified not to mutate captured state.
        """
        return self._checked_fanout(
            fn,
            lambda: self.inner.map_supervised(fn, items),
            "map_supervised",
        )

    def _checked_fanout(
        self, fn: Callable[[Any], Any], fanout: Callable[[], Any], label: str
    ) -> Any:
        captured = captured_objects(fn)
        for index, arena in enumerate(self._tracked_arenas):
            # Arena bytes are shared with every worker; any write there
            # is a mutation even if no captured object references it.
            captured.setdefault(f"arena[{index}]", arena)
        before = {
            name: state_fingerprint(value)
            for name, value in captured.items()
        }
        results = fanout()
        mutated: list[str] = []
        for name, value in captured.items():
            after = state_fingerprint(value)
            mutated.extend(_diff_fingerprints(before[name], after, name))
        self.checked_submissions += 1
        self.checked_captures += len(captured)
        if mutated:
            fn_label = getattr(fn, "__name__", type(fn).__name__)
            # Test infrastructure raises AssertionError so pytest
            # renders the failure as an assertion, not a library error.
            raise CapturedStateMutation(  # reprolint: disable=REP001 -- test assertion
                f"captured state mutated during {label}({fn_label}): "
                + ", ".join(sorted(set(mutated)))
            )
        return results

    def close(self) -> None:
        self.inner.close()

    def describe(self) -> str:
        return f"sanitizing({self.inner.describe()})"
