"""Deterministic *real* fault injection for the process executor.

PR 3's ``FaultPlan`` injects software-simulated faults into the
simulated cluster; this module is its local, **genuinely destructive**
counterpart. A seeded :class:`ChaosPlan` decides which chunk tasks
draw which worker fault, and :class:`ChaosTask` fires them from inside
the pool worker that picked the task up:

- ``kill``  — ``os.kill(os.getpid(), SIGKILL)``: the hard death the
  OOM killer delivers; the pool breaks mid-batch.
- ``exit``  — ``os._exit(3)``: an abrupt clean-looking exit that still
  breaks the pool (no atexit, no cleanup, like a crashed native ext).
- ``hang``  — a real blocking sleep longer than any sane deadline; the
  supervisor must time the task out and kill the pool.

Determinism across retries: a *transient* fault fires exactly once per
task key, armed through an ``O_CREAT | O_EXCL`` sentinel file in a
caller-owned flag directory — whichever worker draws the task first
takes the fault, the re-dispatched attempt finds the sentinel and
computes normally, so a recovered run is bit-identical to a fault-free
one. *Persistent* faults skip the sentinel and fire on every attempt,
driving the retry budget to exhaustion (the degraded-coverage path).

Two deliberate reprolint notes: the hang fault calls ``time.sleep``
with a REP008 suppression (the injected hang must really block — that
is the fault), and tasks run only under a multi-worker process
executor — under inline execution the fault would hit the caller's own
process.
"""

from __future__ import annotations

import os
import re
import signal
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.executor import ExecutionStrategy, MapOutcome
from repro.errors import ExecutionError

#: The injectable worker-fault kinds.
CHAOS_KINDS = ("kill", "hang", "exit")


def task_key(item: Any) -> Any:
    """The plan key for one mapped item.

    Chunk-scan items are ``(chunk_index, mask, cacheable)`` tuples —
    the chunk index is the key; cluster shard items key by
    ``shard_id``; anything else keys by its string form.
    """
    if isinstance(item, tuple) and item:
        head = item[0]
        if isinstance(head, (int, str)):
            return head
    shard_id = getattr(item, "shard_id", None)
    if shard_id is not None:
        return shard_id
    return str(item)


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded map of task key → injected worker fault.

    ``faults`` pairs each targeted key with a kind from
    :data:`CHAOS_KINDS`; keys in ``persistent`` re-fire on every
    attempt (everything else is one-shot). ``hang_seconds`` is how long
    a hung worker blocks — choose it well past the task deadline under
    test, since a hang shorter than the deadline is just a slow task.
    """

    faults: tuple[tuple[Any, str], ...] = ()
    persistent: tuple[Any, ...] = ()
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        for key, kind in self.faults:
            if kind not in CHAOS_KINDS:
                raise ExecutionError(
                    f"unknown chaos kind {kind!r} for task {key!r}; "
                    f"choose from {CHAOS_KINDS}"
                )
        planned = {key for key, __ in self.faults}
        stray = [key for key in self.persistent if key not in planned]
        if stray:
            raise ExecutionError(
                f"persistent keys {stray!r} have no planned fault"
            )
        if self.hang_seconds <= 0:
            raise ExecutionError(
                f"hang_seconds must be > 0, got {self.hang_seconds}"
            )

    def fault_for(self, key: Any) -> str | None:
        for planned_key, kind in self.faults:
            if planned_key == key:
                return kind
        return None

    @classmethod
    def seeded(
        cls,
        seed: int,
        keys: Sequence[Any],
        kill_rate: float = 0.0,
        hang_rate: float = 0.0,
        exit_rate: float = 0.0,
        persistent_rate: float = 0.0,
        hang_seconds: float = 30.0,
    ) -> "ChaosPlan":
        """Draw a deterministic plan over ``keys`` from ``seed``.

        Each key independently draws at most one fault (the rates are
        cumulative-disjoint, so they must sum to <= 1); each *faulted*
        key then independently draws persistence. Same seed and keys ⇒
        same plan, on every platform — the chaos analogue of PR 3's
        ``FaultPlan`` determinism contract.
        """
        for name, rate in (
            ("kill_rate", kill_rate),
            ("hang_rate", hang_rate),
            ("exit_rate", exit_rate),
            ("persistent_rate", persistent_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ExecutionError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        if kill_rate + hang_rate + exit_rate > 1.0 + 1e-12:
            raise ExecutionError(
                "kill_rate + hang_rate + exit_rate must be <= 1, got "
                f"{kill_rate + hang_rate + exit_rate}"
            )
        rng = np.random.default_rng(np.random.SeedSequence([seed, 0xC4A05]))
        faults: list[tuple[Any, str]] = []
        persistent: list[Any] = []
        for key in keys:
            draw = float(rng.random())
            if draw < kill_rate:
                kind = "kill"
            elif draw < kill_rate + hang_rate:
                kind = "hang"
            elif draw < kill_rate + hang_rate + exit_rate:
                kind = "exit"
            else:
                rng.random()  # keep the persistence stream aligned
                continue
            faults.append((key, kind))
            if float(rng.random()) < persistent_rate:
                persistent.append(key)
        return cls(
            faults=tuple(faults),
            persistent=tuple(persistent),
            hang_seconds=hang_seconds,
        )


def _flag_name(key: Any) -> str:
    return "fault_" + re.sub(r"[^A-Za-z0-9_.-]", "_", repr(key))


def _inject(kind: str, hang_seconds: float) -> None:
    """Fire one fault inside the current (worker) process."""
    if kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "exit":
        os._exit(3)
    elif kind == "hang":
        # The injected fault must genuinely block the worker — that is
        # the scenario under test, not a retry delay.
        time.sleep(hang_seconds)  # reprolint: disable=REP008 -- injected hang fault must really block the worker


class ChaosTask:
    """Picklable wrapper that injects planned faults, then delegates.

    Wraps the real task callable; each invocation looks its item's
    :func:`task_key` up in the plan and, when the fault arms (first
    attempt for transient faults, every attempt for persistent ones),
    fires it inside the worker before the inner callable ever runs.
    A hung worker therefore holds no partial state, and a killed one
    re-runs the pure chunk task from scratch — the at-least-once
    execution model the supervisor is built for.
    """

    def __init__(
        self,
        inner: Callable[[Any], Any],
        plan: ChaosPlan,
        flag_dir: str,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.flag_dir = flag_dir

    def _arm(self, key: Any) -> bool:
        if key in self.plan.persistent:
            return True
        path = os.path.join(self.flag_dir, _flag_name(key))
        try:
            descriptor = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False  # already fired on an earlier attempt
        os.close(descriptor)
        return True

    def __call__(self, item: Any) -> Any:
        kind = self.plan.fault_for(task_key(item))
        if kind is not None and self._arm(task_key(item)):
            _inject(kind, self.plan.hang_seconds)
        return self.inner(item)


class ChaosExecutor(ExecutionStrategy):
    """Decorator executor: every submitted callable gets the chaos plan.

    Drop-in over a (usually process) strategy::

        store.executor = ChaosExecutor(store.executor, plan, flag_dir)

    so real queries exercise the supervisor without the engine knowing
    chaos exists. ``flag_dir`` must be an existing caller-owned
    directory (one per plan run) — the one-shot sentinels live there.
    """

    name = "chaos"

    def __init__(
        self,
        inner: ExecutionStrategy,
        plan: ChaosPlan,
        flag_dir: str,
    ) -> None:
        if not os.path.isdir(flag_dir):
            raise ExecutionError(
                f"chaos flag_dir {flag_dir!r} is not a directory"
            )
        self.inner = inner
        self.plan = plan
        self.flag_dir = flag_dir

    @property
    def wants_picklable_tasks(self) -> bool:  # type: ignore[override]
        return self.inner.wants_picklable_tasks

    @property
    def last_outcome(self) -> MapOutcome | None:
        return getattr(self.inner, "last_outcome", None)

    def _wrap(self, fn: Callable[[Any], Any]) -> ChaosTask:
        return ChaosTask(fn, self.plan, self.flag_dir)

    def map_ordered(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> list[Any]:
        return self.inner.map_ordered(self._wrap(fn), items)

    def map_supervised(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> MapOutcome:
        return self.inner.map_supervised(self._wrap(fn), items)

    def track_arena(self, arena: Any) -> None:
        self.inner.track_arena(arena)

    def close(self) -> None:
        self.inner.close()

    def describe(self) -> str:
        return f"chaos({self.inner.describe()})"
