"""Scalar functions of the dialect, applied to plain Python values.

These run either per distinct dictionary value (when the engine
materializes an expression as a virtual field — the cheap path) or per
row (in the row-store baseline backends). All functions are null-safe:
any NULL argument yields NULL, matching SQL semantics.

Timestamps are integer seconds since the Unix epoch, interpreted in
UTC; ``date()`` is the (deliberately somewhat expensive) function the
paper's Query 2 uses.
"""

from __future__ import annotations

import datetime as _dt
import math
from collections.abc import Callable
from typing import Any

from repro.errors import BindError

_EPOCH = _dt.datetime(1970, 1, 1, tzinfo=_dt.timezone.utc)


def _from_timestamp(value: int | float) -> _dt.datetime:
    return _EPOCH + _dt.timedelta(seconds=float(value))


def _fn_date(value: Any) -> str:
    return _from_timestamp(value).strftime("%Y-%m-%d")


def _fn_year(value: Any) -> int:
    return _from_timestamp(value).year


def _fn_month(value: Any) -> int:
    return _from_timestamp(value).month


def _fn_day(value: Any) -> int:
    return _from_timestamp(value).day


def _fn_hour(value: Any) -> int:
    return _from_timestamp(value).hour


def _fn_lower(value: Any) -> str:
    return str(value).lower()


def _fn_upper(value: Any) -> str:
    return str(value).upper()


def _fn_length(value: Any) -> int:
    return len(str(value))


def _fn_abs(value: Any) -> Any:
    return abs(value)


def _fn_round(value: Any, digits: Any = 0) -> float:
    return float(round(value, int(digits)))


def _fn_floor(value: Any) -> int:
    return math.floor(value)


def _fn_ceil(value: Any) -> int:
    return math.ceil(value)


def _fn_log2(value: Any) -> float:
    if value <= 0:
        raise BindError(f"log2 of non-positive value {value}")
    return math.log2(value)


def _fn_log2_bucket(value: Any) -> int:
    """The log2 bucket index used by Figure 5 (0 for values < 1)."""
    if value < 1:
        return 0
    return int(math.floor(math.log2(value))) + 1


def _fn_bucket(value: Any, width: Any) -> int:
    """Fixed-width histogram bucket index."""
    if width <= 0:
        raise BindError(f"bucket width must be > 0, got {width}")
    return int(math.floor(value / width))


def _fn_contains(value: Any, needle: Any) -> int:
    """1 if ``needle`` is a substring of ``value`` else 0.

    This backs the paper's "all web-searches that contain the term
    'cat'" style of computed restriction.
    """
    return int(str(needle) in str(value))


def _fn_starts_with(value: Any, prefix: Any) -> int:
    return int(str(value).startswith(str(prefix)))


def _fn_substr(value: Any, start: Any, length: Any = None) -> str:
    begin = int(start)
    if length is None:
        return str(value)[begin:]
    return str(value)[begin : begin + int(length)]


def _fn_concat(*values: Any) -> str:
    return "".join(str(v) for v in values)


def _fn_like(value: Any, pattern: Any) -> int:
    """SQL LIKE: ``%`` matches any run, ``_`` any single character."""
    import re

    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
        for ch in str(pattern)
    )
    return int(re.fullmatch(regex, str(value), flags=re.DOTALL) is not None)


def _fn_if(condition: Any, then_value: Any, else_value: Any) -> Any:
    """``if(cond, a, b)``: a when cond is truthy, else b.

    Unlike most scalars this does NOT null-propagate on the branches —
    only the condition matters (a NULL condition picks the else
    branch, like SQL CASE). Registered with its own entry below.
    """
    return then_value if condition else else_value


#: name -> (callable, min_args, max_args). Names are matched
#: case-insensitively by the parser and stored lower-case.
SCALAR_FUNCTIONS: dict[str, tuple[Callable[..., Any], int, int]] = {
    "date": (_fn_date, 1, 1),
    "year": (_fn_year, 1, 1),
    "month": (_fn_month, 1, 1),
    "day": (_fn_day, 1, 1),
    "hour": (_fn_hour, 1, 1),
    "lower": (_fn_lower, 1, 1),
    "upper": (_fn_upper, 1, 1),
    "length": (_fn_length, 1, 1),
    "abs": (_fn_abs, 1, 1),
    "round": (_fn_round, 1, 2),
    "floor": (_fn_floor, 1, 1),
    "ceil": (_fn_ceil, 1, 1),
    "log2": (_fn_log2, 1, 1),
    "log2_bucket": (_fn_log2_bucket, 1, 1),
    "bucket": (_fn_bucket, 2, 2),
    "contains": (_fn_contains, 2, 2),
    "starts_with": (_fn_starts_with, 2, 2),
    "substr": (_fn_substr, 2, 3),
    "concat": (_fn_concat, 1, 8),
    "like": (_fn_like, 2, 2),
}

#: Functions with bespoke NULL handling (evaluated outside the
#: null-propagation wrapper of :func:`apply_scalar`).
SPECIAL_FUNCTIONS = {"if": (_fn_if, 3, 3)}

#: Aggregate function names recognized by the parser (upper-case).
AGGREGATE_NAMES = {"COUNT", "SUM", "MIN", "MAX", "AVG", "APPROX_COUNT_DISTINCT"}


def apply_scalar(name: str, args: list[Any]) -> Any:
    """Apply scalar function ``name`` with SQL NULL propagation."""
    special = SPECIAL_FUNCTIONS.get(name)
    if special is not None:
        fn, min_args, max_args = special
        if not min_args <= len(args) <= max_args:
            raise BindError(
                f"{name}() takes {min_args}..{max_args} args, got {len(args)}"
            )
        return fn(*args)
    try:
        fn, min_args, max_args = SCALAR_FUNCTIONS[name]
    except KeyError:
        raise BindError(f"unknown function {name!r}") from None
    if not min_args <= len(args) <= max_args:
        raise BindError(
            f"{name}() takes {min_args}..{max_args} args, got {len(args)}"
        )
    if any(arg is None for arg in args):
        return None
    return fn(*args)
